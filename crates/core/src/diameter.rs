//! Set diameters and the `ANON` cost function (§4, Definition 4.1).
//!
//! For `S ⊆ V` the *diameter* `d(S)` is the maximum Hamming distance between
//! two members. `ANON(S)` is the total number of entries that must be starred
//! to make every member of `S` textually identical — exactly
//! `|S| · |{columns not constant on S}|`, since a column either survives for
//! everyone (it was constant) or is starred for everyone. The two quantities
//! are related by a sandwich in the spirit of Lemma 4.1:
//!
//! ```text
//! |S| · d(S) / 2  ≤  ANON(S)  ≤  |S| · (|S| − 1) · d(S)
//! ```
//!
//! Lower bound: by the triangle inequality each member is at distance at
//! least `d(S)/2` from one endpoint of a diameter-realizing pair, and a
//! member must star every column in which it differs from *any* other member.
//!
//! **Reproduction note.** Lemma 4.1 as printed claims the tighter upper bound
//! `ANON(S) ≤ |S| · d(S)`, but that inequality is false: the three binary
//! records `000, 110, 011` have diameter 2 yet all three columns are
//! non-constant, so `ANON = 9 > 3·2`. The number of non-constant columns is
//! bounded by the *sum* of distances from any fixed member, giving the
//! `(|S|−1)·d(S)` factor above. Every set in the algorithm's partitions has
//! `|S| ≤ 2k−1`, so the corrected chain still yields an `O(k log k)`
//! approximation guarantee, just with a larger constant than the paper's
//! `3k(1+ln k)`. Experiment E4 quantifies both bounds empirically.

use crate::bitset::BitSet;
use crate::dataset::Dataset;
use crate::metric::hamming;

/// Maximum pairwise Hamming distance among `rows` — the paper's `d(S)`.
///
/// `O(|S|² · m)`. An empty or singleton set has diameter 0. Callers that
/// query many subsets of the same dataset should precompute a
/// [`crate::distcache::PairwiseDistances`] and use its `O(|S|²)` cached
/// [`diameter`](crate::distcache::PairwiseDistances::diameter) instead;
/// property tests pin the two implementations to each other.
#[must_use]
pub fn diameter(ds: &Dataset, rows: &[usize]) -> usize {
    let mut best = 0;
    for (a, &i) in rows.iter().enumerate() {
        let ri = ds.row(i);
        for &j in &rows[a + 1..] {
            best = best.max(hamming(ri, ds.row(j)));
        }
    }
    best
}

/// The set of columns on which `rows` do **not** all agree.
///
/// These are precisely the columns a suppressor must star in every member of
/// the group (Corollary 4.1's rounding step).
#[must_use]
pub fn non_constant_columns(ds: &Dataset, rows: &[usize]) -> BitSet {
    let m = ds.n_cols();
    let mut cols = BitSet::new(m);
    let Some((&first, rest)) = rows.split_first() else {
        return cols;
    };
    let base = ds.row(first);
    for &r in rest {
        let row = ds.row(r);
        for j in 0..m {
            if row[j] != base[j] {
                cols.insert(j);
            }
        }
    }
    cols
}

/// Number of non-constant columns on `rows`.
#[must_use]
pub fn non_constant_count(ds: &Dataset, rows: &[usize]) -> usize {
    // Cheaper than materializing the BitSet when only the count is needed:
    // track agreement against the first row, but a column can disagree with
    // the first row in several members, so we still need per-column state.
    non_constant_columns(ds, rows).count()
}

/// `ANON(S)`: entries that must be starred so all of `rows` become identical.
///
/// Equals `|S| · non_constant_count(S)`.
///
/// ```
/// use kanon_core::{Dataset, diameter::{anon_cost, diameter}};
/// // The paper's §4 example: V = {1010, 1110, 0110}.
/// let ds = Dataset::from_rows(vec![
///     vec![1, 0, 1, 0],
///     vec![1, 1, 1, 0],
///     vec![0, 1, 1, 0],
/// ]).unwrap();
/// assert_eq!(diameter(&ds, &[0, 1, 2]), 2);
/// assert_eq!(anon_cost(&ds, &[0, 1, 2]), 6); // star the first two columns everywhere
/// ```
#[must_use]
pub fn anon_cost(ds: &Dataset, rows: &[usize]) -> usize {
    if rows.is_empty() {
        return 0;
    }
    rows.len() * non_constant_count(ds, rows)
}

/// Incremental tracker for a growing group's non-constant column set.
///
/// Used by the branch-and-bound solver, which repeatedly extends candidate
/// blocks one row at a time and needs `ANON` deltas in `O(m)` rather than
/// recomputing from scratch.
#[derive(Clone, Debug)]
pub struct GroupCost {
    /// Representative (first) row values, captured at creation.
    base: Vec<u32>,
    /// Columns known to be non-constant.
    cols: BitSet,
    /// Number of members.
    size: usize,
}

impl GroupCost {
    /// Starts a group containing the single row `r`.
    #[must_use]
    pub fn new(ds: &Dataset, r: usize) -> Self {
        GroupCost {
            base: ds.row(r).to_vec(),
            cols: BitSet::new(ds.n_cols()),
            size: 1,
        }
    }

    /// Adds row `r`, updating the non-constant column set.
    pub fn push(&mut self, ds: &Dataset, r: usize) {
        let row = ds.row(r);
        for (j, (&b, &v)) in self.base.iter().zip(row).enumerate() {
            if b != v {
                self.cols.insert(j);
            }
        }
        self.size += 1;
    }

    /// Number of members.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of non-constant columns so far.
    #[must_use]
    pub fn col_count(&self) -> usize {
        self.cols.count()
    }

    /// Current `ANON` contribution: `size · col_count`.
    #[must_use]
    pub fn cost(&self) -> usize {
        self.size * self.col_count()
    }

    /// The `ANON` cost this group would have after adding row `r`,
    /// without mutating the tracker.
    #[must_use]
    pub fn cost_with(&self, ds: &Dataset, r: usize) -> usize {
        let row = ds.row(r);
        let mut extra = 0;
        for (j, (&b, &v)) in self.base.iter().zip(row).enumerate() {
            if b != v && !self.cols.contains(j) {
                extra += 1;
            }
        }
        (self.size + 1) * (self.col_count() + extra)
    }

    /// Borrow the non-constant column set.
    #[must_use]
    pub fn columns(&self) -> &BitSet {
        &self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_example() -> Dataset {
        // §4 example: V = {1010, 1110, 0110}.
        Dataset::from_rows(vec![vec![1, 0, 1, 0], vec![1, 1, 1, 0], vec![0, 1, 1, 0]]).unwrap()
    }

    #[test]
    fn paper_example_diameter_is_two() {
        let ds = paper_example();
        assert_eq!(diameter(&ds, &[0, 1, 2]), 2);
        assert_eq!(diameter(&ds, &[0, 1]), 1);
        assert_eq!(diameter(&ds, &[0]), 0);
        assert_eq!(diameter(&ds, &[]), 0);
    }

    #[test]
    fn paper_example_anon_cost() {
        let ds = paper_example();
        // Suppressing the first two coordinates of each vector (the map
        // t(b1 b2 b3 b4) = **b3 b4 from the paper) makes all three identical;
        // columns 0 and 1 are non-constant, so ANON = 3 * 2 = 6 stars.
        assert_eq!(non_constant_columns(&ds, &[0, 1, 2]).to_vec(), vec![0, 1]);
        assert_eq!(anon_cost(&ds, &[0, 1, 2]), 6);
    }

    #[test]
    fn identical_rows_cost_nothing() {
        let ds = Dataset::from_rows(vec![vec![5, 5], vec![5, 5], vec![5, 5]]).unwrap();
        assert_eq!(diameter(&ds, &[0, 1, 2]), 0);
        assert_eq!(anon_cost(&ds, &[0, 1, 2]), 0);
        assert!(non_constant_columns(&ds, &[0, 1, 2]).is_empty());
    }

    #[test]
    fn group_cost_matches_batch() {
        let ds = paper_example();
        let mut g = GroupCost::new(&ds, 0);
        assert_eq!(g.cost(), 0);
        assert_eq!(g.cost_with(&ds, 1), anon_cost(&ds, &[0, 1]));
        g.push(&ds, 1);
        assert_eq!(g.cost(), anon_cost(&ds, &[0, 1]));
        assert_eq!(g.cost_with(&ds, 2), anon_cost(&ds, &[0, 1, 2]));
        g.push(&ds, 2);
        assert_eq!(g.cost(), anon_cost(&ds, &[0, 1, 2]));
        assert_eq!(g.size(), 3);
        assert_eq!(g.col_count(), 2);
    }

    proptest! {
        /// Figure 1 / triangle inequality on diameters: for overlapping sets,
        /// d(S_i ∪ S_j) ≤ d(S_i) + d(S_j).
        #[test]
        fn union_diameter_triangle_inequality(
            flat in proptest::collection::vec(0u32..3, 6 * 4),
            split in 1usize..5,
        ) {
            let ds = Dataset::from_flat(6, 4, flat).unwrap();
            // Two sets sharing row `split`.
            let s_i: Vec<usize> = (0..=split).collect();
            let s_j: Vec<usize> = (split..6).collect();
            let union: Vec<usize> = (0..6).collect();
            prop_assert!(
                diameter(&ds, &union) <= diameter(&ds, &s_i) + diameter(&ds, &s_j)
            );
        }

        /// Corrected Lemma 4.1 per-set sandwich:
        /// |S|·d(S)/2 ≤ ANON(S) ≤ |S|·(|S|−1)·d(S).
        #[test]
        fn anon_cost_sandwich(
            flat in proptest::collection::vec(0u32..3, 5 * 6),
        ) {
            let ds = Dataset::from_flat(5, 6, flat).unwrap();
            let rows: Vec<usize> = (0..5).collect();
            let d = diameter(&ds, &rows);
            let a = anon_cost(&ds, &rows);
            prop_assert!(a * 2 >= rows.len() * d, "lower bound violated: {a} vs {d}");
            prop_assert!(a <= rows.len() * (rows.len() - 1) * d || d == 0 && a == 0);
            if d == 0 {
                prop_assert_eq!(a, 0);
            }
        }

        /// The paper's printed upper bound ANON(S) ≤ |S|·d(S) is refuted by a
        /// concrete counterexample (documented at module level); this test
        /// pins the counterexample so the doc claim stays honest.
        #[test]
        fn printed_lemma_bound_counterexample(_x in 0u8..1) {
            let ds = Dataset::from_rows(vec![
                vec![0, 0, 0],
                vec![1, 1, 0],
                vec![0, 1, 1],
            ]).unwrap();
            let rows = [0usize, 1, 2];
            prop_assert_eq!(diameter(&ds, &rows), 2);
            prop_assert_eq!(anon_cost(&ds, &rows), 9);
            prop_assert!(anon_cost(&ds, &rows) > 3 * diameter(&ds, &rows));
        }

        /// Removing an element never increases the diameter (used by Reduce).
        #[test]
        fn diameter_monotone_under_removal(
            flat in proptest::collection::vec(0u32..4, 5 * 3),
            drop_idx in 0usize..5,
        ) {
            let ds = Dataset::from_flat(5, 3, flat).unwrap();
            let full: Vec<usize> = (0..5).collect();
            let reduced: Vec<usize> = (0..5).filter(|&r| r != drop_idx).collect();
            prop_assert!(diameter(&ds, &reduced) <= diameter(&ds, &full));
        }

        #[test]
        fn incremental_tracker_agrees(
            flat in proptest::collection::vec(0u32..3, 6 * 5),
        ) {
            let ds = Dataset::from_flat(6, 5, flat).unwrap();
            let mut g = GroupCost::new(&ds, 0);
            let mut members = vec![0usize];
            for r in 1..6 {
                members.push(r);
                g.push(&ds, r);
                prop_assert_eq!(g.cost(), anon_cost(&ds, &members));
            }
        }
    }
}
