//! Suppressors and anonymized tables (Definitions 2.1 and 2.2).
//!
//! A *suppressor* `t` maps each record to itself with some coordinates
//! replaced by `*`. Here it is represented positionally: one column
//! [`BitSet`] per row, bit `j` set meaning entry `(row, j)` is starred.
//! Applying a suppressor yields an [`AnonymizedTable`], on which the
//! k-anonymity predicate of Definition 2.2 can be checked: every suppressed
//! record must coincide, entry for entry (stars included), with at least
//! `k − 1` other suppressed records.

use std::collections::HashMap;

use crate::bitset::BitSet;
use crate::dataset::{Dataset, Value};
use crate::error::{Error, Result};

/// A positional suppressor: which cells of which rows are starred.
///
/// ```
/// use kanon_core::{Dataset, Suppressor};
/// let ds = Dataset::from_rows(vec![vec![7, 1], vec![7, 2]]).unwrap();
/// let mut t = Suppressor::identity(2, 2);
/// t.suppress(0, 1);
/// t.suppress(1, 1);
/// let released = t.apply(&ds).unwrap();
/// assert!(released.is_k_anonymous(2)); // both rows are now `7 *`
/// assert_eq!(released.suppressed_cells(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressor {
    masks: Vec<BitSet>,
    m: usize,
}

impl Suppressor {
    /// The identity suppressor (stars nothing) for an `n × m` table.
    #[must_use]
    pub fn identity(n: usize, m: usize) -> Self {
        Suppressor {
            masks: vec![BitSet::new(m); n],
            m,
        }
    }

    /// Builds a suppressor from per-row column masks.
    ///
    /// # Errors
    /// Returns [`Error::InvalidPartition`] if a mask's capacity differs
    /// from `m`.
    pub fn from_masks(masks: Vec<BitSet>, m: usize) -> Result<Self> {
        for (i, mask) in masks.iter().enumerate() {
            if mask.capacity() != m {
                return Err(Error::InvalidPartition(format!(
                    "mask {i} has capacity {} but m = {m}",
                    mask.capacity()
                )));
            }
        }
        Ok(Suppressor { masks, m })
    }

    /// Number of rows covered.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.masks.len()
    }

    /// Stars cell `(row, col)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn suppress(&mut self, row: usize, col: usize) {
        self.masks[row].insert(col);
    }

    /// Whether cell `(row, col)` is starred.
    #[must_use]
    pub fn is_suppressed(&self, row: usize, col: usize) -> bool {
        self.masks[row].contains(col)
    }

    /// Borrow the mask of `row`.
    #[must_use]
    pub fn mask(&self, row: usize) -> &BitSet {
        &self.masks[row]
    }

    /// Total number of starred cells — the objective value the paper
    /// minimizes.
    #[must_use]
    pub fn cost(&self) -> usize {
        self.masks.iter().map(BitSet::count).sum()
    }

    /// Serializes the suppressor as a mask grid: one line per row, `1` for
    /// a starred cell, `0` otherwise. A stable artifact for audit trails —
    /// reapplying a stored mask to the original table reproduces the exact
    /// release.
    ///
    /// ```
    /// use kanon_core::Suppressor;
    /// let mut s = Suppressor::identity(2, 3);
    /// s.suppress(0, 2);
    /// s.suppress(1, 0);
    /// let text = s.to_mask_string();
    /// assert_eq!(text, "001\n100\n");
    /// assert_eq!(Suppressor::from_mask_string(&text).unwrap(), s);
    /// ```
    #[must_use]
    pub fn to_mask_string(&self) -> String {
        let mut out = String::with_capacity(self.masks.len() * (self.m + 1));
        for mask in &self.masks {
            for j in 0..self.m {
                out.push(if mask.contains(j) { '1' } else { '0' });
            }
            out.push('\n');
        }
        out
    }

    /// Parses a mask grid produced by [`Suppressor::to_mask_string`].
    ///
    /// # Errors
    /// [`Error::InvalidPartition`] on ragged lines or characters other than
    /// `0`/`1`.
    pub fn from_mask_string(text: &str) -> Result<Self> {
        let lines: Vec<&str> = text.lines().collect();
        let m = lines.first().map_or(0, |l| l.chars().count());
        let mut masks = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            if line.chars().count() != m {
                return Err(Error::InvalidPartition(format!(
                    "mask line {i} has {} cells, expected {m}",
                    line.chars().count()
                )));
            }
            let mut mask = BitSet::new(m);
            for (j, ch) in line.chars().enumerate() {
                match ch {
                    '1' => {
                        mask.insert(j);
                    }
                    '0' => {}
                    other => {
                        return Err(Error::InvalidPartition(format!(
                            "mask line {i} contains `{other}`; only 0/1 allowed"
                        )))
                    }
                }
            }
            masks.push(mask);
        }
        Ok(Suppressor { masks, m })
    }

    /// Applies the suppressor to a dataset, producing the released table.
    ///
    /// # Errors
    /// Returns [`Error::InvalidPartition`] on a shape mismatch.
    pub fn apply(&self, ds: &Dataset) -> Result<AnonymizedTable> {
        if ds.n_rows() != self.masks.len() || ds.n_cols() != self.m {
            return Err(Error::InvalidPartition(format!(
                "suppressor shaped {}x{} applied to dataset {}x{}",
                self.masks.len(),
                self.m,
                ds.n_rows(),
                ds.n_cols()
            )));
        }
        let cells = ds
            .rows()
            .zip(&self.masks)
            .flat_map(|(row, mask)| {
                row.iter().enumerate().map(move |(j, &v)| {
                    if mask.contains(j) {
                        Cell::Star
                    } else {
                        Cell::Value(v)
                    }
                })
            })
            .collect();
        Ok(AnonymizedTable {
            n: ds.n_rows(),
            m: self.m,
            cells,
        })
    }
}

/// One released entry: a value or a star.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cell {
    /// The original value survived.
    Value(Value),
    /// The entry was suppressed.
    Star,
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Value(v) => write!(f, "{v}"),
            Cell::Star => write!(f, "*"),
        }
    }
}

/// The result of applying a suppressor: records over `Σ ∪ {*}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnonymizedTable {
    n: usize,
    m: usize,
    cells: Vec<Cell>,
}

impl AnonymizedTable {
    /// Number of records.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Number of attributes.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.m
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_rows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[Cell] {
        &self.cells[i * self.m..(i + 1) * self.m]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Cell]> {
        self.cells.chunks_exact(self.m.max(1)).take(self.n)
    }

    /// Number of starred entries — the suppression cost.
    #[must_use]
    pub fn suppressed_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, Cell::Star))
            .count()
    }

    /// Definition 2.2: every released record equals at least `k − 1` others.
    ///
    /// `k = 1` is trivially satisfied; `k = 0` returns `false` by convention
    /// (use [`Dataset::check_k`] to reject it earlier).
    #[must_use]
    pub fn is_k_anonymous(&self, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        self.group_sizes().iter().all(|&(_, size)| size >= k)
    }

    /// The k-groups of the released table: each distinct suppressed record
    /// with its multiplicity. Order is by first occurrence.
    #[must_use]
    pub fn group_sizes(&self) -> Vec<(usize, usize)> {
        // Map each distinct row to (first_row_index, count).
        let mut groups: HashMap<&[Cell], (usize, usize)> = HashMap::new();
        let mut order: Vec<&[Cell]> = Vec::new();
        for (i, row) in self.rows().enumerate() {
            match groups.entry(row) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().1 += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((i, 1));
                    order.push(row);
                }
            }
        }
        order.iter().map(|r| groups[r]).collect()
    }

    /// The smallest k-group size, i.e. the largest `k` for which the table
    /// is k-anonymous. `None` for an empty table.
    #[must_use]
    pub fn anonymity_level(&self) -> Option<usize> {
        self.group_sizes().iter().map(|&(_, s)| s).min()
    }

    /// Diagnoses k-anonymity violations: returns, for every group smaller
    /// than `k`, its first row index and size — the actionable evidence a
    /// verification tool should print. Empty means the table is
    /// k-anonymous.
    ///
    /// ```
    /// use kanon_core::{Dataset, Suppressor};
    /// let ds = Dataset::from_rows(vec![vec![1], vec![1], vec![2]]).unwrap();
    /// let t = Suppressor::identity(3, 1).apply(&ds).unwrap();
    /// assert_eq!(t.violations(2), vec![(2, 1)]); // the lone `2` row
    /// assert!(t.violations(1).is_empty());
    /// ```
    #[must_use]
    pub fn violations(&self, k: usize) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .group_sizes()
            .into_iter()
            .filter(|&(_, size)| size < k)
            .collect();
        v.sort_unstable();
        v
    }

    /// Renders the table for display/debugging, one row per line, entries
    /// separated by spaces, stars as `*`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in self.rows() {
            let mut first = true;
            for cell in row {
                if !first {
                    out.push(' ');
                }
                first = false;
                out.push_str(&cell.to_string());
            }
            out.push('\n');
        }
        out
    }
}

/// Checks that `suppressor` applied to `ds` is k-anonymous and returns the
/// released table along with its cost.
///
/// # Errors
/// Propagates shape mismatches; returns [`Error::InvalidPartition`] if the
/// result is not k-anonymous (the message names the smallest group).
pub fn verify_k_anonymity(
    ds: &Dataset,
    suppressor: &Suppressor,
    k: usize,
) -> Result<(AnonymizedTable, usize)> {
    let table = suppressor.apply(ds)?;
    if !table.is_k_anonymous(k) {
        let worst = table.anonymity_level().unwrap_or(0);
        return Err(Error::InvalidPartition(format!(
            "released table is only {worst}-anonymous, needed {k}"
        )));
    }
    let cost = table.suppressed_cells();
    Ok((table, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The §1 hospital example, dictionary coded:
    /// first: Harry=0 John=1 Beatrice=2; last: Stone=0 Reyser=1 Ramos=2;
    /// age buckets kept as raw years; race: AfrAm=0 Cauc=1 Hisp=2.
    fn hospital() -> Dataset {
        Dataset::from_rows(vec![
            vec![0, 0, 34, 0],
            vec![1, 1, 36, 1],
            vec![2, 0, 47, 0],
            vec![1, 2, 22, 2],
        ])
        .unwrap()
    }

    #[test]
    fn identity_on_distinct_rows_is_1_anonymous_only() {
        let ds = hospital();
        let t = Suppressor::identity(4, 4).apply(&ds).unwrap();
        assert!(t.is_k_anonymous(1));
        assert!(!t.is_k_anonymous(2));
        assert_eq!(t.anonymity_level(), Some(1));
        assert_eq!(t.suppressed_cells(), 0);
    }

    #[test]
    fn hospital_two_anonymization() {
        // Mirror the paper's 2-anonymized table: group {Harry, Beatrice}
        // keeps (last=Stone, race=AfrAm); group {John, John} keeps
        // (first=John).
        let ds = hospital();
        let mut s = Suppressor::identity(4, 4);
        for row in [0, 2] {
            s.suppress(row, 0); // first
            s.suppress(row, 2); // age
        }
        for row in [1, 3] {
            s.suppress(row, 1); // last
            s.suppress(row, 2); // age
            s.suppress(row, 3); // race
        }
        let (table, cost) = verify_k_anonymity(&ds, &s, 2).unwrap();
        assert_eq!(cost, 2 * 2 + 2 * 3);
        assert!(table.is_k_anonymous(2));
        assert!(!table.is_k_anonymous(3));
        let groups = table.group_sizes();
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|&(_, s)| s == 2));
    }

    #[test]
    fn verify_rejects_insufficient_anonymity() {
        let ds = hospital();
        let s = Suppressor::identity(4, 4);
        let err = verify_k_anonymity(&ds, &s, 2).unwrap_err();
        assert!(err.to_string().contains("1-anonymous"));
    }

    #[test]
    fn apply_shape_mismatch() {
        let ds = hospital();
        let s = Suppressor::identity(3, 4);
        assert!(s.apply(&ds).is_err());
        let s = Suppressor::identity(4, 3);
        assert!(s.apply(&ds).is_err());
    }

    #[test]
    fn cost_counts_stars() {
        let mut s = Suppressor::identity(2, 3);
        assert_eq!(s.cost(), 0);
        s.suppress(0, 1);
        s.suppress(1, 0);
        s.suppress(1, 2);
        assert_eq!(s.cost(), 3);
        assert!(s.is_suppressed(0, 1));
        assert!(!s.is_suppressed(0, 0));
    }

    #[test]
    fn full_suppression_is_n_anonymous() {
        let ds = hospital();
        let mut s = Suppressor::identity(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                s.suppress(i, j);
            }
        }
        let t = s.apply(&ds).unwrap();
        assert!(t.is_k_anonymous(4));
        assert_eq!(t.suppressed_cells(), 16);
        assert_eq!(t.anonymity_level(), Some(4));
    }

    #[test]
    fn k_zero_is_never_anonymous() {
        let ds = hospital();
        let t = Suppressor::identity(4, 4).apply(&ds).unwrap();
        assert!(!t.is_k_anonymous(0));
    }

    #[test]
    fn empty_table_edge_cases() {
        let ds = Dataset::from_rows(vec![]).unwrap();
        let t = Suppressor::identity(0, 0).apply(&ds).unwrap();
        assert!(t.is_k_anonymous(5)); // vacuously
        assert_eq!(t.anonymity_level(), None);
        assert_eq!(t.suppressed_cells(), 0);
    }

    #[test]
    fn render_shows_stars() {
        let ds = Dataset::from_rows(vec![vec![7, 8]]).unwrap();
        let mut s = Suppressor::identity(1, 2);
        s.suppress(0, 1);
        let t = s.apply(&ds).unwrap();
        assert_eq!(t.render(), "7 *\n");
    }

    #[test]
    fn from_masks_validates_capacity() {
        let good = vec![BitSet::new(3), BitSet::new(3)];
        assert!(Suppressor::from_masks(good, 3).is_ok());
        let bad = vec![BitSet::new(3), BitSet::new(2)];
        assert!(Suppressor::from_masks(bad, 3).is_err());
    }

    #[test]
    fn group_sizes_multiset_semantics() {
        // Duplicate raw rows count toward anonymity without suppression.
        let ds = Dataset::from_rows(vec![vec![1, 2], vec![1, 2], vec![1, 2]]).unwrap();
        let t = Suppressor::identity(3, 2).apply(&ds).unwrap();
        assert!(t.is_k_anonymous(3));
        assert_eq!(t.group_sizes(), vec![(0, 3)]);
    }

    #[test]
    fn mask_string_rejects_bad_input() {
        assert!(Suppressor::from_mask_string("01\n0\n").is_err()); // ragged
        assert!(Suppressor::from_mask_string("0x\n").is_err()); // bad char
        let empty = Suppressor::from_mask_string("").unwrap();
        assert_eq!(empty.n_rows(), 0);
    }

    #[test]
    fn violations_report_small_groups() {
        let ds = Dataset::from_rows(vec![vec![1, 1], vec![1, 1], vec![2, 2], vec![3, 3]]).unwrap();
        let t = Suppressor::identity(4, 2).apply(&ds).unwrap();
        assert_eq!(t.violations(2), vec![(2, 1), (3, 1)]);
        assert_eq!(t.violations(3), vec![(0, 2), (2, 1), (3, 1)]);
    }

    proptest! {
        /// Mask serialization roundtrips for arbitrary suppressors.
        #[test]
        fn mask_string_roundtrip(
            bits in proptest::collection::vec(proptest::bool::ANY, 5 * 4),
        ) {
            let mut s = Suppressor::identity(5, 4);
            for (idx, &b) in bits.iter().enumerate() {
                if b {
                    s.suppress(idx / 4, idx % 4);
                }
            }
            let text = s.to_mask_string();
            prop_assert_eq!(Suppressor::from_mask_string(&text).unwrap(), s);
        }

        /// A suppressor's cost always equals the released table's star count.
        #[test]
        fn cost_equals_star_count(
            flat in proptest::collection::vec(0u32..3, 4 * 3),
            bits in proptest::collection::vec(proptest::bool::ANY, 4 * 3),
        ) {
            let ds = Dataset::from_flat(4, 3, flat).unwrap();
            let mut s = Suppressor::identity(4, 3);
            for (idx, &b) in bits.iter().enumerate() {
                if b {
                    s.suppress(idx / 3, idx % 3);
                }
            }
            let t = s.apply(&ds).unwrap();
            prop_assert_eq!(s.cost(), t.suppressed_cells());
        }

        /// Suppressing more cells never decreases the anonymity level when
        /// the extra suppression is applied uniformly to a whole column.
        #[test]
        fn column_suppression_monotone(
            flat in proptest::collection::vec(0u32..3, 5 * 3),
            col in 0usize..3,
        ) {
            let ds = Dataset::from_flat(5, 3, flat).unwrap();
            let base = Suppressor::identity(5, 3).apply(&ds).unwrap();
            let mut s = Suppressor::identity(5, 3);
            for i in 0..5 {
                s.suppress(i, col);
            }
            let t = s.apply(&ds).unwrap();
            prop_assert!(t.anonymity_level() >= base.anonymity_level());
        }

        /// group_sizes sums to n.
        #[test]
        fn group_sizes_partition_rows(
            flat in proptest::collection::vec(0u32..2, 6 * 2),
        ) {
            let ds = Dataset::from_flat(6, 2, flat).unwrap();
            let t = Suppressor::identity(6, 2).apply(&ds).unwrap();
            let total: usize = t.group_sizes().iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(total, 6);
        }
    }
}
