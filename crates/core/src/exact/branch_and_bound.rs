//! Exact optimum by branch and bound over partitions.
//!
//! Rows are assigned in index order; each row either joins an open block
//! (capped at `2k−1` members, which is lossless per §4.1) or opens a new
//! one. Two admissible lower bounds prune the search:
//!
//! * **k-NN bound** — in any feasible solution, row `r`'s group contains
//!   `k−1` other rows, so `r` suppresses at least its distance to its
//!   `(k−1)`-th nearest neighbour (a Lemma 4.1-style argument). Summed over
//!   unassigned rows this bounds their future contribution.
//! * **deficit bound** — every open block with `s < k` members must absorb
//!   `k − s` more rows, each paying at least the block's current
//!   non-constant column count.
//!
//! The search is *anytime*: it seeds its incumbent with the center greedy
//! (Theorem 4.2) and, if the node budget runs out, returns the best found
//! with `proven_optimal = false`.

use crate::dataset::Dataset;
use crate::diameter::GroupCost;
use crate::distcache::PairwiseDistances;
use crate::error::{Error, Result};
use crate::govern::{Budget, PollTicker};
use crate::greedy::{reduce, try_center_greedy_cover_governed_with_cache, CenterConfig};
use crate::partition::Partition;

/// Tuning knobs for the branch and bound.
#[derive(Clone, Debug)]
pub struct BranchBoundConfig {
    /// Hard cap on `n` — beyond this the search space is hopeless even with
    /// good bounds.
    pub max_rows: usize,
    /// Node budget; exceeded ⇒ the best incumbent is returned unproven.
    pub max_nodes: u64,
    /// Optional externally supplied upper bound (e.g. from a better
    /// heuristic); the solver still computes its own greedy incumbent and
    /// uses the tighter of the two.
    pub initial_upper_bound: Option<usize>,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        BranchBoundConfig {
            max_rows: 48,
            max_nodes: 20_000_000,
            initial_upper_bound: None,
        }
    }
}

/// Outcome of a branch-and-bound run.
#[derive(Clone, Debug)]
pub struct BranchBoundResult {
    /// Best cost found.
    pub cost: usize,
    /// Partition achieving `cost`.
    pub partition: Partition,
    /// Whether the search space was exhausted (making `cost` optimal).
    pub proven_optimal: bool,
    /// Nodes expanded.
    pub nodes: u64,
}

struct Searcher<'a> {
    ds: &'a Dataset,
    k: usize,
    n: usize,
    /// Suffix sums of the per-row k-NN lower bound.
    suffix_lb: Vec<u64>,
    best_cost: u64,
    best_assignment: Option<Vec<usize>>,
    nodes: u64,
    max_nodes: u64,
    exhausted: bool,
    /// Budget poll, one tick per expanded node; a trip unwinds the whole
    /// recursion as `Err`.
    ticker: PollTicker<'a>,
}

impl Searcher<'_> {
    fn run(
        &mut self,
        blocks: &mut Vec<(GroupCost, Vec<u32>)>,
        idx: usize,
        cost: u64,
    ) -> Result<()> {
        self.ticker.tick()?;
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.exhausted = false;
            return Ok(());
        }
        if idx == self.n {
            if blocks.iter().all(|(g, _)| g.size() >= self.k) && cost < self.best_cost {
                self.best_cost = cost;
                let mut assignment = vec![0usize; self.n];
                for (b, (_, members)) in blocks.iter().enumerate() {
                    for &r in members {
                        assignment[r as usize] = b;
                    }
                }
                self.best_assignment = Some(assignment);
            }
            return Ok(());
        }

        // Feasibility: open deficits must fit in the remaining rows.
        let unassigned = (self.n - idx) as u64;
        let deficit: u64 = blocks
            .iter()
            .map(|(g, _)| (self.k.saturating_sub(g.size())) as u64)
            .sum();
        if deficit > unassigned {
            return Ok(());
        }

        // Admissible bound on the additional cost.
        let deficit_bound: u64 = blocks
            .iter()
            .map(|(g, _)| (self.k.saturating_sub(g.size()) * g.col_count()) as u64)
            .sum();
        let knn_bound = self.suffix_lb[idx];
        if cost + deficit_bound.max(knn_bound) >= self.best_cost {
            return Ok(());
        }

        // Branch: join each open block (cheapest extension first), then open
        // a new block.
        let mut options: Vec<(u64, usize)> = Vec::with_capacity(blocks.len());
        for (b, (g, _)) in blocks.iter().enumerate() {
            if g.size() < 2 * self.k - 1 {
                let new_cost = g.cost_with(self.ds, idx) as u64;
                let delta = new_cost - g.cost() as u64;
                options.push((delta, b));
            }
        }
        options.sort_unstable();

        for (_, b) in options {
            let saved = blocks[b].clone();
            let old_block_cost = blocks[b].0.cost() as u64;
            blocks[b].0.push(self.ds, idx);
            blocks[b].1.push(idx as u32);
            let new_cost = cost - old_block_cost + blocks[b].0.cost() as u64;
            self.run(blocks, idx + 1, new_cost)?;
            blocks[b] = saved;
            if self.nodes > self.max_nodes {
                return Ok(());
            }
        }

        // Open a new block only if enough rows remain to fill it.
        if unassigned >= self.k as u64 {
            blocks.push((GroupCost::new(self.ds, idx), vec![idx as u32]));
            self.run(blocks, idx + 1, cost)?;
            blocks.pop();
        }
        Ok(())
    }
}

/// Runs the branch and bound.
///
/// # Errors
/// * [`Error::KZero`] / [`Error::KExceedsRows`] on a bad `k`;
/// * [`Error::InstanceTooLarge`] when `n > config.max_rows`.
pub fn branch_and_bound(
    ds: &Dataset,
    k: usize,
    config: &BranchBoundConfig,
) -> Result<BranchBoundResult> {
    try_branch_and_bound_governed(ds, k, config, &Budget::unlimited())
}

/// Budget-governed [`branch_and_bound`]: the distance cache, the greedy
/// incumbent, and every expanded node poll `budget`; a tripped limit
/// unwinds the whole search as [`Error::BudgetExceeded`] (the soft
/// `max_nodes` cap, by contrast, still returns the incumbent unproven).
///
/// # Errors
/// As [`branch_and_bound`], plus [`Error::BudgetExceeded`] /
/// [`Error::Overflow`].
pub fn try_branch_and_bound_governed(
    ds: &Dataset,
    k: usize,
    config: &BranchBoundConfig,
    budget: &Budget,
) -> Result<BranchBoundResult> {
    ds.check_k(k)?;
    budget.check()?;
    let n = ds.n_rows();
    if n > config.max_rows {
        return Err(Error::InstanceTooLarge {
            solver: "branch_and_bound",
            limit: format!("n = {n} exceeds max_rows = {}", config.max_rows),
        });
    }

    // One shared distance cache serves both the k-NN bound and the greedy
    // incumbent below.
    let dm = PairwiseDistances::try_build_governed(ds, Some(1), budget)?;
    let lb: Vec<u64> = (0..n)
        .map(|r| u64::from(dm.kth_neighbor_distance(r, k - 1).unwrap_or(0)))
        .collect();
    let mut suffix_lb = vec![0u64; n + 1];
    for r in (0..n).rev() {
        suffix_lb[r] = suffix_lb[r + 1] + lb[r];
    }

    // Greedy incumbent. Its own failures are tolerated (the search can still
    // run from scratch), but a tripped budget is not a solver failure and
    // must propagate.
    let greedy =
        try_center_greedy_cover_governed_with_cache(ds, k, &CenterConfig::default(), &dm, budget)
            .and_then(|c| reduce(&c, k))
            .map(|p| {
                let p = p.split_large(k);
                (p.anonymization_cost(ds) as u64, p)
            });
    let (mut best_cost, mut best_partition) = match greedy {
        Ok((c, p)) => (c, Some(p)),
        Err(e @ (Error::BudgetExceeded { .. } | Error::Overflow { .. })) => return Err(e),
        Err(_) => (u64::MAX / 2, None),
    };
    if let Some(ub) = config.initial_upper_bound {
        // An externally supplied bound can prune but provides no partition;
        // keep the greedy partition as the incumbent artifact.
        best_cost = best_cost.min(ub as u64);
    }

    let mut searcher = Searcher {
        ds,
        k,
        n,
        suffix_lb,
        // +1 so a solution matching the incumbent exactly is re-derived and
        // its assignment captured.
        best_cost: best_cost + 1,
        best_assignment: None,
        nodes: 0,
        max_nodes: config.max_nodes,
        exhausted: true,
        ticker: budget.ticker(),
    };
    let mut blocks: Vec<(GroupCost, Vec<u32>)> = Vec::new();
    searcher.run(&mut blocks, 0, 0)?;

    let (cost, partition) = match searcher.best_assignment {
        Some(a) => {
            let p = Partition::from_assignment(&a);
            (p.anonymization_cost(ds), p)
        }
        None => match best_partition.take() {
            Some(p) => (p.anonymization_cost(ds), p),
            None => {
                return Err(Error::InvalidPartition(
                    "branch and bound found no feasible partition".into(),
                ))
            }
        },
    };

    Ok(BranchBoundResult {
        cost,
        partition,
        proven_optimal: searcher.exhausted,
        nodes: searcher.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{subset_dp, SubsetDpConfig};
    use proptest::prelude::*;

    fn bb(rows: Vec<Vec<u32>>, k: usize) -> BranchBoundResult {
        let ds = Dataset::from_rows(rows).unwrap();
        branch_and_bound(&ds, k, &BranchBoundConfig::default()).unwrap()
    }

    #[test]
    fn trivial_duplicates() {
        let res = bb(vec![vec![1, 1], vec![1, 1], vec![1, 1]], 3);
        assert_eq!(res.cost, 0);
        assert!(res.proven_optimal);
    }

    #[test]
    fn matches_known_optimum() {
        let res = bb(
            vec![
                vec![0, 0, 0],
                vec![0, 0, 1],
                vec![0, 0, 2],
                vec![7, 7, 7],
                vec![7, 7, 8],
                vec![7, 7, 9],
            ],
            3,
        );
        assert_eq!(res.cost, 6);
        assert!(res.proven_optimal);
    }

    #[test]
    fn handles_moderate_clustered_instance() {
        // 18 rows in 6 tight pairs-of-triples; well within reach.
        let mut rows = Vec::new();
        for c in 0..6u32 {
            for v in 0..3u32 {
                rows.push(vec![c * 10, c * 10 + 1, c * 10 + 2, v]);
            }
        }
        let res = bb(rows, 3);
        assert_eq!(res.cost, 18); // each triple stars its last column
        assert!(res.proven_optimal);
    }

    #[test]
    fn node_budget_returns_incumbent() {
        let ds = Dataset::from_fn(12, 4, |i, j| ((i * 7 + j * 3) % 5) as u32);
        let config = BranchBoundConfig {
            max_nodes: 10,
            ..Default::default()
        };
        let res = branch_and_bound(&ds, 2, &config).unwrap();
        assert!(!res.proven_optimal);
        // The incumbent still rounds to a feasible anonymization.
        assert!(res.partition.min_block_size().unwrap() >= 2);
    }

    #[test]
    fn governed_unlimited_matches_and_cancellation_propagates() {
        let ds = Dataset::from_fn(10, 3, |i, j| ((i * 3 + j) % 4) as u32);
        let plain = branch_and_bound(&ds, 2, &BranchBoundConfig::default()).unwrap();
        let governed = try_branch_and_bound_governed(
            &ds,
            2,
            &BranchBoundConfig::default(),
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(plain.cost, governed.cost);
        assert_eq!(plain.partition, governed.partition);

        let cancelled = Budget::unlimited();
        cancelled.cancel();
        assert!(matches!(
            try_branch_and_bound_governed(&ds, 2, &BranchBoundConfig::default(), &cancelled),
            Err(Error::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn guard_rejects_large_instances() {
        let ds = Dataset::from_fn(100, 2, |i, _| i as u32);
        assert!(matches!(
            branch_and_bound(&ds, 2, &BranchBoundConfig::default()),
            Err(Error::InstanceTooLarge { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Branch and bound agrees with the subset DP.
        #[test]
        fn agrees_with_subset_dp(
            flat in proptest::collection::vec(0u32..3, 8 * 3),
            k in 1usize..4,
        ) {
            let ds = Dataset::from_flat(8, 3, flat).unwrap();
            let dp = subset_dp(&ds, k, &SubsetDpConfig::default()).unwrap();
            let bb = branch_and_bound(&ds, k, &BranchBoundConfig::default()).unwrap();
            prop_assert!(bb.proven_optimal);
            prop_assert_eq!(bb.cost, dp.cost);
        }
    }
}
