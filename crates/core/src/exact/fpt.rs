//! Fixed-parameter exact solver over distinct row *patterns*.
//!
//! The paper's hardness results (Theorem 3.1) hold when `n` grows, but the
//! instance only presents `P ≤ |Σ|^m` *distinct rows*; for small degree and
//! alphabet — exactly the regime of the reduction gadgets and of Sweeney's
//! practical tables — `P` is tiny even when `n` is huge. This engine is
//! fixed-parameter tractable in `P`:
//!
//! 1. collapse the multiset of rows into `P` distinct patterns with
//!    multiplicities (a single `O(n·m)` pass);
//! 2. by the §4.1 band observation, restrict attention to solutions whose
//!    *mixed* blocks have size in `[k, 2k−1]` (any block of size ≥ 2k
//!    splits into two blocks of size ≥ k without increasing suppression,
//!    and every integer ≥ k is a sum of integers in that band);
//! 3. memoize an exact search over the vector of remaining multiplicities,
//!    branching over every band-size block that contains a copy of the
//!    scarcest remaining pattern. A state where every remaining pattern
//!    has multiplicity 0 or ≥ k costs nothing: each pattern forms pure
//!    blocks with zero suppressed cells.
//!
//! A block's suppression cost depends only on *which* patterns it mixes
//! (size × columns on which they disagree), never on which concrete rows
//! realize them, so the count-vector state is lossless. The search is
//! therefore exact for any `n`, with work bounded by the number of
//! count-vector states — a function of `P` and `k` alone.

use std::collections::HashMap;

use super::Optimal;
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::govern::{Budget, PollTicker};
use crate::partition::Partition;

/// Tuning knobs for the pattern-collapsed exact search.
#[derive(Clone, Debug)]
pub struct FptConfig {
    /// Hard cap on the number of distinct row patterns `P`. The search is
    /// exponential in `P`, not in `n`; beyond this many patterns the other
    /// engines are the better tool.
    pub max_patterns: usize,
    /// Cap on evaluated (state, block) search nodes; exhausting it is an
    /// error — this engine never returns unproven incumbents.
    pub max_nodes: u64,
    /// Cap on recursion depth (one level per chosen block on a search
    /// path); a backstop against adversarial multiplicity profiles.
    pub max_depth: usize,
}

impl Default for FptConfig {
    fn default() -> Self {
        FptConfig {
            max_patterns: 12,
            max_nodes: 50_000_000,
            max_depth: 4_096,
        }
    }
}

const INF: u64 = u64::MAX / 4;

struct Searcher<'a> {
    /// Distinct patterns, lexicographically sorted.
    patterns: &'a [Vec<u32>],
    m: usize,
    k: usize,
    /// Largest mixed-block size worth considering, `2k − 1`.
    band: usize,
    /// State → (optimal cost, best first block as per-pattern counts).
    memo: HashMap<Vec<u32>, (u64, Vec<u32>)>,
    nodes: u64,
    max_nodes: u64,
    max_depth: usize,
    ticker: PollTicker<'a>,
}

impl Searcher<'_> {
    /// A state is free when every remaining pattern has multiplicity 0 or
    /// ≥ k: pure per-pattern blocks suppress nothing.
    fn is_free(&self, rem: &[u32]) -> bool {
        rem.iter().all(|&c| c == 0 || c as usize >= self.k)
    }

    fn charge_node(&mut self) -> Result<()> {
        self.ticker.tick()?;
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            return Err(Error::InstanceTooLarge {
                solver: "fpt",
                limit: format!("node budget of {} exhausted", self.max_nodes),
            });
        }
        Ok(())
    }

    /// Suppressed cells of a block mixing the patterns with `chosen[j] > 0`:
    /// block size times the number of columns the chosen patterns disagree
    /// on (a block of a single pattern costs zero).
    fn block_cost(&self, chosen: &[u32], size: usize) -> u64 {
        let mut stars = 0u64;
        for col in 0..self.m {
            let mut first: Option<u32> = None;
            for (j, &c) in chosen.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let v = self.patterns[j][col];
                match first {
                    None => first = Some(v),
                    Some(f) if f != v => {
                        stars += 1;
                        break;
                    }
                    Some(_) => {}
                }
            }
        }
        size as u64 * stars
    }

    /// Exact optimal suppression for the residual multiset `rem`.
    fn solve(&mut self, rem: Vec<u32>, depth: usize) -> Result<u64> {
        if self.is_free(&rem) {
            return Ok(0);
        }
        if let Some(entry) = self.memo.get(&rem) {
            return Ok(entry.0);
        }
        if depth >= self.max_depth {
            return Err(Error::InstanceTooLarge {
                solver: "fpt",
                limit: format!("search depth exceeded {}", self.max_depth),
            });
        }
        let total: usize = rem.iter().map(|&c| c as usize).sum();
        // Pivot: the scarcest remaining pattern. Every partition has a
        // block containing one of its copies, so enumerating only blocks
        // that include the pivot is lossless; picking the *scarcest*
        // pattern retires awkward sub-k leftovers first, which keeps
        // search paths short.
        let pivot = rem
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .min_by_key(|&(_, &c)| c)
            .map(|(j, _)| j)
            .expect("non-free state has a remaining pattern");

        let mut best = INF;
        let mut best_block: Vec<u32> = Vec::new();
        let mut chosen = vec![0u32; rem.len()];
        self.explore(
            &rem,
            total,
            pivot,
            0,
            0,
            depth,
            &mut chosen,
            &mut best,
            &mut best_block,
        )?;
        self.memo.insert(rem, (best, best_block));
        Ok(best)
    }

    /// DFS over per-pattern block counts `chosen[idx..]`, evaluating every
    /// complete band-size block that includes the pivot.
    #[allow(clippy::too_many_arguments)]
    fn explore(
        &mut self,
        rem: &[u32],
        total: usize,
        pivot: usize,
        idx: usize,
        size: usize,
        depth: usize,
        chosen: &mut Vec<u32>,
        best: &mut u64,
        best_block: &mut Vec<u32>,
    ) -> Result<()> {
        if idx == rem.len() {
            if size < self.k || chosen[pivot] == 0 {
                return Ok(());
            }
            let left = total - size;
            if left != 0 && left < self.k {
                return Ok(());
            }
            self.charge_node()?;
            let cost = self.block_cost(chosen, size);
            if cost >= *best {
                return Ok(());
            }
            let mut next: Vec<u32> = rem.to_vec();
            for (j, &c) in chosen.iter().enumerate() {
                next[j] -= c;
            }
            let sub = self.solve(next, depth + 1)?;
            let tot = cost.saturating_add(sub);
            if tot < *best {
                *best = tot;
                best_block.clear();
                best_block.extend_from_slice(chosen);
            }
            return Ok(());
        }
        let cap = (rem[idx] as usize).min(self.band - size) as u32;
        let lo = u32::from(idx == pivot);
        let mut c = lo;
        while c <= cap {
            chosen[idx] = c;
            self.explore(
                rem,
                total,
                pivot,
                idx + 1,
                size + c as usize,
                depth,
                chosen,
                best,
                best_block,
            )?;
            c += 1;
        }
        chosen[idx] = 0;
        Ok(())
    }
}

/// Distinct patterns, lexicographically sorted, paired with the list of
/// concrete row indices realizing each.
type Collapsed = (Vec<Vec<u32>>, Vec<Vec<usize>>);

/// Collapses the dataset into its distinct row patterns.
fn collapse(ds: &Dataset, budget: &Budget) -> Result<Collapsed> {
    let mut ticker = budget.ticker();
    let mut groups: HashMap<&[u32], Vec<usize>> = HashMap::new();
    for r in 0..ds.n_rows() {
        ticker.tick()?;
        groups.entry(ds.row(r)).or_default().push(r);
    }
    let mut pairs: Vec<(Vec<u32>, Vec<usize>)> = groups
        .into_iter()
        .map(|(p, rows)| (p.to_vec(), rows))
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(pairs.into_iter().unzip())
}

/// `true` when the dataset has at most `cap` distinct row patterns; bails
/// out of the scan as soon as the cap is crossed, so this is cheap even on
/// diverse tables. Used by [`super::optimal`] to decide whether this engine
/// applies.
pub(crate) fn pattern_count_within(ds: &Dataset, cap: usize) -> bool {
    let mut seen: std::collections::HashSet<&[u32]> = std::collections::HashSet::new();
    for r in 0..ds.n_rows() {
        seen.insert(ds.row(r));
        if seen.len() > cap {
            return false;
        }
    }
    true
}

/// Runs the pattern-collapsed fixed-parameter exact search.
///
/// # Errors
/// * [`Error::KZero`] / [`Error::KExceedsRows`] on a bad `k`;
/// * [`Error::InstanceTooLarge`] when the pattern cap, node budget, or
///   depth backstop is exceeded.
pub fn fpt(ds: &Dataset, k: usize, config: &FptConfig) -> Result<Optimal> {
    try_fpt_governed(ds, k, config, &Budget::unlimited())
}

/// Budget-governed [`fpt`]: the collapse pass and every evaluated search
/// node poll `budget`.
///
/// # Errors
/// As [`fpt`], plus [`Error::BudgetExceeded`] / [`Error::Overflow`].
pub fn try_fpt_governed(
    ds: &Dataset,
    k: usize,
    config: &FptConfig,
    budget: &Budget,
) -> Result<Optimal> {
    ds.check_k(k)?;
    budget.check()?;
    let (patterns, rows_of) = collapse(ds, budget)?;
    let p = patterns.len();
    if p > config.max_patterns {
        return Err(Error::InstanceTooLarge {
            solver: "fpt",
            limit: format!(
                "{p} distinct row patterns exceed max_patterns = {}",
                config.max_patterns
            ),
        });
    }
    // Patterns + one count-vector per memo state; charge the fixed part.
    budget.try_charge_memory((p as u64) * (ds.n_cols() as u64 + 2) * 8)?;

    let counts: Vec<u32> = rows_of.iter().map(|rows| rows.len() as u32).collect();
    let mut searcher = Searcher {
        patterns: &patterns,
        m: ds.n_cols(),
        k,
        band: 2 * k - 1,
        memo: HashMap::new(),
        nodes: 0,
        max_nodes: config.max_nodes,
        max_depth: config.max_depth,
        ticker: budget.ticker(),
    };
    let best = searcher.solve(counts.clone(), 0)?;
    if best >= INF {
        return Err(Error::InvalidPartition(
            "fpt search found no feasible band partition".into(),
        ));
    }

    // Replay the memoized choices, mapping pattern counts back to concrete
    // row indices (rows of one pattern are interchangeable).
    let mut remaining = counts;
    let mut rows_left = rows_of;
    let mut assignment = vec![usize::MAX; ds.n_rows()];
    let mut block_id = 0usize;
    loop {
        if searcher.is_free(&remaining) {
            for (j, rem) in remaining.iter_mut().enumerate() {
                if *rem > 0 {
                    for r in rows_left[j].drain(..) {
                        assignment[r] = block_id;
                    }
                    *rem = 0;
                    block_id += 1;
                }
            }
            break;
        }
        let (_, block) = searcher
            .memo
            .get(&remaining)
            .expect("optimal path state was memoized");
        let block = block.clone();
        for (j, &c) in block.iter().enumerate() {
            for _ in 0..c {
                let r = rows_left[j].pop().expect("multiplicity tracked");
                assignment[r] = block_id;
            }
            remaining[j] -= c;
        }
        block_id += 1;
    }
    let partition = Partition::from_assignment(&assignment);
    let cost = partition.anonymization_cost(ds);
    debug_assert_eq!(cost as u64, best, "replayed partition realizes the DP cost");
    Ok(Optimal { cost, partition })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{subset_dp, SubsetDpConfig};
    use proptest::prelude::*;

    fn solve(rows: Vec<Vec<u32>>, k: usize) -> Optimal {
        let ds = Dataset::from_rows(rows).unwrap();
        fpt(&ds, k, &FptConfig::default()).unwrap()
    }

    #[test]
    fn duplicates_are_free_at_any_scale() {
        // 10_000 identical rows: one pattern, zero cost, instantly.
        let ds = Dataset::from_fn(10_000, 4, |_, j| j as u32);
        let opt = fpt(&ds, 7, &FptConfig::default()).unwrap();
        assert_eq!(opt.cost, 0);
        assert!(opt.partition.min_block_size() >= Some(7));
    }

    #[test]
    fn lone_leftover_joins_the_cheapest_mix() {
        // 999 copies of (0,0,0) and one (0,0,1), k = 2: the stray row must
        // share a block with one clone — 2 rows × 1 disagreeing column.
        let mut rows = vec![vec![0, 0, 0]; 999];
        rows.push(vec![0, 0, 1]);
        let opt = solve(rows, 2);
        assert_eq!(opt.cost, 2);
    }

    #[test]
    fn two_clusters_k3() {
        let opt = solve(
            vec![
                vec![0, 0, 0],
                vec![0, 0, 1],
                vec![0, 0, 2],
                vec![7, 7, 7],
                vec![7, 7, 8],
                vec![7, 7, 9],
            ],
            3,
        );
        assert_eq!(opt.cost, 6);
    }

    #[test]
    fn pattern_cap_rejects_diverse_tables() {
        let ds = Dataset::from_fn(40, 2, |i, _| i as u32);
        assert!(matches!(
            fpt(&ds, 2, &FptConfig::default()),
            Err(Error::InstanceTooLarge { .. })
        ));
        assert!(!pattern_count_within(&ds, 12));
        assert!(pattern_count_within(&ds, 40));
    }

    #[test]
    fn node_budget_exhaustion_is_an_error() {
        // All-distinct rows: every pattern has multiplicity 1, so the free
        // shortcut never fires and the search must expand real nodes.
        let ds = Dataset::from_fn(10, 3, |i, j| (i * 3 + j) as u32);
        let config = FptConfig {
            max_nodes: 2,
            ..Default::default()
        };
        assert!(matches!(
            fpt(&ds, 2, &config),
            Err(Error::InstanceTooLarge { .. })
        ));
    }

    #[test]
    fn governed_matches_and_cancellation_propagates() {
        let ds = Dataset::from_fn(12, 3, |i, j| ((i * 3 + j) % 3) as u32);
        let plain = fpt(&ds, 2, &FptConfig::default()).unwrap();
        let governed =
            try_fpt_governed(&ds, 2, &FptConfig::default(), &Budget::unlimited()).unwrap();
        assert_eq!(plain.cost, governed.cost);

        let cancelled = Budget::unlimited();
        cancelled.cancel();
        assert!(matches!(
            try_fpt_governed(&ds, 2, &FptConfig::default(), &cancelled),
            Err(Error::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn partition_is_consistent_with_reported_cost() {
        let rows = vec![
            vec![0, 0],
            vec![0, 0],
            vec![0, 1],
            vec![1, 1],
            vec![1, 1],
            vec![1, 0],
        ];
        let ds = Dataset::from_rows(rows).unwrap();
        let opt = fpt(&ds, 2, &FptConfig::default()).unwrap();
        assert_eq!(opt.partition.anonymization_cost(&ds), opt.cost);
        assert!(opt.partition.min_block_size() >= Some(2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The FPT engine agrees with the subset DP in the small-m /
        /// small-alphabet regime it targets.
        #[test]
        fn agrees_with_subset_dp(
            flat in proptest::collection::vec(0u32..3, 8 * 4),
            k in 1usize..5,
        ) {
            let ds = Dataset::from_flat(8, 4, flat).unwrap();
            let dp = subset_dp(&ds, k, &SubsetDpConfig::default()).unwrap();
            let ft = fpt(&ds, k, &FptConfig::default()).unwrap();
            prop_assert_eq!(ft.cost, dp.cost);
            prop_assert!(ft.partition.min_block_size() >= Some(k));
        }
    }
}
