//! Exact optimal k-anonymity solvers.
//!
//! The paper proves optimal k-anonymity NP-hard, so exact solvers are
//! necessarily exponential; they exist here as the *OPT oracle* against
//! which the approximation ratios of Theorems 4.1 and 4.2 are measured
//! (experiments E1/E2), and as the decision oracle inside the hardness
//! reduction verifiers (experiments E5/E6).
//!
//! Four engines with different sweet spots:
//!
//! * [`fpt`] — fixed-parameter search over *distinct row patterns* with
//!   multiplicities; exact for any `n` when the table carries few distinct
//!   rows (small degree × small alphabet, the regime of the hardness
//!   gadgets). The preferred engine whenever it applies.
//! * [`subset_dp`] — dynamic programming over row bitmasks,
//!   `O(3^n)`-ish but exact and allocation-light; the default for `n ≤ 20`.
//! * [`branch_and_bound`] — partition search with admissible lower bounds
//!   (per-row k-NN distance and open-block deficits); handles larger
//!   clustered instances and can run anytime (returns the best found with a
//!   proof flag).
//! * [`pattern_bb`] — searches over per-row suppression *patterns* instead
//!   of partitions, exploiting repeated rows; strongest when the alphabet
//!   and arity are small (the regime of Sweeney's exact algorithm \[8\]).
//!
//! All engines agree on every instance (cross-checked by tests), and all
//! exploit the §4.1 observation that optimal solutions may be assumed to
//! use groups of size at most `2k − 1`.

mod branch_and_bound;
mod fpt;
mod pattern_bb;
mod subset_dp;

pub use branch_and_bound::{
    branch_and_bound, try_branch_and_bound_governed, BranchBoundConfig, BranchBoundResult,
};
pub use fpt::{fpt, try_fpt_governed, FptConfig};
pub use pattern_bb::{pattern_bb, try_pattern_bb_governed, PatternConfig};
pub use subset_dp::{
    min_diameter_sum, subset_dp, try_min_diameter_sum_governed, try_subset_dp_governed,
    SubsetDpConfig,
};

use crate::dataset::Dataset;
use crate::error::Result;
use crate::partition::Partition;

/// An exact optimum: the minimum objective value and a partition achieving
/// it. For the anonymity solvers the objective is the suppressed-cell
/// count; for [`min_diameter_sum`] it is the partition's diameter sum.
#[derive(Clone, Debug)]
pub struct Optimal {
    /// Minimum objective value.
    pub cost: usize,
    /// A partition achieving `cost`.
    pub partition: Partition,
}

/// Solves the instance exactly with the most appropriate engine: the
/// pattern-collapsed `fpt` search when the table has few distinct rows
/// (exact at any `n`), else `subset_dp` when `n` fits, otherwise
/// `branch_and_bound` with its proof flag required.
///
/// # Errors
/// Propagates engine errors; fails if no engine can certify optimality
/// within its limits.
pub fn optimal(ds: &Dataset, k: usize) -> Result<Optimal> {
    ds.check_k(k)?;
    let fpt_config = FptConfig::default();
    if fpt::pattern_count_within(ds, fpt_config.max_patterns) {
        match fpt(ds, k, &fpt_config) {
            Ok(opt) => return Ok(opt),
            // Node/depth exhaustion: fall through to the other engines.
            Err(crate::error::Error::InstanceTooLarge { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    if ds.n_rows() <= SubsetDpConfig::default().max_rows {
        return subset_dp(ds, k, &SubsetDpConfig::default());
    }
    let res = branch_and_bound(ds, k, &BranchBoundConfig::default())?;
    if !res.proven_optimal {
        return Err(crate::error::Error::InstanceTooLarge {
            solver: "optimal",
            limit: format!(
                "branch and bound exhausted its node budget after {} nodes",
                res.nodes
            ),
        });
    }
    Ok(Optimal {
        cost: res.cost,
        partition: res.partition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_dispatches_to_dp_for_small_instances() {
        let ds = Dataset::from_rows(vec![vec![0, 0], vec![0, 1], vec![5, 5], vec![5, 5]]).unwrap();
        let opt = optimal(&ds, 2).unwrap();
        assert_eq!(opt.cost, 2);
        assert_eq!(opt.partition.n_blocks(), 2);
    }
}
