//! Exact optimum by dynamic programming over row subsets.
//!
//! `dp[mask]` is the minimum total `ANON` cost of partitioning the rows in
//! `mask` into groups of size `k..=2k−1`. To avoid enumerating each
//! partition more than once, the block containing the lowest-indexed row of
//! `mask` is enumerated explicitly:
//!
//! ```text
//! dp[mask] = min over S ⊆ mask, low(mask) ∈ S, k ≤ |S| ≤ 2k−1 of
//!            ANON(S) + dp[mask ∖ S]
//! ```
//!
//! Restricting blocks to at most `2k−1` rows is lossless (§4.1: any larger
//! group can be split without increasing cost). Memory is `2^n` cost slots
//! plus `2^n` parent pointers, so the solver is guarded at `n ≤ 24` by
//! default (20 in the [`SubsetDpConfig::default`]).

use super::Optimal;
use crate::dataset::Dataset;
use crate::diameter::anon_cost;
use crate::error::{Error, Result};
use crate::govern::Budget;
use crate::partition::Partition;

/// Tuning knobs for the subset DP.
#[derive(Clone, Debug)]
pub struct SubsetDpConfig {
    /// Hard cap on `n`; `2^n` table entries are allocated.
    pub max_rows: usize,
}

impl Default for SubsetDpConfig {
    fn default() -> Self {
        SubsetDpConfig { max_rows: 20 }
    }
}

/// Computes the exact optimum.
///
/// ```
/// use kanon_core::{Dataset, exact::{subset_dp, SubsetDpConfig}};
/// let ds = Dataset::from_rows(vec![
///     vec![0, 0], vec![0, 1], vec![5, 5], vec![5, 5],
/// ]).unwrap();
/// let opt = subset_dp(&ds, 2, &SubsetDpConfig::default()).unwrap();
/// assert_eq!(opt.cost, 2); // pair {0,1} stars one column each; {2,3} is free
/// assert_eq!(opt.partition.n_blocks(), 2);
/// ```
///
/// # Errors
/// * [`Error::KZero`] / [`Error::KExceedsRows`] on a bad `k`;
/// * [`Error::InstanceTooLarge`] when `n > config.max_rows` or `n > 24`.
pub fn subset_dp(ds: &Dataset, k: usize, config: &SubsetDpConfig) -> Result<Optimal> {
    try_subset_dp_governed(ds, k, config, &Budget::unlimited())
}

/// Budget-governed [`subset_dp`]: the `2^n`-slot tables are charged against
/// the memory cap before allocation and the mask/subset enumeration loops
/// poll `budget` at bounded intervals.
///
/// # Errors
/// As [`subset_dp`], plus [`Error::BudgetExceeded`].
pub fn try_subset_dp_governed(
    ds: &Dataset,
    k: usize,
    config: &SubsetDpConfig,
    budget: &Budget,
) -> Result<Optimal> {
    dp_over_blocks(ds, k, config, "subset_dp", budget, |rows| {
        anon_cost(ds, rows) as u64
    })
}

/// The optimal **k-minimum diameter sum** (§4.1): the minimum of
/// `Σ_S d(S)` over all partitions of the rows into blocks of size
/// `k..=2k−1` — exactly the quantity `min_Π d(Π)` in Lemma 4.1 (whose
/// minimum ranges over that same restricted family). Shares the subset-DP
/// engine with [`subset_dp`], only the block cost differs.
///
/// # Errors
/// Same as [`subset_dp`].
pub fn min_diameter_sum(ds: &Dataset, k: usize, config: &SubsetDpConfig) -> Result<Optimal> {
    try_min_diameter_sum_governed(ds, k, config, &Budget::unlimited())
}

/// Budget-governed [`min_diameter_sum`]; see [`try_subset_dp_governed`].
///
/// # Errors
/// As [`min_diameter_sum`], plus [`Error::BudgetExceeded`].
pub fn try_min_diameter_sum_governed(
    ds: &Dataset,
    k: usize,
    config: &SubsetDpConfig,
    budget: &Budget,
) -> Result<Optimal> {
    dp_over_blocks(ds, k, config, "min_diameter_sum", budget, |rows| {
        crate::diameter::diameter(ds, rows) as u64
    })
}

/// Shared DP engine: minimize an additive per-block cost over all
/// partitions into blocks of size `k..=2k−1`.
fn dp_over_blocks(
    ds: &Dataset,
    k: usize,
    config: &SubsetDpConfig,
    solver: &'static str,
    budget: &Budget,
    block_cost: impl Fn(&[usize]) -> u64,
) -> Result<Optimal> {
    ds.check_k(k)?;
    budget.check()?;
    let n = ds.n_rows();
    let hard_cap = 24;
    if n > config.max_rows || n > hard_cap {
        return Err(Error::InstanceTooLarge {
            solver,
            limit: format!("n = {n} exceeds limit {}", config.max_rows.min(hard_cap)),
        });
    }

    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    const INF: u64 = u64::MAX / 2;
    // 8-byte dp slot + 4-byte parent pointer per mask.
    budget.try_charge_memory(((full as u64) + 1).saturating_mul(12))?;
    let mut dp = vec![INF; (full as usize) + 1];
    let mut parent = vec![0u32; (full as usize) + 1];
    dp[0] = 0;

    let cost_of = |block_mask: u32| -> u64 {
        let rows: Vec<usize> = (0..n).filter(|&r| block_mask & (1 << r) != 0).collect();
        block_cost(&rows)
    };

    let max_block = (2 * k - 1).min(n);

    let mut ticker = budget.ticker();
    for mask in 1..=(full as usize) {
        ticker.tick()?;
        let mask = mask as u32;
        let pc = mask.count_ones() as usize;
        if pc < k {
            continue; // Unpartitionable remainder; stays INF.
        }
        let low = mask.trailing_zeros();
        let rest = mask & !(1 << low);
        // Bits of `rest` as positions, for combination enumeration.
        let rest_bits: Vec<u32> = (0..n as u32).filter(|&b| rest & (1 << b) != 0).collect();
        let lo_bit = 1u32 << low;

        // Enumerate each subset of `rest_bits` of size k-1 ..= max_block-1
        // exactly once (elements taken in ascending index order).
        let mut best = INF;
        let mut best_block = 0u32;
        let consider = |block: u32, best: &mut u64, best_block: &mut u32| {
            let remainder = mask & !block;
            let rem_cost = dp[remainder as usize];
            if rem_cost < INF {
                let total = cost_of(block) + rem_cost;
                if total < *best {
                    *best = total;
                    *best_block = block;
                }
            }
        };
        if k == 1 {
            consider(lo_bit, &mut best, &mut best_block);
        }
        let l = rest_bits.len();
        // (next start index, chosen bits among rest, chosen count).
        let mut stack: Vec<(usize, u32, usize)> = vec![(0, 0, 0)];
        while let Some((start, chosen, cnt)) = stack.pop() {
            ticker.tick()?;
            #[allow(clippy::needless_range_loop)] // j's *index* feeds the continuation push
            for j in start..l {
                let nc = chosen | (1u32 << rest_bits[j]);
                let size = cnt + 2; // +1 taken bit, +1 for `low`
                if size >= k && size <= max_block {
                    consider(nc | lo_bit, &mut best, &mut best_block);
                }
                // Continue extending if the block may still grow and could
                // still reach size k with the bits after j.
                if size < max_block && j + 1 < l && size + (l - j - 1) >= k {
                    stack.push((j + 1, nc, cnt + 1));
                }
            }
        }
        dp[mask as usize] = best;
        parent[mask as usize] = best_block;
    }

    if dp[full as usize] >= INF {
        // Cannot happen for k ≤ n, but keep the invariant explicit.
        return Err(Error::InvalidPartition(format!(
            "{solver}: DP found no feasible partition"
        )));
    }

    // Reconstruct blocks.
    let mut blocks: Vec<Vec<u32>> = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let block = parent[mask as usize];
        debug_assert!(block != 0 && block & !mask == 0, "corrupt parent chain");
        blocks.push((0..n as u32).filter(|&r| block & (1 << r) != 0).collect());
        mask &= !block;
    }
    let partition = Partition::new(blocks, n, k)?;
    Ok(Optimal {
        cost: dp[full as usize] as usize,
        partition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::anon_cost as anon;
    use proptest::prelude::*;

    fn solve(rows: Vec<Vec<u32>>, k: usize) -> Optimal {
        let ds = Dataset::from_rows(rows).unwrap();
        subset_dp(&ds, k, &SubsetDpConfig::default()).unwrap()
    }

    #[test]
    fn pairs_of_duplicates_cost_zero() {
        let opt = solve(vec![vec![1, 1], vec![1, 1], vec![2, 2], vec![2, 2]], 2);
        assert_eq!(opt.cost, 0);
        assert_eq!(opt.partition.n_blocks(), 2);
    }

    #[test]
    fn forced_merge_pays_disagreement() {
        // Two rows differing in one column must merge for k = 2: 2 stars.
        let opt = solve(vec![vec![0, 0], vec![0, 1]], 2);
        assert_eq!(opt.cost, 2);
    }

    #[test]
    fn optimal_prefers_cheap_pairing() {
        // Rows: a=00, a'=01, b=50 51? Craft so pairing (0,1) and (2,3) beats
        // cross pairings.
        let opt = solve(vec![vec![0, 0], vec![0, 1], vec![9, 0], vec![9, 1]], 2);
        // Pair {0,1} costs 2 (col 1), {2,3} costs 2 → total 4.
        // Cross pairing {0,2} costs 2, {1,3} costs 2 → also 4. Either way 4.
        assert_eq!(opt.cost, 4);
    }

    #[test]
    fn k3_grouping() {
        let opt = solve(
            vec![
                vec![0, 0, 0],
                vec![0, 0, 1],
                vec![0, 0, 2],
                vec![7, 7, 7],
                vec![7, 7, 8],
                vec![7, 7, 9],
            ],
            3,
        );
        // Each triple suppresses its last column: 3 + 3.
        assert_eq!(opt.cost, 6);
        assert_eq!(opt.partition.n_blocks(), 2);
    }

    #[test]
    fn k_equals_n_returns_single_block() {
        let opt = solve(vec![vec![0, 5], vec![1, 5], vec![2, 5]], 3);
        assert_eq!(opt.cost, 3); // column 0 suppressed in all three rows
        assert_eq!(opt.partition.n_blocks(), 1);
    }

    #[test]
    fn k1_is_free() {
        let opt = solve(vec![vec![3], vec![4], vec![5]], 1);
        assert_eq!(opt.cost, 0);
        assert_eq!(opt.partition.n_blocks(), 3);
    }

    #[test]
    fn odd_row_joins_cheapest_group() {
        // 5 rows, k = 2: one block of 3 somewhere.
        let opt = solve(
            vec![
                vec![0, 0],
                vec![0, 0],
                vec![0, 1], // cheapest third wheel for the block above
                vec![9, 9],
                vec![9, 9],
            ],
            2,
        );
        // {0,1,2}: col 1 non-constant → 3 stars; {3,4}: 0. Total 3.
        // Alternative {0,1} + {2,3,4}: both cols differ in second block → 6.
        assert_eq!(opt.cost, 3);
    }

    #[test]
    fn guard_rejects_large_instances() {
        let ds = Dataset::from_fn(21, 1, |i, _| i as u32);
        assert!(matches!(
            subset_dp(&ds, 2, &SubsetDpConfig::default()),
            Err(Error::InstanceTooLarge { .. })
        ));
    }

    #[test]
    fn governed_unlimited_matches_and_memory_cap_trips() {
        let ds = Dataset::from_fn(14, 3, |i, j| ((i * 5 + j) % 4) as u32);
        let plain = subset_dp(&ds, 2, &SubsetDpConfig::default()).unwrap();
        let governed =
            try_subset_dp_governed(&ds, 2, &SubsetDpConfig::default(), &Budget::unlimited())
                .unwrap();
        assert_eq!(plain.cost, governed.cost);
        assert_eq!(plain.partition, governed.partition);

        // 2^14 masks need 12 B each ≈ 196 KiB; a 1 KiB cap fails up front.
        let starved = Budget::builder().max_memory_bytes(1024).build();
        assert!(matches!(
            try_subset_dp_governed(&ds, 2, &SubsetDpConfig::default(), &starved),
            Err(Error::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn reported_cost_matches_partition_cost() {
        let ds = Dataset::from_rows(vec![
            vec![0, 1, 2],
            vec![0, 1, 3],
            vec![4, 1, 2],
            vec![4, 5, 2],
            vec![0, 5, 3],
            vec![4, 5, 3],
        ])
        .unwrap();
        let opt = subset_dp(&ds, 2, &SubsetDpConfig::default()).unwrap();
        assert_eq!(opt.cost, opt.partition.anonymization_cost(&ds));
        assert!(opt.partition.min_block_size().unwrap() >= 2);
    }

    /// Brute-force reference: enumerate *all* partitions with blocks ≥ k via
    /// restricted-growth strings, no 2k−1 cap, and compare.
    fn brute_force(ds: &Dataset, k: usize) -> usize {
        fn rec(
            ds: &Dataset,
            k: usize,
            assignment: &mut Vec<usize>,
            next_block: usize,
            best: &mut usize,
        ) {
            let n = ds.n_rows();
            if assignment.len() == n {
                let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); next_block];
                for (r, &b) in assignment.iter().enumerate() {
                    blocks[b].push(r);
                }
                if blocks.iter().all(|b| b.len() >= k) {
                    let cost: usize = blocks.iter().map(|b| anon(ds, b)).sum();
                    *best = (*best).min(cost);
                }
                return;
            }
            for b in 0..=next_block.min(assignment.len()) {
                assignment.push(b);
                rec(ds, k, assignment, next_block.max(b + 1), best);
                assignment.pop();
            }
        }
        let mut best = usize::MAX;
        rec(ds, k, &mut Vec::new(), 0, &mut best);
        best
    }

    #[test]
    fn min_diameter_sum_on_clusters() {
        let ds = Dataset::from_rows(vec![
            vec![0, 0, 0],
            vec![0, 0, 1],
            vec![7, 7, 7],
            vec![7, 7, 8],
        ])
        .unwrap();
        let opt = min_diameter_sum(&ds, 2, &SubsetDpConfig::default()).unwrap();
        // Pairing within clusters: d = 1 + 1.
        assert_eq!(opt.cost, 2);
        assert_eq!(opt.cost, opt.partition.diameter_sum(&ds));
    }

    #[test]
    fn diameter_and_anon_optima_can_differ() {
        // Lemma 4.1 relates but does not equate the two objectives; check
        // both run and the standard sandwich holds on a small instance.
        let ds = Dataset::from_rows(vec![
            vec![0, 0, 0],
            vec![1, 1, 0],
            vec![0, 1, 1],
            vec![2, 2, 2],
            vec![2, 2, 3],
            vec![3, 2, 2],
        ])
        .unwrap();
        let k = 3;
        let dsum = min_diameter_sum(&ds, k, &SubsetDpConfig::default()).unwrap();
        let opt = subset_dp(&ds, k, &SubsetDpConfig::default()).unwrap();
        // Lower bound of Lemma 4.1: (k/2)·dΠ* ≤ OPT.
        assert!(k * dsum.cost <= 2 * opt.cost);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Lemma 4.1 lower bound holds on random instances:
        /// (k/2) · min_Π d(Π) ≤ OPT.
        #[test]
        fn lemma_lower_bound_holds(
            flat in proptest::collection::vec(0u32..3, 6 * 4),
            k in 1usize..4,
        ) {
            let ds = Dataset::from_flat(6, 4, flat).unwrap();
            let dsum = min_diameter_sum(&ds, k, &SubsetDpConfig::default()).unwrap();
            let opt = subset_dp(&ds, k, &SubsetDpConfig::default()).unwrap();
            prop_assert!(k * dsum.cost <= 2 * opt.cost,
                "k = {k}, dΠ* = {}, OPT = {}", dsum.cost, opt.cost);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// subset_dp matches an unconstrained brute force on tiny instances,
        /// confirming the 2k−1 block cap is lossless.
        #[test]
        fn matches_unrestricted_brute_force(
            flat in proptest::collection::vec(0u32..3, 6 * 3),
            k in 1usize..4,
        ) {
            let ds = Dataset::from_flat(6, 3, flat).unwrap();
            let opt = subset_dp(&ds, k, &SubsetDpConfig::default()).unwrap();
            prop_assert_eq!(opt.cost, brute_force(&ds, k));
            prop_assert_eq!(opt.cost, opt.partition.anonymization_cost(&ds));
        }
    }
}
