//! Exact optimum by search over suppression *patterns*.
//!
//! An equivalent formulation of optimal k-anonymity (used by Sweeney's exact
//! algorithm for relations of small degree, cited as [8] in the paper):
//! choose for every row `r` a pattern `P_r ⊆ {1..m}` of suppressed columns;
//! rows with the same pattern **and** the same surviving values form a
//! *cell*; every non-empty cell must contain at least `k` rows; minimize
//! `Σ_r |P_r|`. The minimum equals the partition formulation's optimum:
//! rounding a partition gives each block one cell, and conversely the cells
//! of a feasible pattern assignment are a legal partition whose rounding
//! costs no more.
//!
//! For small `m` the universe of candidate cells — `(pattern, projection)`
//! pairs supported by at least `k` rows — is small (`≤ 2^m · n`), so a
//! branch and bound over per-row cell choices is effective. This engine is
//! the designated cross-check for the low-degree regime (`m = O(log n)`),
//! complementing [`super::subset_dp`] which scales in `n` instead.

use std::collections::HashMap;

use super::Optimal;
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::govern::{Budget, PollTicker};
use crate::greedy::{reduce, try_center_greedy_cover_governed, CenterConfig};
use crate::partition::Partition;

/// Tuning knobs for the pattern search.
#[derive(Clone, Debug)]
pub struct PatternConfig {
    /// Hard cap on `n`.
    pub max_rows: usize,
    /// Hard cap on `m` (the cell universe is `O(2^m · n)`).
    pub max_cols: usize,
    /// Node budget; exhausting it is an error (this engine does not return
    /// unproven incumbents).
    pub max_nodes: u64,
}

impl Default for PatternConfig {
    fn default() -> Self {
        PatternConfig {
            max_rows: 32,
            max_cols: 14,
            max_nodes: 50_000_000,
        }
    }
}

#[derive(Clone, Debug)]
struct Cell {
    price: u64,
    /// Supporting rows, ascending.
    supporters: Vec<u32>,
}

struct Searcher<'a> {
    cells: &'a [Cell],
    row_cells: &'a [Vec<usize>],
    suffix_lb: &'a [u64],
    k: usize,
    n: usize,
    assigned_count: Vec<usize>,
    /// Distinct used cells, in assignment order (DFS stack discipline).
    used_cells: Vec<usize>,
    choice: Vec<usize>,
    best_cost: u64,
    best_choice: Option<Vec<usize>>,
    nodes: u64,
    max_nodes: u64,
    out_of_budget: bool,
    /// Budget poll, one tick per expanded node.
    ticker: PollTicker<'a>,
}

impl Searcher<'_> {
    fn supporters_from(&self, cell: usize, idx: usize) -> usize {
        let sup = &self.cells[cell].supporters;
        let pos = sup.partition_point(|&r| (r as usize) < idx);
        sup.len() - pos
    }

    fn run(&mut self, idx: usize, cost: u64) -> Result<()> {
        self.ticker.tick()?;
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.out_of_budget = true;
            return Ok(());
        }
        if idx == self.n {
            // Entry-time checks only prove quotas *reachable*; verify they
            // were actually met before capturing.
            let quotas_met = self
                .used_cells
                .iter()
                .all(|&c| self.assigned_count[c] >= self.k);
            if quotas_met && cost < self.best_cost {
                self.best_cost = cost;
                self.best_choice = Some(self.choice.clone());
            }
            return Ok(());
        }
        if cost + self.suffix_lb[idx] >= self.best_cost {
            return Ok(());
        }
        // Quota feasibility: every used, under-filled cell must still be
        // able to reach k from rows not yet assigned that support it.
        for u in 0..self.used_cells.len() {
            let c = self.used_cells[u];
            let cnt = self.assigned_count[c];
            if cnt < self.k && cnt + self.supporters_from(c, idx) < self.k {
                return Ok(());
            }
        }

        for opt in 0..self.row_cells[idx].len() {
            let c = self.row_cells[idx][opt];
            let price = self.cells[c].price;
            if cost + price + self.suffix_lb[idx + 1] >= self.best_cost {
                // Options are price-sorted; all later ones are no cheaper.
                break;
            }
            if self.assigned_count[c] == 0 {
                self.used_cells.push(c);
            }
            self.assigned_count[c] += 1;
            self.choice[idx] = c;
            self.run(idx + 1, cost + price)?;
            self.assigned_count[c] -= 1;
            if self.assigned_count[c] == 0 {
                let popped = self.used_cells.pop();
                debug_assert_eq!(popped, Some(c));
            }
            if self.out_of_budget {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Runs the pattern-based exact search.
///
/// # Errors
/// * [`Error::KZero`] / [`Error::KExceedsRows`] on a bad `k`;
/// * [`Error::InstanceTooLarge`] when the guards or the node budget are
///   exceeded.
pub fn pattern_bb(ds: &Dataset, k: usize, config: &PatternConfig) -> Result<Optimal> {
    try_pattern_bb_governed(ds, k, config, &Budget::unlimited())
}

/// Budget-governed [`pattern_bb`]: the `2^m`-pattern cell-universe build,
/// the greedy incumbent, and every expanded node poll `budget`.
///
/// # Errors
/// As [`pattern_bb`], plus [`Error::BudgetExceeded`] / [`Error::Overflow`].
pub fn try_pattern_bb_governed(
    ds: &Dataset,
    k: usize,
    config: &PatternConfig,
    budget: &Budget,
) -> Result<Optimal> {
    ds.check_k(k)?;
    budget.check()?;
    let n = ds.n_rows();
    let m = ds.n_cols();
    if n > config.max_rows || m > config.max_cols {
        return Err(Error::InstanceTooLarge {
            solver: "pattern_bb",
            limit: format!(
                "n = {n}, m = {m} exceed limits (max_rows = {}, max_cols = {})",
                config.max_rows, config.max_cols
            ),
        });
    }

    // Cell universe ≤ 2^m · n entries of (price + supporter id) order.
    budget.try_charge_memory((1u64 << m).saturating_mul(n as u64).saturating_mul(8))?;

    // Build the feasible-cell universe, pattern by pattern.
    let mut universe_ticker = budget.ticker();
    let mut cells: Vec<Cell> = Vec::new();
    let mut row_cells: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut patterns: Vec<u32> = (0..(1u32 << m)).collect();
    patterns.sort_by_key(|p| p.count_ones());
    for pattern in patterns {
        universe_ticker.tick()?;
        let price = u64::from(pattern.count_ones());
        // Group rows by their projection outside the pattern.
        let mut groups: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for r in 0..n {
            let key: Vec<u32> = ds
                .row(r)
                .iter()
                .enumerate()
                .filter(|&(j, _)| pattern & (1 << j) == 0)
                .map(|(_, &v)| v)
                .collect();
            groups.entry(key).or_default().push(r as u32);
        }
        for (_, supporters) in groups {
            if supporters.len() >= k {
                let id = cells.len();
                for &r in &supporters {
                    row_cells[r as usize].push(id);
                }
                cells.push(Cell { price, supporters });
            }
        }
    }
    // Patterns were visited in ascending popcount, so each row's options are
    // already price-sorted.
    debug_assert!(row_cells.iter().all(|cs| cs
        .windows(2)
        .all(|w| cells[w[0]].price <= cells[w[1]].price)));

    let lb: Vec<u64> = row_cells
        .iter()
        .map(|cs| cs.first().map_or(u64::from(u32::MAX), |&c| cells[c].price))
        .collect();
    let mut suffix_lb = vec![0u64; n + 1];
    for r in (0..n).rev() {
        suffix_lb[r] = suffix_lb[r + 1] + lb[r];
    }

    // Incumbent from the polynomial greedy; its failures are tolerated
    // except a tripped budget, which must propagate.
    let incumbent = match try_center_greedy_cover_governed(ds, k, &CenterConfig::default(), budget)
        .and_then(|c| reduce(&c, k))
        .map(|p| p.anonymization_cost(ds) as u64)
    {
        Ok(c) => c,
        Err(e @ (Error::BudgetExceeded { .. } | Error::Overflow { .. })) => return Err(e),
        Err(_) => u64::MAX / 2,
    };

    let mut searcher = Searcher {
        cells: &cells,
        row_cells: &row_cells,
        suffix_lb: &suffix_lb,
        k,
        n,
        assigned_count: vec![0; cells.len()],
        used_cells: Vec::new(),
        choice: vec![usize::MAX; n],
        best_cost: incumbent + 1,
        best_choice: None,
        nodes: 0,
        max_nodes: config.max_nodes,
        out_of_budget: false,
        ticker: budget.ticker(),
    };
    searcher.run(0, 0)?;
    if searcher.out_of_budget {
        return Err(Error::InstanceTooLarge {
            solver: "pattern_bb",
            limit: format!("node budget of {} exhausted", config.max_nodes),
        });
    }

    let choice = searcher.best_choice.ok_or_else(|| {
        Error::InvalidPartition("pattern search found no feasible assignment".into())
    })?;
    // Cells of the assignment are the blocks of the certified partition.
    let mut ids: Vec<usize> = choice.clone();
    ids.sort_unstable();
    ids.dedup();
    let assignment: Vec<usize> = choice
        .iter()
        .map(|c| ids.binary_search(c).expect("id present"))
        .collect();
    let partition = Partition::from_assignment(&assignment);
    let cost = partition.anonymization_cost(ds);
    debug_assert!(cost as u64 <= searcher.best_cost);
    Ok(Optimal { cost, partition })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{subset_dp, SubsetDpConfig};
    use proptest::prelude::*;

    fn pb(rows: Vec<Vec<u32>>, k: usize) -> Optimal {
        let ds = Dataset::from_rows(rows).unwrap();
        pattern_bb(&ds, k, &PatternConfig::default()).unwrap()
    }

    #[test]
    fn duplicates_are_free() {
        let opt = pb(vec![vec![1, 2], vec![1, 2], vec![1, 2]], 3);
        assert_eq!(opt.cost, 0);
    }

    #[test]
    fn single_disagreement_column() {
        let opt = pb(vec![vec![0, 0], vec![0, 1]], 2);
        assert_eq!(opt.cost, 2);
    }

    #[test]
    fn two_clusters_k3() {
        let opt = pb(
            vec![
                vec![0, 0, 0],
                vec![0, 0, 1],
                vec![0, 0, 2],
                vec![7, 7, 7],
                vec![7, 7, 8],
                vec![7, 7, 9],
            ],
            3,
        );
        assert_eq!(opt.cost, 6);
    }

    #[test]
    fn guards_reject_oversize() {
        let wide = Dataset::from_fn(4, 20, |i, j| (i + j) as u32);
        assert!(matches!(
            pattern_bb(&wide, 2, &PatternConfig::default()),
            Err(Error::InstanceTooLarge { .. })
        ));
        let tall = Dataset::from_fn(40, 2, |i, _| i as u32);
        assert!(matches!(
            pattern_bb(&tall, 2, &PatternConfig::default()),
            Err(Error::InstanceTooLarge { .. })
        ));
    }

    #[test]
    fn governed_unlimited_matches_and_cancellation_propagates() {
        let ds = Dataset::from_fn(8, 3, |i, j| ((i * 3 + j) % 3) as u32);
        let plain = pattern_bb(&ds, 2, &PatternConfig::default()).unwrap();
        let governed =
            try_pattern_bb_governed(&ds, 2, &PatternConfig::default(), &Budget::unlimited())
                .unwrap();
        assert_eq!(plain.cost, governed.cost);

        let cancelled = Budget::unlimited();
        cancelled.cancel();
        assert!(matches!(
            try_pattern_bb_governed(&ds, 2, &PatternConfig::default(), &cancelled),
            Err(Error::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_is_an_error() {
        let ds = Dataset::from_fn(10, 4, |i, j| ((i * 5 + j) % 3) as u32);
        let config = PatternConfig {
            max_nodes: 3,
            ..Default::default()
        };
        assert!(matches!(
            pattern_bb(&ds, 2, &config),
            Err(Error::InstanceTooLarge { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The pattern engine agrees with the subset DP.
        #[test]
        fn agrees_with_subset_dp(
            flat in proptest::collection::vec(0u32..3, 7 * 3),
            k in 1usize..4,
        ) {
            let ds = Dataset::from_flat(7, 3, flat).unwrap();
            let dp = subset_dp(&ds, k, &SubsetDpConfig::default()).unwrap();
            let pb = pattern_bb(&ds, k, &PatternConfig::default()).unwrap();
            prop_assert_eq!(pb.cost, dp.cost);
        }
    }
}
