//! Weighted k-anonymity: column-weighted suppression cost.
//!
//! The paper's objective counts every starred cell equally, but cells are
//! not equally informative — suppressing a near-constant column costs the
//! analyst almost nothing, suppressing a high-entropy column costs a lot
//! (see [`crate::stats`]). This extension generalizes the objective to
//! `Σ_S |S| · Σ_{j non-constant on S} w_j` for per-column weights `w ≥ 0`,
//! and provides a weighted nearest-neighbour partitioner. With uniform
//! weights everything degenerates to the unweighted machinery — a property
//! the tests verify differentially. Experiment E20 measures the utility won
//! by entropy weighting on census microdata.
//!
//! The paper's greedy analyses carry over: weighted Hamming distance is
//! still a metric, weighted diameter still obeys the Figure 1 triangle
//! inequality, and the set-cover argument is weight-agnostic. We expose the
//! clustering heuristic rather than a full weighted center greedy because
//! E8/E14 show clustering is the practical frontier anyway.

use crate::dataset::{Dataset, Value};
use crate::diameter::non_constant_columns;
use crate::error::{Error, Result};
use crate::partition::Partition;
use crate::stats::column_entropies;

/// Per-column non-negative weights.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnWeights {
    weights: Vec<f64>,
}

impl ColumnWeights {
    /// Builds weights, validating non-negativity and finiteness.
    ///
    /// # Errors
    /// [`Error::InvalidPartition`] if any weight is negative or non-finite.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(Error::InvalidPartition(format!(
                "column weight {w} must be finite and non-negative"
            )));
        }
        Ok(ColumnWeights { weights })
    }

    /// Uniform weight 1 per column — the paper's objective.
    #[must_use]
    pub fn uniform(m: usize) -> Self {
        ColumnWeights {
            weights: vec![1.0; m],
        }
    }

    /// Shannon-entropy weights: each column weighted by how informative it
    /// is in `ds`. Constant columns get weight 0 (free to suppress).
    #[must_use]
    pub fn entropy(ds: &Dataset) -> Self {
        ColumnWeights {
            weights: column_entropies(ds),
        }
    }

    /// Number of columns covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Borrow the weights.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }
}

/// Weighted Hamming distance: `Σ_{j : u[j] ≠ v[j]} w_j`. A metric for any
/// non-negative weights.
///
/// # Panics
/// Panics in debug builds on length mismatches.
#[must_use]
pub fn weighted_distance(u: &[Value], v: &[Value], w: &ColumnWeights) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    debug_assert_eq!(u.len(), w.len());
    u.iter()
        .zip(v)
        .zip(w.as_slice())
        .filter(|((a, b), _)| a != b)
        .map(|(_, &wj)| wj)
        .sum()
}

/// Weighted `ANON`: `|S| · Σ_{j non-constant on S} w_j`.
#[must_use]
pub fn weighted_anon_cost(ds: &Dataset, w: &ColumnWeights, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let cols = non_constant_columns(ds, rows);
    let col_weight: f64 = cols.iter().map(|j| w.as_slice()[j]).sum();
    rows.len() as f64 * col_weight
}

/// Total weighted cost of a partition's Corollary 4.1 rounding.
#[must_use]
pub fn weighted_partition_cost(ds: &Dataset, w: &ColumnWeights, partition: &Partition) -> f64 {
    partition
        .blocks()
        .iter()
        .map(|b| {
            let rows: Vec<usize> = b.iter().map(|&r| r as usize).collect();
            weighted_anon_cost(ds, w, &rows)
        })
        .sum()
}

/// Nearest-neighbour greedy partitioning under the weighted distance:
/// seeds the lowest-indexed unassigned row, absorbs its `k−1` weighted-
/// nearest unassigned rows; the final `k..2k−1` leftovers form one block.
///
/// With [`ColumnWeights::uniform`] this matches the unweighted knn
/// baseline's grouping rule exactly (differentially tested).
///
/// # Errors
/// Standard `k` validation errors; [`Error::InvalidPartition`] on a
/// weight-arity mismatch.
pub fn weighted_knn_greedy(ds: &Dataset, w: &ColumnWeights, k: usize) -> Result<Partition> {
    ds.check_k(k)?;
    if w.len() != ds.n_cols() {
        return Err(Error::InvalidPartition(format!(
            "{} weights for {} columns",
            w.len(),
            ds.n_cols()
        )));
    }
    let n = ds.n_rows();
    let mut unassigned: Vec<u32> = (0..n as u32).collect();
    let mut blocks: Vec<Vec<u32>> = Vec::new();
    while unassigned.len() >= 2 * k {
        let seed = unassigned[0];
        let seed_row = ds.row(seed as usize);
        let mut rest: Vec<(f64, u32)> = unassigned[1..]
            .iter()
            .map(|&r| (weighted_distance(seed_row, ds.row(r as usize), w), r))
            .collect();
        // Total order: ties by row index keep the result deterministic.
        rest.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
        let mut block = vec![seed];
        block.extend(rest.iter().take(k - 1).map(|&(_, r)| r));
        let members: std::collections::HashSet<u32> = block.iter().copied().collect();
        unassigned.retain(|r| !members.contains(r));
        blocks.push(block);
    }
    if !unassigned.is_empty() {
        blocks.push(unassigned);
    }
    Partition::new(blocks, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::anon_cost;
    use proptest::prelude::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![
            vec![0, 0, 1],
            vec![0, 1, 1],
            vec![5, 5, 2],
            vec![5, 6, 2],
        ])
        .unwrap()
    }

    #[test]
    fn weights_validation() {
        assert!(ColumnWeights::new(vec![0.0, 1.5]).is_ok());
        assert!(ColumnWeights::new(vec![-0.1]).is_err());
        assert!(ColumnWeights::new(vec![f64::NAN]).is_err());
        assert!(ColumnWeights::new(vec![f64::INFINITY]).is_err());
        assert!(ColumnWeights::uniform(0).is_empty());
    }

    #[test]
    fn uniform_weights_reduce_to_unweighted() {
        let ds = sample();
        let w = ColumnWeights::uniform(3);
        for rows in [vec![0usize, 1], vec![0, 1, 2, 3], vec![2, 3]] {
            assert!(
                (weighted_anon_cost(&ds, &w, &rows) - anon_cost(&ds, &rows) as f64).abs() < 1e-12,
                "{rows:?}"
            );
        }
        // And the weighted knn grouping matches the unweighted baseline's
        // cost (same rule, same ties).
        let wp = weighted_knn_greedy(&ds, &w, 2).unwrap();
        assert_eq!(
            wp.anonymization_cost(&ds),
            weighted_partition_cost(&ds, &w, &wp) as usize
        );
    }

    #[test]
    fn entropy_weights_ignore_constant_columns() {
        let ds = Dataset::from_rows(vec![vec![1, 9, 0], vec![2, 9, 1], vec![3, 9, 0]]).unwrap();
        let w = ColumnWeights::entropy(&ds);
        assert_eq!(w.as_slice()[1], 0.0);
        assert!(w.as_slice()[0] > w.as_slice()[2]); // 3 distinct vs 2
                                                    // Suppressing only the constant column is free.
        assert_eq!(weighted_anon_cost(&ds, &w, &[0, 1, 2]), {
            let full = w.as_slice()[0] + w.as_slice()[2];
            3.0 * full
        });
    }

    #[test]
    fn weighted_grouping_prefers_protecting_heavy_columns() {
        // Column 0 heavy, column 1 light. Rows pair either way; the
        // weighted grouping must pair rows that agree on column 0.
        let ds = Dataset::from_rows(vec![vec![7, 0], vec![7, 1], vec![8, 0], vec![8, 1]]).unwrap();
        let w = ColumnWeights::new(vec![10.0, 0.1]).unwrap();
        let p = weighted_knn_greedy(&ds, &w, 2).unwrap();
        // Pairing {0,1} and {2,3} keeps column 0 intact: weighted cost 0.4.
        assert!((weighted_partition_cost(&ds, &w, &p) - 0.4).abs() < 1e-12);
        // The opposite pairing would cost 2*2*10.0 = 40 in column 0 alone.
    }

    #[test]
    fn arity_mismatch_rejected() {
        let ds = sample();
        let w = ColumnWeights::uniform(2);
        assert!(weighted_knn_greedy(&ds, &w, 2).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Weighted distance satisfies the metric axioms for random
        /// non-negative weights.
        #[test]
        fn weighted_metric_axioms(
            rows in proptest::collection::vec(proptest::collection::vec(0u32..4, 5), 3),
            weights in proptest::collection::vec(0.0f64..10.0, 5),
        ) {
            let w = ColumnWeights::new(weights).unwrap();
            let (u, v, x) = (&rows[0], &rows[1], &rows[2]);
            prop_assert_eq!(weighted_distance(u, u, &w), 0.0);
            prop_assert_eq!(weighted_distance(u, v, &w), weighted_distance(v, u, &w));
            prop_assert!(
                weighted_distance(u, x, &w)
                    <= weighted_distance(u, v, &w) + weighted_distance(v, x, &w) + 1e-9
            );
        }

        /// Weighted knn always yields a feasible partition whose weighted
        /// cost is consistent with its per-block sum.
        #[test]
        fn weighted_knn_feasible(
            flat in proptest::collection::vec(0u32..3, 9 * 3),
            k in 2usize..4,
            heavy in 0usize..3,
        ) {
            let ds = Dataset::from_flat(9, 3, flat).unwrap();
            let mut weights = vec![1.0; 3];
            weights[heavy] = 5.0;
            let w = ColumnWeights::new(weights).unwrap();
            let p = weighted_knn_greedy(&ds, &w, k).unwrap();
            prop_assert!(p.min_block_size().unwrap() >= k);
            let total: f64 = p
                .blocks()
                .iter()
                .map(|b| {
                    let rows: Vec<usize> = b.iter().map(|&r| r as usize).collect();
                    weighted_anon_cost(&ds, &w, &rows)
                })
                .sum();
            prop_assert!((total - weighted_partition_cost(&ds, &w, &p)).abs() < 1e-9);
        }
    }
}
