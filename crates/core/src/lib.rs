//! # kanon-core
//!
//! A faithful, production-quality implementation of the algorithms and
//! constructions in **Meyerson & Williams, "On the Complexity of Optimal
//! K-Anonymity", PODS 2004**.
//!
//! A database is a multiset of `n` records, each an `m`-dimensional vector
//! over a finite alphabet `Σ` (here: dictionary-coded `u32` values, see
//! [`Dataset`]). A *suppressor* replaces selected entries with a `*`
//! ([`Suppressor`]); the result is *k-anonymous* if every suppressed record
//! is identical to at least `k − 1` others ([`AnonymizedTable::is_k_anonymous`]).
//! The optimization problem is to achieve k-anonymity while suppressing the
//! minimum number of entries. The paper shows this is NP-hard (for `k ≥ 3`,
//! and for the attribute-suppression variant even over binary alphabets) and
//! gives two greedy approximation algorithms, both implemented here:
//!
//! * [`algo::exhaustive_greedy`] — the Theorem 4.1 algorithm: greedy weighted
//!   set cover over **all** subsets of cardinality `k..=2k−1`, followed by the
//!   `Reduce` cover-to-partition conversion and per-group suppression. It is a
//!   `3k(1 + ln k)`-approximation but runs in time exponential in `k`
//!   (`O(n^{2k})`), so it is only usable for small instances.
//! * [`algo::center_greedy`] — the Theorem 4.2 algorithm: greedy set cover
//!   restricted to the center/radius family `S_{c,i} = {v : d(c,v) ≤ i}`.
//!   Strongly polynomial (`O(m·n² + n³)`) and a `6k(1 + ln m)`-approximation.
//!
//! To *measure* those approximation ratios the crate also ships exact optimal
//! solvers ([`exact`]): a subset dynamic program over row masks, a
//! branch-and-bound over partitions, and a pattern-based solver for low-arity
//! tables; plus the attribute-suppression variant ([`attr`]) used by the
//! Theorem 3.2 hardness reduction.
//!
//! ## Quick start
//!
//! ```
//! use kanon_core::{Dataset, algo};
//!
//! // Four 3-attribute records (dictionary-coded values).
//! let ds = Dataset::from_rows(vec![
//!     vec![0, 34, 1],
//!     vec![1, 36, 0],
//!     vec![0, 47, 1],
//!     vec![1, 20, 2],
//! ]).unwrap();
//!
//! let result = algo::center_greedy(&ds, 2, &Default::default()).unwrap();
//! assert!(result.table.is_k_anonymous(2));
//! // Cost = number of suppressed cells.
//! assert_eq!(result.cost, result.table.suppressed_cells());
//! ```

// `deny` rather than `forbid`: the SIMD kernels in `kernel.rs` are the one
// sanctioned unsafe island (raw intrinsics behind runtime feature
// detection) and opt in with a scoped `#[allow(unsafe_code)]`. Everything
// else in the crate still refuses unsafe at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod attr;
pub mod bitset;
pub mod cover;
pub mod dataset;
pub mod diameter;
pub mod distcache;
pub mod error;
pub mod exact;
pub mod govern;
pub mod greedy;
pub mod kernel;
pub mod local_search;
pub mod metric;
pub mod partition;
pub mod rounding;
pub mod scratch;
pub mod stats;
pub mod suppression;
pub mod weighted;

pub use algo::{Algorithm, Anonymization};
pub use bitset::BitSet;
pub use cover::Cover;
pub use dataset::{Dataset, Value};
pub use distcache::PairwiseDistances;
pub use error::{Error, Result};
pub use govern::{Budget, BudgetLease, BudgetPool, Resource};
pub use kernel::Kernel;
pub use partition::Partition;
pub use suppression::{AnonymizedTable, Suppressor};
