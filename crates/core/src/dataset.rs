//! The record matrix: `n` rows over `m` dictionary-coded attributes.
//!
//! The paper models a database as a multiset `V ⊆ Σ^m` of `m`-dimensional
//! vectors over a finite alphabet `Σ` (§2). [`Dataset`] stores those vectors
//! row-major in one contiguous allocation; attribute values are dictionary
//! codes (`u32`), leaving the mapping from codes to domain values (strings,
//! intervals, ...) to the `kanon-relation` crate.

use crate::error::{Error, Result};

/// A dictionary-coded attribute value.
pub type Value = u32;

/// An immutable `n × m` matrix of records.
///
/// Duplicated rows are allowed and meaningful: the k-anonymity predicate
/// counts multiset multiplicity, so pre-existing duplicates reduce the
/// suppression needed.
#[derive(Clone, PartialEq, Eq)]
pub struct Dataset {
    n: usize,
    m: usize,
    /// Row-major flat storage. A `Vec` (not a boxed slice) so sub-table
    /// buffers can round-trip through [`Dataset::into_flat_buffer`] /
    /// [`Dataset::select_rows_into`] without reallocating — the pipeline
    /// workers recycle one buffer across every shard they solve.
    data: Vec<Value>,
}

impl Dataset {
    /// Builds a dataset from owned rows.
    ///
    /// ```
    /// use kanon_core::Dataset;
    /// let ds = Dataset::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap();
    /// assert_eq!((ds.n_rows(), ds.n_cols()), (2, 2));
    /// assert_eq!(ds.row(1), &[3, 4]);
    /// // Ragged input is rejected.
    /// assert!(Dataset::from_rows(vec![vec![1], vec![2, 3]]).is_err());
    /// ```
    ///
    /// # Errors
    /// Returns [`Error::RaggedRows`] if rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<Value>>) -> Result<Self> {
        let n = rows.len();
        let m = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * m);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != m {
                return Err(Error::RaggedRows {
                    expected: m,
                    row: i,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Dataset { n, m, data })
    }

    /// Builds an `n × m` dataset by evaluating `f(row, col)` for each cell.
    pub fn from_fn(n: usize, m: usize, mut f: impl FnMut(usize, usize) -> Value) -> Self {
        let mut data = Vec::with_capacity(n * m);
        for i in 0..n {
            for j in 0..m {
                data.push(f(i, j));
            }
        }
        Dataset { n, m, data }
    }

    /// Builds a dataset from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`Error::RaggedRows`] if `data.len() != n * m`.
    pub fn from_flat(n: usize, m: usize, data: Vec<Value>) -> Result<Self> {
        if data.len() != n * m {
            return Err(Error::RaggedRows {
                expected: n * m,
                row: 0,
                found: data.len(),
            });
        }
        Ok(Dataset { n, m, data })
    }

    /// Number of records (`n`, the paper's `|V|`).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Degree of the relation (`m`, the number of attributes).
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.m
    }

    /// Total number of cells, `n · m`.
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.n * self.m
    }

    /// Borrow row `i` as a slice of `m` values.
    ///
    /// # Panics
    /// Panics if `i >= n_rows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.m..(i + 1) * self.m]
    }

    /// Checked access to row `i`.
    ///
    /// # Errors
    /// Returns [`Error::RowOutOfBounds`] if `i >= n_rows()`.
    pub fn try_row(&self, i: usize) -> Result<&[Value]> {
        if i >= self.n {
            return Err(Error::RowOutOfBounds {
                index: i,
                n: self.n,
            });
        }
        Ok(self.row(i))
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Value {
        assert!(
            col < self.m,
            "column {col} out of bounds for m = {}",
            self.m
        );
        self.data[row * self.m + col]
    }

    /// Iterates over rows as slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Value]> {
        self.data.chunks_exact(self.m.max(1)).take(self.n)
    }

    /// Returns a new dataset restricted to the given row indices (in the
    /// order given; indices may repeat).
    ///
    /// # Errors
    /// Returns [`Error::RowOutOfBounds`] on a bad index.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        let mut data = Vec::with_capacity(indices.len() * self.m);
        for &i in indices {
            if i >= self.n {
                return Err(Error::RowOutOfBounds {
                    index: i,
                    n: self.n,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Dataset {
            n: indices.len(),
            m: self.m,
            data,
        })
    }

    /// As [`Dataset::select_rows`], but over `u32` indices (the sharder's
    /// native row-id type) and reusing `buf` as the backing storage — the
    /// buffer is cleared and refilled, so a worker that round-trips it
    /// through [`Dataset::into_flat_buffer`] allocates nothing per shard
    /// once the buffer has grown to the largest shard it has seen.
    ///
    /// # Errors
    /// Returns [`Error::RowOutOfBounds`] on a bad index.
    pub fn select_rows_into(&self, indices: &[u32], mut buf: Vec<Value>) -> Result<Self> {
        buf.clear();
        buf.reserve(indices.len() * self.m);
        for &i in indices {
            let i = i as usize;
            if i >= self.n {
                return Err(Error::RowOutOfBounds {
                    index: i,
                    n: self.n,
                });
            }
            buf.extend_from_slice(self.row(i));
        }
        Ok(Dataset {
            n: indices.len(),
            m: self.m,
            data: buf,
        })
    }

    /// Consumes the dataset and returns its flat backing buffer (capacity
    /// intact) for reuse via [`Dataset::select_rows_into`].
    #[must_use]
    pub fn into_flat_buffer(self) -> Vec<Value> {
        self.data
    }

    /// Returns a new dataset containing only the given columns (in the
    /// order given; columns may repeat). The usual way to isolate
    /// quasi-identifier attributes before anonymizing.
    ///
    /// ```
    /// use kanon_core::Dataset;
    /// let ds = Dataset::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
    /// let qi = ds.project_columns(&[2, 0]).unwrap();
    /// assert_eq!(qi.row(0), &[3, 1]);
    /// assert!(ds.project_columns(&[7]).is_err());
    /// ```
    ///
    /// # Errors
    /// Returns [`Error::ColumnOutOfBounds`] on a bad index.
    pub fn project_columns(&self, columns: &[usize]) -> Result<Self> {
        for &j in columns {
            if j >= self.m {
                return Err(Error::ColumnOutOfBounds {
                    index: j,
                    m: self.m,
                });
            }
        }
        let mut data = Vec::with_capacity(self.n * columns.len());
        for i in 0..self.n {
            let row = self.row(i);
            data.extend(columns.iter().map(|&j| row[j]));
        }
        Ok(Dataset {
            n: self.n,
            m: columns.len(),
            data,
        })
    }

    /// Number of distinct values appearing in column `j`.
    ///
    /// # Errors
    /// Returns [`Error::ColumnOutOfBounds`] if `j >= n_cols()`.
    pub fn column_cardinality(&self, j: usize) -> Result<usize> {
        if j >= self.m {
            return Err(Error::ColumnOutOfBounds {
                index: j,
                m: self.m,
            });
        }
        let mut seen: Vec<Value> = (0..self.n).map(|i| self.get(i, j)).collect();
        seen.sort_unstable();
        seen.dedup();
        Ok(seen.len())
    }

    /// The largest value code appearing anywhere, or `None` for an empty
    /// dataset. Useful for sizing dictionaries.
    #[must_use]
    pub fn max_value(&self) -> Option<Value> {
        self.data.iter().copied().max()
    }

    /// Validates the privacy parameter against this dataset: `1 ≤ k ≤ n`.
    ///
    /// # Errors
    /// [`Error::KZero`] when `k == 0`; [`Error::KExceedsRows`] when `k > n`.
    pub fn check_k(&self, k: usize) -> Result<()> {
        if k == 0 {
            return Err(Error::KZero);
        }
        if k > self.n {
            return Err(Error::KExceedsRows { k, n: self.n });
        }
        Ok(())
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Dataset {}x{} [", self.n, self.m)?;
        const SHOWN: usize = 8;
        for (i, row) in self.rows().enumerate().take(SHOWN) {
            writeln!(f, "  {i:>4}: {row:?}")?;
        }
        if self.n > SHOWN {
            writeln!(f, "  ... ({} more rows)", self.n - SHOWN)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6], vec![1, 2, 9]]).unwrap()
    }

    #[test]
    fn dimensions_and_access() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_cols(), 3);
        assert_eq!(ds.n_cells(), 9);
        assert_eq!(ds.row(1), &[4, 5, 6]);
        assert_eq!(ds.get(2, 2), 9);
        assert_eq!(ds.rows().count(), 3);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Dataset::from_rows(vec![vec![1, 2], vec![3]]).unwrap_err();
        assert_eq!(
            err,
            Error::RaggedRows {
                expected: 2,
                row: 1,
                found: 1
            }
        );
    }

    #[test]
    fn from_flat_checks_length() {
        assert!(Dataset::from_flat(2, 2, vec![1, 2, 3, 4]).is_ok());
        assert!(Dataset::from_flat(2, 2, vec![1, 2, 3]).is_err());
    }

    #[test]
    fn from_fn_fills_cells() {
        let ds = Dataset::from_fn(2, 3, |i, j| (i * 10 + j) as Value);
        assert_eq!(ds.row(0), &[0, 1, 2]);
        assert_eq!(ds.row(1), &[10, 11, 12]);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::from_rows(vec![]).unwrap();
        assert_eq!(ds.n_rows(), 0);
        assert_eq!(ds.n_cols(), 0);
        assert_eq!(ds.rows().count(), 0);
        assert_eq!(ds.max_value(), None);
    }

    #[test]
    fn zero_column_rows() {
        let ds = Dataset::from_rows(vec![vec![], vec![]]).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.n_cols(), 0);
        assert_eq!(ds.row(0), &[] as &[Value]);
    }

    #[test]
    fn select_rows_and_bounds() {
        let ds = sample();
        let sub = ds.select_rows(&[2, 0]).unwrap();
        assert_eq!(sub.row(0), &[1, 2, 9]);
        assert_eq!(sub.row(1), &[1, 2, 3]);
        assert!(matches!(
            ds.select_rows(&[3]),
            Err(Error::RowOutOfBounds { index: 3, n: 3 })
        ));
    }

    #[test]
    fn project_columns_selects_and_reorders() {
        let ds = sample();
        let p = ds.project_columns(&[2, 0, 2]).unwrap();
        assert_eq!(p.n_cols(), 3);
        assert_eq!(p.row(0), &[3, 1, 3]);
        assert_eq!(p.row(2), &[9, 1, 9]);
        let empty = ds.project_columns(&[]).unwrap();
        assert_eq!(empty.n_cols(), 0);
        assert_eq!(empty.n_rows(), 3);
        assert!(matches!(
            ds.project_columns(&[3]),
            Err(Error::ColumnOutOfBounds { index: 3, m: 3 })
        ));
    }

    #[test]
    fn column_cardinality_counts_distinct() {
        let ds = sample();
        assert_eq!(ds.column_cardinality(0).unwrap(), 2);
        assert_eq!(ds.column_cardinality(2).unwrap(), 3);
        assert!(ds.column_cardinality(5).is_err());
    }

    #[test]
    fn check_k_bounds() {
        let ds = sample();
        assert!(matches!(ds.check_k(0), Err(Error::KZero)));
        assert!(ds.check_k(1).is_ok());
        assert!(ds.check_k(3).is_ok());
        assert!(matches!(
            ds.check_k(4),
            Err(Error::KExceedsRows { k: 4, n: 3 })
        ));
    }

    #[test]
    fn try_row_checks_bounds() {
        let ds = sample();
        assert!(ds.try_row(2).is_ok());
        assert!(ds.try_row(3).is_err());
    }

    #[test]
    fn debug_output_truncates() {
        let big = Dataset::from_fn(20, 2, |i, j| (i + j) as Value);
        let s = format!("{big:?}");
        assert!(s.contains("more rows"));
    }
}
