//! Information-loss and utility metrics for released tables.
//!
//! The paper's objective is the raw star count, but the privacy literature
//! evaluates anonymizations on several complementary metrics; implementing
//! them lets the benchmarks compare algorithms the way practitioners would:
//!
//! * **star count / suppression rate** — the paper's objective;
//! * **discernibility metric** `DM = Σ_G |G|²` (Bayardo–Agrawal): penalizes
//!   over-large groups even when they are cheap in stars;
//! * **normalized average group size** `C_AVG = (n / #groups) / k`:
//!   1.0 means every group is as small as privacy permits;
//! * **entropy-weighted loss** — stars weighted by how informative the
//!   suppressed column was (uniform columns cost little real information,
//!   high-entropy columns a lot).

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::suppression::{AnonymizedTable, Suppressor};

/// Summary metrics of one released table.
#[derive(Clone, Debug, PartialEq)]
pub struct ReleaseStats {
    /// Number of records.
    pub n_rows: usize,
    /// Number of suppressed cells (the paper's objective).
    pub stars: usize,
    /// `stars / (n·m)`, in `[0, 1]`.
    pub suppression_rate: f64,
    /// Number of k-groups in the release.
    pub n_groups: usize,
    /// Smallest group size (the achieved anonymity level); 0 for empty.
    pub anonymity_level: usize,
    /// Discernibility metric `Σ_G |G|²`.
    pub discernibility: u64,
    /// `(n / #groups) / k` — requires the caller's `k`.
    pub normalized_avg_group: f64,
}

/// Computes the release statistics for a table released at privacy level
/// `k` (used only for the normalized average group size).
///
/// ```
/// use kanon_core::{Dataset, algo, stats::release_stats};
/// let ds = Dataset::from_rows(vec![
///     vec![0, 0], vec![0, 1], vec![5, 5], vec![5, 5],
/// ]).unwrap();
/// let released = algo::exact_optimal(&ds, 2).unwrap().table;
/// let stats = release_stats(&released, 2);
/// assert_eq!(stats.n_groups, 2);
/// assert_eq!(stats.discernibility, 8); // 2^2 + 2^2
/// ```
#[must_use]
pub fn release_stats(table: &AnonymizedTable, k: usize) -> ReleaseStats {
    let groups = table.group_sizes();
    let n = table.n_rows();
    let cells = n * table.n_cols();
    let stars = table.suppressed_cells();
    let discernibility = groups.iter().map(|&(_, s)| (s as u64) * (s as u64)).sum();
    let n_groups = groups.len();
    ReleaseStats {
        n_rows: n,
        stars,
        suppression_rate: if cells == 0 {
            0.0
        } else {
            stars as f64 / cells as f64
        },
        n_groups,
        anonymity_level: groups.iter().map(|&(_, s)| s).min().unwrap_or(0),
        discernibility,
        normalized_avg_group: if n_groups == 0 || k == 0 {
            0.0
        } else {
            (n as f64 / n_groups as f64) / k as f64
        },
    }
}

/// Shannon entropy (bits) of each column's value distribution in the
/// original dataset.
#[must_use]
pub fn column_entropies(ds: &Dataset) -> Vec<f64> {
    let n = ds.n_rows();
    let m = ds.n_cols();
    let mut out = Vec::with_capacity(m);
    for j in 0..m {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for i in 0..n {
            *counts.entry(ds.get(i, j)).or_insert(0) += 1;
        }
        let h: f64 = counts
            .values()
            .map(|&c| {
                let p = c as f64 / n as f64;
                -p * p.log2()
            })
            .sum();
        out.push(h);
    }
    out
}

/// Entropy-weighted suppression loss: each star costs the entropy of its
/// column, normalized by the total entropy content `n · Σ_j H_j` so the
/// result lies in `[0, 1]` (0 = nothing lost, 1 = every cell of every
/// informative column starred). Zero-entropy columns are free to suppress —
/// they carried no information.
#[must_use]
pub fn entropy_weighted_loss(ds: &Dataset, suppressor: &Suppressor) -> f64 {
    let entropies = column_entropies(ds);
    let total: f64 = entropies.iter().sum::<f64>() * ds.n_rows() as f64;
    if total == 0.0 {
        return 0.0;
    }
    let mut lost = 0.0;
    for i in 0..ds.n_rows() {
        for (j, h) in entropies.iter().enumerate() {
            if suppressor.is_suppressed(i, j) {
                lost += h;
            }
        }
    }
    lost / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![
            vec![0, 5, 1],
            vec![0, 5, 2],
            vec![1, 5, 3],
            vec![1, 5, 4],
        ])
        .unwrap()
    }

    #[test]
    fn stats_of_a_clean_release() {
        let ds = sample();
        let result = algo::exact_optimal(&ds, 2).unwrap();
        let stats = release_stats(&result.table, 2);
        assert_eq!(stats.n_rows, 4);
        assert_eq!(stats.stars, result.cost);
        assert!(stats.anonymity_level >= 2);
        assert_eq!(stats.n_groups, 2);
        assert!((stats.normalized_avg_group - 1.0).abs() < 1e-12);
        assert_eq!(stats.discernibility, 4 + 4);
        assert!(stats.suppression_rate > 0.0 && stats.suppression_rate < 1.0);
    }

    #[test]
    fn discernibility_prefers_small_groups() {
        // One group of 4 vs two groups of 2 over the same rows.
        let ds = sample();
        let one = crate::Partition::new_unchecked(vec![(0..4).collect()], 4);
        let two = crate::Partition::new(vec![vec![0, 1], vec![2, 3]], 4, 2).unwrap();
        let s1 = crate::rounding::suppressor_for_partition(&ds, &one).unwrap();
        let s2 = crate::rounding::suppressor_for_partition(&ds, &two).unwrap();
        let t1 = s1.apply(&ds).unwrap();
        let t2 = s2.apply(&ds).unwrap();
        assert!(release_stats(&t1, 2).discernibility > release_stats(&t2, 2).discernibility);
    }

    #[test]
    fn entropies_reflect_distributions() {
        let ds = sample();
        let h = column_entropies(&ds);
        assert!((h[0] - 1.0).abs() < 1e-12); // two values, 50/50
        assert_eq!(h[1], 0.0); // constant column
        assert!((h[2] - 2.0).abs() < 1e-12); // four distinct values
    }

    #[test]
    fn entropy_loss_ignores_constant_columns() {
        let ds = sample();
        // Suppress the constant column everywhere: no information lost.
        let mut s = Suppressor::identity(4, 3);
        for i in 0..4 {
            s.suppress(i, 1);
        }
        assert_eq!(entropy_weighted_loss(&ds, &s), 0.0);
        // Suppressing the high-entropy column costs more than column 0.
        let mut s_hi = Suppressor::identity(4, 3);
        let mut s_lo = Suppressor::identity(4, 3);
        for i in 0..4 {
            s_hi.suppress(i, 2);
            s_lo.suppress(i, 0);
        }
        assert!(entropy_weighted_loss(&ds, &s_hi) > entropy_weighted_loss(&ds, &s_lo));
    }

    #[test]
    fn empty_table_edge_cases() {
        let ds = Dataset::from_rows(vec![]).unwrap();
        let t = Suppressor::identity(0, 0).apply(&ds).unwrap();
        let stats = release_stats(&t, 3);
        assert_eq!(stats.n_groups, 0);
        assert_eq!(stats.suppression_rate, 0.0);
        assert_eq!(entropy_weighted_loss(&ds, &Suppressor::identity(0, 0)), 0.0);
    }

    #[test]
    fn full_suppression_loses_everything_informative() {
        let ds = sample();
        let mut s = Suppressor::identity(4, 3);
        for i in 0..4 {
            for j in 0..3 {
                s.suppress(i, j);
            }
        }
        assert!((entropy_weighted_loss(&ds, &s) - 1.0).abs() < 1e-12);
    }
}
