//! l-diversity: the follow-up privacy notion, layered on k-anonymity.
//!
//! k-anonymity (this paper's subject) stops *identity* disclosure but not
//! *attribute* disclosure: if all `k` members of a group share the same
//! sensitive value, an attacker who locates the group learns the value
//! without identifying anyone. Machanavajjhala et al.'s **l-diversity**
//! (ICDE 2006) patches this: every group must contain at least `l`
//! *distinct* sensitive values. This module provides:
//!
//! * [`is_l_diverse`] / [`diversity_violations`] — the check, given a
//!   partition and a designated sensitive column (held *outside* the
//!   quasi-identifier dataset, as in practice);
//! * [`enforce_l_diversity`] — greedy repair: merge each violating group
//!   with the quasi-identifier-nearest group that adds sensitive variety,
//!   preserving the ≥ k floor throughout.
//!
//! Flagged as an extension in DESIGN.md; experiment E21 measures what the
//! stronger notion costs on census microdata.

use std::collections::HashSet;

use crate::dataset::Dataset;
use crate::diameter::diameter;
use crate::error::{Error, Result};
use crate::partition::Partition;

/// Distinct sensitive values within one block.
fn block_diversity(sensitive: &[u32], block: &[u32]) -> usize {
    let mut seen = HashSet::new();
    for &r in block {
        seen.insert(sensitive[r as usize]);
    }
    seen.len()
}

/// Whether every block of `partition` contains at least `l` distinct values
/// of the sensitive column.
///
/// # Errors
/// [`Error::InvalidPartition`] if `sensitive` does not cover every row.
pub fn is_l_diverse(partition: &Partition, sensitive: &[u32], l: usize) -> Result<bool> {
    Ok(diversity_violations(partition, sensitive, l)?.is_empty())
}

/// Indices of blocks with fewer than `l` distinct sensitive values.
///
/// # Errors
/// [`Error::InvalidPartition`] if `sensitive` does not cover every row.
pub fn diversity_violations(
    partition: &Partition,
    sensitive: &[u32],
    l: usize,
) -> Result<Vec<usize>> {
    if sensitive.len() != partition.n_rows() {
        return Err(Error::InvalidPartition(format!(
            "{} sensitive values for {} rows",
            sensitive.len(),
            partition.n_rows()
        )));
    }
    Ok(partition
        .blocks()
        .iter()
        .enumerate()
        .filter(|(_, b)| block_diversity(sensitive, b) < l)
        .map(|(i, _)| i)
        .collect())
}

/// Outcome of [`enforce_l_diversity`].
#[derive(Clone, Debug)]
pub struct DiversityResult {
    /// The repaired partition (k-feasible, l-diverse).
    pub partition: Partition,
    /// Number of merges performed.
    pub merges: usize,
    /// Suppression cost before repair.
    pub cost_before: usize,
    /// Suppression cost after repair (≥ before; diversity is not free).
    pub cost_after: usize,
}

/// Greedily repairs a k-feasible partition until every block is l-diverse:
/// each violating block merges with the (quasi-identifier) nearest other
/// block whose union improves diversity — measured by group diameter — until
/// no violations remain.
///
/// # Errors
/// * [`Error::InvalidPartition`] on a sensitive-column arity mismatch;
/// * [`Error::InstanceTooLarge`]-style failure is impossible, but the
///   repair fails with [`Error::InvalidPartition`] if the *whole table*
///   has fewer than `l` distinct sensitive values (no partition can fix
///   that).
pub fn enforce_l_diversity(
    ds: &Dataset,
    partition: &Partition,
    sensitive: &[u32],
    l: usize,
) -> Result<DiversityResult> {
    if sensitive.len() != partition.n_rows() {
        return Err(Error::InvalidPartition(format!(
            "{} sensitive values for {} rows",
            sensitive.len(),
            partition.n_rows()
        )));
    }
    let global: HashSet<u32> = sensitive.iter().copied().collect();
    if global.len() < l {
        return Err(Error::InvalidPartition(format!(
            "table has only {} distinct sensitive values; l = {l} is unreachable",
            global.len()
        )));
    }

    let cost_before = partition.anonymization_cost(ds);
    let mut blocks: Vec<Vec<u32>> = partition.blocks().to_vec();
    let mut merges = 0usize;

    while let Some(violator) = blocks
        .iter()
        .position(|b| block_diversity(sensitive, b) < l)
    {
        // Nearest partner (by merged diameter) that strictly improves
        // diversity; fall back to the overall nearest if none improves —
        // repeated merging must eventually reach l since the table has
        // enough distinct values.
        let base_div = block_diversity(sensitive, &blocks[violator]);
        let mut best: Option<(bool, usize, usize)> = None; // (improves, diameter, idx)
        for (i, other) in blocks.iter().enumerate() {
            if i == violator {
                continue;
            }
            let mut union: Vec<usize> = blocks[violator]
                .iter()
                .chain(other)
                .map(|&r| r as usize)
                .collect();
            union.sort_unstable();
            let d = diameter(ds, &union);
            let improves = block_diversity(sensitive, &merged(&blocks[violator], other)) > base_div;
            // Prefer improving partners; among equals, smaller diameter.
            let key = (improves, d, i);
            let better = match best {
                None => true,
                Some((bi, bd, _)) => (improves && !bi) || (improves == bi && d < bd),
            };
            if better {
                best = Some(key);
            }
        }
        let (_, _, partner) = best.ok_or_else(|| {
            Error::InvalidPartition("cannot repair: only one block remains".into())
        })?;
        // Remove the higher index via swap_remove so the lower stays valid,
        // then fold the absorbed block into the survivor.
        let (hi, lo) = if partner > violator {
            (partner, violator)
        } else {
            (violator, partner)
        };
        let absorbed = blocks.swap_remove(hi);
        blocks[lo].extend(absorbed);
        merges += 1;
    }

    let repaired = Partition::new_unchecked(blocks, ds.n_rows());
    let cost_after = repaired.anonymization_cost(ds);
    Ok(DiversityResult {
        partition: repaired,
        merges,
        cost_before,
        cost_after,
    })
}

fn merged(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter().chain(b).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    /// Two QI clusters; sensitive values chosen so one group is uniform.
    fn setup() -> (Dataset, Partition, Vec<u32>) {
        let ds = Dataset::from_rows(vec![vec![0, 0], vec![0, 1], vec![9, 9], vec![9, 8]]).unwrap();
        let p = Partition::new(vec![vec![0, 1], vec![2, 3]], 4, 2).unwrap();
        // Group {0,1} shares sensitive value 5: k-anonymous but not 2-diverse.
        let sensitive = vec![5, 5, 1, 2];
        (ds, p, sensitive)
    }

    #[test]
    fn detects_uniform_sensitive_groups() {
        let (_, p, sensitive) = setup();
        assert!(!is_l_diverse(&p, &sensitive, 2).unwrap());
        assert_eq!(diversity_violations(&p, &sensitive, 2).unwrap(), vec![0]);
        assert!(is_l_diverse(&p, &sensitive, 1).unwrap());
    }

    #[test]
    fn repair_merges_until_diverse() {
        let (ds, p, sensitive) = setup();
        let result = enforce_l_diversity(&ds, &p, &sensitive, 2).unwrap();
        assert!(is_l_diverse(&result.partition, &sensitive, 2).unwrap());
        assert!(result.merges >= 1);
        assert!(result.cost_after >= result.cost_before);
        assert!(result.partition.min_block_size().unwrap() >= 2);
        let total: usize = result.partition.blocks().iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn already_diverse_is_untouched() {
        let ds = Dataset::from_rows(vec![vec![0], vec![0], vec![1], vec![1]]).unwrap();
        let p = Partition::new(vec![vec![0, 1], vec![2, 3]], 4, 2).unwrap();
        let sensitive = vec![1, 2, 3, 4];
        let result = enforce_l_diversity(&ds, &p, &sensitive, 2).unwrap();
        assert_eq!(result.merges, 0);
        assert_eq!(result.cost_after, result.cost_before);
    }

    #[test]
    fn unreachable_l_is_an_error() {
        let (ds, p, _) = setup();
        let uniform_sensitive = vec![7, 7, 7, 7];
        assert!(enforce_l_diversity(&ds, &p, &uniform_sensitive, 2).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (ds, p, _) = setup();
        assert!(is_l_diverse(&p, &[1, 2], 2).is_err());
        assert!(enforce_l_diversity(&ds, &p, &[1, 2], 2).is_err());
    }

    #[test]
    fn end_to_end_with_greedy_partition() {
        // Census-flavoured: anonymize QI, then enforce diversity on a
        // synthetic sensitive column engineered to violate it.
        let ds = Dataset::from_fn(12, 3, |i, j| ((i / 3) * 10 + j) as u32);
        let result = algo::center_greedy(&ds, 3, &Default::default()).unwrap();
        // Sensitive: constant within each natural cluster of 3.
        let sensitive: Vec<u32> = (0..12).map(|i| (i / 3) as u32).collect();
        let repaired = enforce_l_diversity(&ds, &result.partition, &sensitive, 2).unwrap();
        assert!(is_l_diverse(&repaired.partition, &sensitive, 2).unwrap());
        assert!(repaired.partition.min_block_size().unwrap() >= 3);
    }
}
