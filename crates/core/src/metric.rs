//! The Hamming distance of Definition 4.1.
//!
//! `d(u, v) = |{j : u[j] ≠ v[j]}|` — the number of coordinates in which two
//! records differ, i.e. the minimum number of suppressions needed *in each of
//! the two records* to make them identical. The paper notes this function is
//! a metric; `proptest` checks in this module verify the axioms.

use crate::dataset::{Dataset, Value};

/// Hamming distance between two equal-length value slices.
///
/// ```
/// use kanon_core::metric::hamming;
/// assert_eq!(hamming(&[1, 0, 1, 0], &[0, 1, 1, 0]), 2); // the paper's §4 example
/// ```
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[must_use]
pub fn hamming(u: &[Value], v: &[Value]) -> usize {
    debug_assert_eq!(u.len(), v.len(), "hamming distance needs equal lengths");
    u.iter().zip(v).filter(|(a, b)| a != b).count()
}

/// Hamming distance with early exit: returns `None` as soon as the distance
/// is known to exceed `limit`, otherwise `Some(distance)`.
///
/// Useful in nearest-neighbour loops where most pairs are far apart.
#[must_use]
pub fn hamming_within(u: &[Value], v: &[Value], limit: usize) -> Option<usize> {
    debug_assert_eq!(u.len(), v.len());
    let mut d = 0;
    for (a, b) in u.iter().zip(v) {
        if a != b {
            d += 1;
            if d > limit {
                return None;
            }
        }
    }
    Some(d)
}

/// Distance between two rows of a dataset.
///
/// # Panics
/// Panics if either index is out of bounds.
#[must_use]
pub fn row_distance(ds: &Dataset, i: usize, j: usize) -> usize {
    hamming(ds.row(i), ds.row(j))
}

/// The full `n × n` pairwise distance matrix, stored row-major as `u32`.
///
/// Costs `O(m·n²)` time and `4n²` bytes; this is the preprocessing step of
/// the strongly polynomial algorithm (Theorem 4.2).
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    entries: Box<[u32]>,
}

impl DistanceMatrix {
    /// Computes all pairwise row distances.
    #[must_use]
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.n_rows();
        let mut entries = vec![0u32; n * n];
        for i in 0..n {
            let ri = ds.row(i);
            for j in (i + 1)..n {
                let d = hamming(ri, ds.row(j)) as u32;
                entries[i * n + j] = d;
                entries[j * n + i] = d;
            }
        }
        DistanceMatrix {
            n,
            entries: entries.into_boxed_slice(),
        }
    }

    /// Like [`DistanceMatrix::build`], splitting the `O(m·n²)` work across
    /// `threads` OS threads. Each thread fills a contiguous band of rows
    /// (recomputing both triangle halves — simpler ownership, same
    /// asymptotics). `threads <= 1` falls back to the sequential build.
    #[must_use]
    pub fn build_parallel(ds: &Dataset, threads: usize) -> Self {
        let n = ds.n_rows();
        if threads <= 1 || n < 64 {
            return Self::build(ds);
        }
        let mut entries = vec![0u32; n * n];
        let rows_per_band = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest: &mut [u32] = &mut entries;
            let mut start = 0usize;
            while start < n {
                let band = rows_per_band.min(n - start);
                let (chunk, tail) = rest.split_at_mut(band * n);
                rest = tail;
                let first = start;
                scope.spawn(move || {
                    for (local, i) in (first..first + band).enumerate() {
                        let ri = ds.row(i);
                        for j in 0..n {
                            chunk[local * n + j] = hamming(ri, ds.row(j)) as u32;
                        }
                    }
                });
                start += band;
            }
        });
        DistanceMatrix {
            n,
            entries: entries.into_boxed_slice(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between rows `i` and `j`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        self.entries[i * self.n + j]
    }

    /// The row of distances from `i` to every row (including itself, 0).
    #[must_use]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.entries[i * self.n..(i + 1) * self.n]
    }

    /// Distance from row `i` to its `t`-th nearest *other* row
    /// (`t = 1` is the nearest neighbour). Returns `None` if `t >= n`.
    ///
    /// `kth_neighbor_distance(i, k-1)` is the per-row lower bound used by the
    /// exact branch-and-bound: in any k-anonymization, row `i`'s group
    /// contains `k-1` other rows, so at least this many of its entries must
    /// be suppressed.
    #[must_use]
    pub fn kth_neighbor_distance(&self, i: usize, t: usize) -> Option<u32> {
        if t == 0 {
            return Some(0);
        }
        if t >= self.n {
            return None;
        }
        let mut ds: Vec<u32> = (0..self.n)
            .filter(|&j| j != i)
            .map(|j| self.get(i, j))
            .collect();
        ds.sort_unstable();
        Some(ds[t - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_distances() {
        assert_eq!(hamming(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(hamming(&[1, 2, 3], &[1, 9, 3]), 1);
        assert_eq!(hamming(&[1, 2, 3], &[4, 5, 6]), 3);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    fn paper_example_distance() {
        // §4 example: V = {1010, 1110, 0110}; 1010 and 0110 differ in two
        // coordinates.
        let a = [1, 0, 1, 0];
        let b = [0, 1, 1, 0];
        assert_eq!(hamming(&a, &b), 2);
    }

    #[test]
    fn hamming_within_early_exit() {
        assert_eq!(hamming_within(&[1, 2, 3], &[9, 9, 9], 3), Some(3));
        assert_eq!(hamming_within(&[1, 2, 3], &[9, 9, 9], 2), None);
        assert_eq!(hamming_within(&[1, 2, 3], &[1, 2, 3], 0), Some(0));
    }

    #[test]
    fn distance_matrix_symmetric_zero_diagonal() {
        let ds =
            Dataset::from_rows(vec![vec![1, 0, 1, 0], vec![1, 1, 1, 0], vec![0, 1, 1, 0]]).unwrap();
        let dm = DistanceMatrix::build(&ds);
        for i in 0..3 {
            assert_eq!(dm.get(i, i), 0);
            for j in 0..3 {
                assert_eq!(dm.get(i, j), dm.get(j, i));
                assert_eq!(dm.get(i, j) as usize, row_distance(&ds, i, j));
            }
        }
        assert_eq!(dm.get(0, 2), 2);
    }

    #[test]
    fn kth_neighbor_distance_sorted() {
        let ds = Dataset::from_rows(vec![
            vec![0, 0, 0],
            vec![0, 0, 1],
            vec![1, 1, 1],
            vec![0, 0, 0],
        ])
        .unwrap();
        let dm = DistanceMatrix::build(&ds);
        // Row 0's other-row distances: [1, 3, 0] sorted -> [0, 1, 3].
        assert_eq!(dm.kth_neighbor_distance(0, 1), Some(0));
        assert_eq!(dm.kth_neighbor_distance(0, 2), Some(1));
        assert_eq!(dm.kth_neighbor_distance(0, 3), Some(3));
        assert_eq!(dm.kth_neighbor_distance(0, 4), None);
        assert_eq!(dm.kth_neighbor_distance(0, 0), Some(0));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let ds = Dataset::from_fn(80, 5, |i, j| ((i * 31 + j * 17) % 4) as u32);
        let seq = DistanceMatrix::build(&ds);
        for threads in [1, 2, 3, 7] {
            let par = DistanceMatrix::build_parallel(&ds, threads);
            for i in 0..80 {
                for j in 0..80 {
                    assert_eq!(seq.get(i, j), par.get(i, j), "threads={threads} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn parallel_build_small_input_falls_back() {
        let ds = Dataset::from_fn(10, 3, |i, j| (i + j) as u32);
        let par = DistanceMatrix::build_parallel(&ds, 8);
        let seq = DistanceMatrix::build(&ds);
        assert_eq!(par.row(3), seq.row(3));
    }

    proptest! {
        #[test]
        fn metric_axioms(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..4, 6),
                3,
            )
        ) {
            let (u, v, w) = (&rows[0], &rows[1], &rows[2]);
            // Identity of indiscernibles.
            prop_assert_eq!(hamming(u, u), 0);
            prop_assert_eq!(hamming(u, v) == 0, u == v);
            // Symmetry.
            prop_assert_eq!(hamming(u, v), hamming(v, u));
            // Triangle inequality.
            prop_assert!(hamming(u, w) <= hamming(u, v) + hamming(v, w));
        }

        #[test]
        fn hamming_within_agrees_with_hamming(
            u in proptest::collection::vec(0u32..3, 8),
            v in proptest::collection::vec(0u32..3, 8),
            limit in 0usize..10,
        ) {
            let d = hamming(&u, &v);
            let w = hamming_within(&u, &v, limit);
            if d <= limit {
                prop_assert_eq!(w, Some(d));
            } else {
                prop_assert_eq!(w, None);
            }
        }
    }
}
