//! The Hamming distance of Definition 4.1.
//!
//! `d(u, v) = |{j : u[j] ≠ v[j]}|` — the number of coordinates in which two
//! records differ, i.e. the minimum number of suppressions needed *in each of
//! the two records* to make them identical. The paper notes this function is
//! a metric; `proptest` checks in this module verify the axioms.
//!
//! ## Packed rows
//!
//! The `O(m·n²)` distance-cache build beneath every solver compares
//! attributes one [`Value`] at a time. Dictionary codes are almost always
//! tiny (census-style alphabets have a handful of values per column), so
//! [`PackedRows`] re-encodes each row with one **byte** per attribute
//! (8 attributes per `u64` word) when every code fits a byte, or one
//! 16-bit lane (4 attributes per word) when every code fits `u16`. The
//! Hamming distance of two packed rows is then `XOR` + a SWAR
//! nonzero-lane test + `popcount` per word — ~8 attribute comparisons per
//! word op — with the scalar [`hamming`] kept as the exact-agreement
//! fallback for wide alphabets. See DESIGN.md §4.2a for the encoding and
//! the lane-width selection rules.
//!
//! ## Kernel dispatch and column-major packing
//!
//! The word-level arithmetic lives in [`crate::kernel`], which resolves a
//! [`Kernel`] tier (scalar / SWAR / AVX2 / NEON) once per process. Both
//! packed codecs capture the tier at build time, so probes pay zero
//! per-call dispatch. [`PackedColumns`] stores the same words
//! **column-major** (`words[w·n + i]`): a one-to-many sweep — the access
//! pattern of the distance-cache build and of every center-greedy radius
//! scan — then streams `n` contiguous words per word-column instead of
//! striding `words_per_row` apart, which is what lets the SIMD tiers run
//! at memory bandwidth. See DESIGN.md §13 for the dispatch rules and the
//! work-stealing pipeline that sits on top.

use crate::dataset::{Dataset, Value};
use crate::kernel::{self, Kernel};

/// Hamming distance between two equal-length value slices.
///
/// ```
/// use kanon_core::metric::hamming;
/// assert_eq!(hamming(&[1, 0, 1, 0], &[0, 1, 1, 0]), 2); // the paper's §4 example
/// ```
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[must_use]
pub fn hamming(u: &[Value], v: &[Value]) -> usize {
    debug_assert_eq!(u.len(), v.len(), "hamming distance needs equal lengths");
    kernel::hamming_u32(u, v, kernel::kernel())
}

/// Hamming distance with early exit: returns `None` as soon as the distance
/// is known to exceed `limit`, otherwise `Some(distance)`.
///
/// Useful in nearest-neighbour loops where most pairs are far apart.
#[must_use]
pub fn hamming_within(u: &[Value], v: &[Value], limit: usize) -> Option<usize> {
    debug_assert_eq!(u.len(), v.len());
    let mut d = 0;
    for (a, b) in u.iter().zip(v) {
        if a != b {
            d += 1;
            if d > limit {
                return None;
            }
        }
    }
    Some(d)
}

/// Distance between two rows of a dataset.
///
/// # Panics
/// Panics if either index is out of bounds.
#[must_use]
pub fn row_distance(ds: &Dataset, i: usize, j: usize) -> usize {
    hamming(ds.row(i), ds.row(j))
}

/// Lane width of a [`PackedRows`] encoding: how many bits each attribute
/// occupies inside a `u64` word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Lane {
    /// One byte per attribute, 8 attributes per word; usable when every
    /// dictionary code in the dataset is `<= u8::MAX`.
    B8,
    /// One 16-bit lane per attribute, 4 attributes per word; usable when
    /// every code is `<= u16::MAX`.
    B16,
}

/// Picks the narrowest packed lane that holds the dataset's largest
/// dictionary code, or `None` when some code exceeds `u16::MAX` (callers
/// fall back to the scalar [`hamming`], which is exact for any alphabet).
fn pick_lane(ds: &Dataset) -> Option<Lane> {
    match ds.max_value() {
        None => Some(Lane::B8), // empty dataset: nothing to pack or compare
        Some(v) if v <= Value::from(u8::MAX) => Some(Lane::B8),
        Some(v) if v <= Value::from(u16::MAX) => Some(Lane::B16),
        Some(_) => None,
    }
}

/// Packs one row's attribute codes into zero-initialised `u64` words,
/// little-endian within each word. Shared by the row-major and
/// column-major codecs so both produce bit-identical words.
#[inline]
fn pack_lane(lane: Lane, j: usize, v: Value) -> (usize, u64) {
    let (word, shift) = match lane {
        Lane::B8 => (j / 8, (j % 8) * 8),
        Lane::B16 => (j / 4, (j % 4) * 16),
    };
    (word, u64::from(v) << shift)
}

/// Bit-packed row codec: each row's `m` attribute codes packed
/// little-endian into `u64` lanes, with unused tail lanes zeroed (equal in
/// both operands, so they never contribute to a distance).
///
/// [`PackedRows::distance`] agrees **exactly** with the scalar [`hamming`]
/// on the rows it encodes — pinned by a 1 000-random-pair agreement test in
/// this module and a proptest across alphabet widths.
///
/// ```
/// use kanon_core::{Dataset, metric::{hamming, PackedRows}};
/// let ds = Dataset::from_rows(vec![
///     vec![1, 0, 1, 0, 3, 250, 9, 0, 1],  // 9 attrs: 2 words of 8 lanes
///     vec![0, 1, 1, 0, 3, 251, 9, 0, 2],
/// ]).unwrap();
/// let packed = PackedRows::try_build(&ds).unwrap();
/// assert_eq!(packed.distance(0, 1) as usize, hamming(ds.row(0), ds.row(1)));
/// ```
#[derive(Clone, Debug)]
pub struct PackedRows {
    n: usize,
    words_per_row: usize,
    lane: Lane,
    kernel: Kernel,
    words: Box<[u64]>,
}

impl PackedRows {
    /// Packs every row of `ds`, choosing the narrowest lane that holds the
    /// dataset's largest dictionary code. Returns `None` when some code
    /// exceeds `u16::MAX` — callers fall back to the scalar [`hamming`]
    /// (wide-alphabet datasets are rare and the fallback is exact, just
    /// slower). Probes use the process-wide [`kernel::kernel`] tier,
    /// captured at build time.
    #[must_use]
    pub fn try_build(ds: &Dataset) -> Option<Self> {
        Self::try_build_with(ds, kernel::kernel())
    }

    /// [`PackedRows::try_build`] with an explicit kernel tier, so the
    /// differential suites can exercise every tier in one process
    /// regardless of `KANON_FORCE_KERNEL`.
    #[must_use]
    pub fn try_build_with(ds: &Dataset, kernel: Kernel) -> Option<Self> {
        let lane = pick_lane(ds)?;
        let (n, m) = (ds.n_rows(), ds.n_cols());
        let words_per_row = m.div_ceil(lane_count(lane));
        let mut words = vec![0u64; n * words_per_row];
        for (i, row) in ds.rows().enumerate() {
            let out = &mut words[i * words_per_row..(i + 1) * words_per_row];
            for (j, &v) in row.iter().enumerate() {
                let (word, bits) = pack_lane(lane, j, v);
                out[word] |= bits;
            }
        }
        Some(PackedRows {
            n,
            words_per_row,
            lane,
            kernel,
            words: words.into_boxed_slice(),
        })
    }

    /// Number of rows encoded.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes of packed storage (for planned-allocation accounting).
    #[must_use]
    pub fn storage_bytes(n: usize, m: usize) -> u64 {
        // Conservative: assume the widest supported lane (4 attrs/word).
        let words_per_row = m.div_ceil(4) as u64;
        (n as u64)
            .saturating_mul(words_per_row)
            .saturating_mul(std::mem::size_of::<u64>() as u64)
    }

    /// Hamming distance between packed rows `i` and `j`: per word,
    /// XOR + nonzero-lane count, via the kernel tier captured at build.
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    #[inline]
    #[must_use]
    pub fn distance(&self, i: usize, j: usize) -> u32 {
        let w = self.words_per_row;
        let a = &self.words[i * w..(i + 1) * w];
        let b = &self.words[j * w..(j + 1) * w];
        match self.lane {
            Lane::B8 => kernel::diff_words_b8(a, b, self.kernel),
            Lane::B16 => kernel::diff_words_b16(a, b, self.kernel),
        }
    }
}

/// Column-major bit-packed codec: the same per-attribute lanes as
/// [`PackedRows`], but word-column `w` of every row is stored contiguously
/// (`words[w·n + i]`), so the one-to-many distance sweep — the inner loop
/// of the cache build and of every greedy radius scan — reads `n`
/// consecutive words per word-column and the SIMD tiers stream at memory
/// bandwidth instead of striding.
///
/// Agrees **exactly** with the scalar [`hamming`] for every kernel tier
/// (pinned by the `kernel_equiv` differential suite).
///
/// ```
/// use kanon_core::{Dataset, metric::{hamming, PackedColumns}};
/// let ds = Dataset::from_rows(vec![
///     vec![1, 0, 1, 0, 3, 250, 9, 0, 1],
///     vec![0, 1, 1, 0, 3, 251, 9, 0, 2],
///     vec![1, 0, 1, 0, 3, 250, 9, 0, 1],
/// ]).unwrap();
/// let cols = PackedColumns::try_build(&ds).unwrap();
/// let mut out = vec![0u32; 3];
/// cols.distances_one_to_many(0, &mut out);
/// assert_eq!(out[1] as usize, hamming(ds.row(0), ds.row(1)));
/// assert_eq!(out, vec![0, 4, 0]);
/// ```
#[derive(Clone, Debug)]
pub struct PackedColumns {
    n: usize,
    words_per_row: usize,
    lane: Lane,
    kernel: Kernel,
    /// Laid out `words[w * n + i]` for word-column `w`, row `i`.
    words: Vec<u64>,
}

impl PackedColumns {
    /// Packs `ds` column-major with the process-wide kernel tier. Returns
    /// `None` when some code exceeds `u16::MAX` (same fallback contract as
    /// [`PackedRows::try_build`]).
    #[must_use]
    pub fn try_build(ds: &Dataset) -> Option<Self> {
        Self::try_build_with(ds, kernel::kernel())
    }

    /// [`PackedColumns::try_build`] with an explicit kernel tier.
    #[must_use]
    pub fn try_build_with(ds: &Dataset, kernel: Kernel) -> Option<Self> {
        let lane = pick_lane(ds)?;
        let (n, m) = (ds.n_rows(), ds.n_cols());
        let words_per_row = m.div_ceil(lane_count(lane));
        let mut words = crate::scratch::take_u64(n * words_per_row);
        for (i, row) in ds.rows().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let (word, bits) = pack_lane(lane, j, v);
                words[word * n + i] |= bits;
            }
        }
        Some(PackedColumns {
            n,
            words_per_row,
            lane,
            kernel,
            words,
        })
    }

    /// Number of rows encoded.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes of packed storage (for planned-allocation accounting); same
    /// bound as [`PackedRows::storage_bytes`].
    #[must_use]
    pub fn storage_bytes(n: usize, m: usize) -> u64 {
        PackedRows::storage_bytes(n, m)
    }

    /// Fills `out[j - from] = d(i, j)` for every `j in from..to`. The
    /// batched one-to-many entry point: per word-column, one broadcast
    /// word versus `to - from` contiguous words.
    ///
    /// # Panics
    /// Panics if the range or `i` is out of bounds, or if
    /// `out.len() != to - from`.
    pub fn distances_span(&self, i: usize, from: usize, to: usize, out: &mut [u32]) {
        assert!(from <= to && to <= self.n && i < self.n);
        assert_eq!(out.len(), to - from);
        out.fill(0);
        for w in 0..self.words_per_row {
            let base = w * self.n;
            let x = self.words[base + i];
            let col = &self.words[base + from..base + to];
            match self.lane {
                Lane::B8 => kernel::accum_diff_b8(x, col, out, self.kernel),
                Lane::B16 => kernel::accum_diff_b16(x, col, out, self.kernel),
            }
        }
    }

    /// Distances from row `i` to **every** row: `out[j] = d(i, j)`
    /// (`out[i]` is 0). `out.len()` must equal [`PackedColumns::n`].
    pub fn distances_one_to_many(&self, i: usize, out: &mut [u32]) {
        self.distances_span(i, 0, self.n, out);
    }
}

impl Drop for PackedColumns {
    fn drop(&mut self) {
        // Recycle the packed words into the thread-local scratch pool so
        // per-shard rebuilds in the pipeline stop allocating.
        crate::scratch::give_u64(std::mem::take(&mut self.words));
    }
}

/// Attributes per `u64` word for a lane width.
fn lane_count(lane: Lane) -> usize {
    match lane {
        Lane::B8 => 8,
        Lane::B16 => 4,
    }
}

/// The full `n × n` pairwise distance matrix, stored row-major as `u32`.
///
/// Costs `O(m·n²)` time and `4n²` bytes; this is the preprocessing step of
/// the strongly polynomial algorithm (Theorem 4.2).
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    entries: Box<[u32]>,
}

impl DistanceMatrix {
    /// Computes all pairwise row distances.
    #[must_use]
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.n_rows();
        let mut entries = vec![0u32; n * n];
        for i in 0..n {
            let ri = ds.row(i);
            for j in (i + 1)..n {
                let d = hamming(ri, ds.row(j)) as u32;
                entries[i * n + j] = d;
                entries[j * n + i] = d;
            }
        }
        DistanceMatrix {
            n,
            entries: entries.into_boxed_slice(),
        }
    }

    /// Like [`DistanceMatrix::build`], splitting the `O(m·n²)` work across
    /// `threads` OS threads. Each thread fills a contiguous band of rows
    /// (recomputing both triangle halves — simpler ownership, same
    /// asymptotics). `threads <= 1` falls back to the sequential build.
    #[must_use]
    pub fn build_parallel(ds: &Dataset, threads: usize) -> Self {
        let n = ds.n_rows();
        if threads <= 1 || n < 64 {
            return Self::build(ds);
        }
        let mut entries = vec![0u32; n * n];
        let rows_per_band = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest: &mut [u32] = &mut entries;
            let mut start = 0usize;
            while start < n {
                let band = rows_per_band.min(n - start);
                let (chunk, tail) = rest.split_at_mut(band * n);
                rest = tail;
                let first = start;
                scope.spawn(move || {
                    for (local, i) in (first..first + band).enumerate() {
                        let ri = ds.row(i);
                        for j in 0..n {
                            chunk[local * n + j] = hamming(ri, ds.row(j)) as u32;
                        }
                    }
                });
                start += band;
            }
        });
        DistanceMatrix {
            n,
            entries: entries.into_boxed_slice(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between rows `i` and `j`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        self.entries[i * self.n + j]
    }

    /// The row of distances from `i` to every row (including itself, 0).
    #[must_use]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.entries[i * self.n..(i + 1) * self.n]
    }

    /// Distance from row `i` to its `t`-th nearest *other* row
    /// (`t = 1` is the nearest neighbour). Returns `None` if `t >= n`.
    ///
    /// `kth_neighbor_distance(i, k-1)` is the per-row lower bound used by the
    /// exact branch-and-bound: in any k-anonymization, row `i`'s group
    /// contains `k-1` other rows, so at least this many of its entries must
    /// be suppressed.
    #[must_use]
    pub fn kth_neighbor_distance(&self, i: usize, t: usize) -> Option<u32> {
        if t == 0 {
            return Some(0);
        }
        if t >= self.n {
            return None;
        }
        let mut ds: Vec<u32> = (0..self.n)
            .filter(|&j| j != i)
            .map(|j| self.get(i, j))
            .collect();
        ds.sort_unstable();
        Some(ds[t - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_distances() {
        assert_eq!(hamming(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(hamming(&[1, 2, 3], &[1, 9, 3]), 1);
        assert_eq!(hamming(&[1, 2, 3], &[4, 5, 6]), 3);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    fn paper_example_distance() {
        // §4 example: V = {1010, 1110, 0110}; 1010 and 0110 differ in two
        // coordinates.
        let a = [1, 0, 1, 0];
        let b = [0, 1, 1, 0];
        assert_eq!(hamming(&a, &b), 2);
    }

    #[test]
    fn hamming_within_early_exit() {
        assert_eq!(hamming_within(&[1, 2, 3], &[9, 9, 9], 3), Some(3));
        assert_eq!(hamming_within(&[1, 2, 3], &[9, 9, 9], 2), None);
        assert_eq!(hamming_within(&[1, 2, 3], &[1, 2, 3], 0), Some(0));
    }

    #[test]
    fn distance_matrix_symmetric_zero_diagonal() {
        let ds =
            Dataset::from_rows(vec![vec![1, 0, 1, 0], vec![1, 1, 1, 0], vec![0, 1, 1, 0]]).unwrap();
        let dm = DistanceMatrix::build(&ds);
        for i in 0..3 {
            assert_eq!(dm.get(i, i), 0);
            for j in 0..3 {
                assert_eq!(dm.get(i, j), dm.get(j, i));
                assert_eq!(dm.get(i, j) as usize, row_distance(&ds, i, j));
            }
        }
        assert_eq!(dm.get(0, 2), 2);
    }

    #[test]
    fn kth_neighbor_distance_sorted() {
        let ds = Dataset::from_rows(vec![
            vec![0, 0, 0],
            vec![0, 0, 1],
            vec![1, 1, 1],
            vec![0, 0, 0],
        ])
        .unwrap();
        let dm = DistanceMatrix::build(&ds);
        // Row 0's other-row distances: [1, 3, 0] sorted -> [0, 1, 3].
        assert_eq!(dm.kth_neighbor_distance(0, 1), Some(0));
        assert_eq!(dm.kth_neighbor_distance(0, 2), Some(1));
        assert_eq!(dm.kth_neighbor_distance(0, 3), Some(3));
        assert_eq!(dm.kth_neighbor_distance(0, 4), None);
        assert_eq!(dm.kth_neighbor_distance(0, 0), Some(0));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let ds = Dataset::from_fn(80, 5, |i, j| ((i * 31 + j * 17) % 4) as u32);
        let seq = DistanceMatrix::build(&ds);
        for threads in [1, 2, 3, 7] {
            let par = DistanceMatrix::build_parallel(&ds, threads);
            for i in 0..80 {
                for j in 0..80 {
                    assert_eq!(seq.get(i, j), par.get(i, j), "threads={threads} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn parallel_build_small_input_falls_back() {
        let ds = Dataset::from_fn(10, 3, |i, j| (i + j) as u32);
        let par = DistanceMatrix::build_parallel(&ds, 8);
        let seq = DistanceMatrix::build(&ds);
        assert_eq!(par.row(3), seq.row(3));
    }

    /// 1 000 random row pairs per alphabet width: the packed SWAR kernel
    /// must agree exactly with the scalar `hamming`. Referenced by the
    /// `packed_hamming` criterion bench, which compares the same kernels
    /// for speed rather than agreement.
    #[test]
    fn packed_distance_agrees_with_scalar_on_1k_random_pairs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        // Alphabet widths straddling both lane selections: tiny binary,
        // byte-boundary (≤ 255 → 8-lane), and u16-boundary (≤ 65535 →
        // 4-lane) codes, across row widths that exercise partial words.
        for (alphabet, m) in [(2u32, 3usize), (6, 8), (250, 9), (256, 16), (60_000, 5)] {
            let mut rng = StdRng::seed_from_u64(u64::from(alphabet) ^ m as u64);
            let n = 2_000; // 1k pairs of adjacent rows
            let ds = Dataset::from_fn(n, m, |_, _| rng.gen_range(0..alphabet));
            let packed = PackedRows::try_build(&ds).expect("codes fit u16 lanes");
            assert_eq!(packed.n(), n);
            for p in 0..1_000 {
                let (i, j) = (2 * p, 2 * p + 1);
                assert_eq!(
                    packed.distance(i, j) as usize,
                    hamming(ds.row(i), ds.row(j)),
                    "alphabet={alphabet} m={m} pair=({i},{j})"
                );
                assert_eq!(packed.distance(i, i), 0);
                assert_eq!(packed.distance(i, j), packed.distance(j, i));
            }
        }
    }

    #[test]
    fn packed_wide_alphabet_falls_back() {
        let ds = Dataset::from_rows(vec![vec![70_000, 1], vec![2, 3]]).unwrap();
        assert!(PackedRows::try_build(&ds).is_none());
    }

    #[test]
    fn packed_edge_cases() {
        // Empty dataset and zero-column rows pack to nothing and compare 0.
        let empty = Dataset::from_rows(vec![]).unwrap();
        assert!(PackedRows::try_build(&empty).is_some());
        let zero_cols = Dataset::from_rows(vec![vec![], vec![]]).unwrap();
        let p = PackedRows::try_build(&zero_cols).unwrap();
        assert_eq!(p.distance(0, 1), 0);
        // Exactly one full word of byte lanes, and one lane over.
        for m in [8usize, 9] {
            let ds = Dataset::from_fn(4, m, |i, j| ((i * 31 + j * 7) % 255) as u32);
            let p = PackedRows::try_build(&ds).unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(p.distance(i, j) as usize, row_distance(&ds, i, j), "m={m}");
                }
            }
        }
    }

    /// Column-major storage must agree with both the scalar reference and
    /// the row-major codec, for every kernel tier this machine can run,
    /// across lane widths and partial-word row lengths.
    #[test]
    fn packed_columns_agree_with_scalar_for_every_tier() {
        use crate::kernel::{simd_available, Kernel};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for (alphabet, m) in [(2u32, 3usize), (6, 8), (250, 9), (256, 16), (60_000, 5)] {
            let mut rng = StdRng::seed_from_u64(u64::from(alphabet) ^ m as u64);
            let n = 257; // odd, exercises SIMD tails in the column sweep
            let ds = Dataset::from_fn(n, m, |_, _| rng.gen_range(0..alphabet));
            for tier in [Kernel::Scalar, Kernel::Swar, Kernel::Simd] {
                if tier == Kernel::Simd && !simd_available() {
                    continue;
                }
                let cols = PackedColumns::try_build_with(&ds, tier).unwrap();
                assert_eq!(cols.n(), n);
                let mut out = vec![0u32; n];
                for i in [0usize, 1, 17, n - 1] {
                    cols.distances_one_to_many(i, &mut out);
                    for (j, &d) in out.iter().enumerate() {
                        assert_eq!(
                            d as usize,
                            hamming(ds.row(i), ds.row(j)),
                            "alphabet={alphabet} m={m} tier={tier} ({i},{j})"
                        );
                    }
                    // Spans must match the full sweep's slices.
                    let (from, to) = (i, n.min(i + 100));
                    let mut span = vec![0u32; to - from];
                    cols.distances_span(i, from, to, &mut span);
                    assert_eq!(&span, &out[from..to], "span tier={tier} i={i}");
                }
            }
        }
    }

    #[test]
    fn packed_columns_edge_cases() {
        // Wide alphabets refuse to pack; empty and zero-column datasets
        // pack to nothing and compare 0.
        let wide = Dataset::from_rows(vec![vec![70_000, 1], vec![2, 3]]).unwrap();
        assert!(PackedColumns::try_build(&wide).is_none());
        let zero_cols = Dataset::from_rows(vec![vec![], vec![]]).unwrap();
        let p = PackedColumns::try_build(&zero_cols).unwrap();
        let mut out = vec![9u32; 2];
        p.distances_one_to_many(0, &mut out);
        assert_eq!(out, vec![0, 0]);
        let empty = Dataset::from_rows(vec![]).unwrap();
        assert!(PackedColumns::try_build(&empty).is_some());
    }

    proptest! {
        #[test]
        fn packed_agrees_with_hamming_proptest(
            u in proptest::collection::vec(0u32..300, 11),
            v in proptest::collection::vec(0u32..300, 11),
        ) {
            // Alphabet 300 forces the 16-bit lane path; 11 columns leave a
            // partial final word.
            let ds = Dataset::from_rows(vec![u.clone(), v.clone()]).unwrap();
            let p = PackedRows::try_build(&ds).unwrap();
            prop_assert_eq!(p.distance(0, 1) as usize, hamming(&u, &v));
        }

        #[test]
        fn metric_axioms(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..4, 6),
                3,
            )
        ) {
            let (u, v, w) = (&rows[0], &rows[1], &rows[2]);
            // Identity of indiscernibles.
            prop_assert_eq!(hamming(u, u), 0);
            prop_assert_eq!(hamming(u, v) == 0, u == v);
            // Symmetry.
            prop_assert_eq!(hamming(u, v), hamming(v, u));
            // Triangle inequality.
            prop_assert!(hamming(u, w) <= hamming(u, v) + hamming(v, w));
        }

        #[test]
        fn hamming_within_agrees_with_hamming(
            u in proptest::collection::vec(0u32..3, 8),
            v in proptest::collection::vec(0u32..3, 8),
            limit in 0usize..10,
        ) {
            let d = hamming(&u, &v);
            let w = hamming_within(&u, &v, limit);
            if d <= limit {
                prop_assert_eq!(w, Some(d));
            } else {
                prop_assert_eq!(w, None);
            }
        }
    }
}
