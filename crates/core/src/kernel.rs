//! Runtime-dispatched distance kernels.
//!
//! Every solver in this workspace bottoms out in the same primitive: *count
//! the lanes in which two fixed-width vectors differ*. The scalar loop in
//! [`crate::metric::hamming`] answers it one attribute at a time; the SWAR
//! kernel of PR 3 answers it eight byte-lanes per `u64` word; this module
//! adds explicit SIMD paths — AVX2 on `x86_64`, NEON on `aarch64` — that
//! answer it 32 byte-lanes per instruction, selected **once per process** by
//! runtime feature detection.
//!
//! ## Dispatch
//!
//! [`kernel()`] resolves the active [`Kernel`] on first use and caches it:
//!
//! 1. The `KANON_FORCE_KERNEL` environment variable, when set to `scalar`,
//!    `swar`, or `simd`, wins (a forced `simd` silently degrades to
//!    [`Kernel::Swar`] on hardware without AVX2/NEON — the override is a
//!    *ceiling*, never a way to execute unsupported instructions). Anything
//!    else is ignored.
//! 2. Otherwise [`Kernel::Simd`] when the CPU reports AVX2 (x86_64) or NEON
//!    (aarch64), else [`Kernel::Swar`].
//!
//! [`Kernel::Scalar`] is never auto-selected: it exists so the differential
//! suites (and a whole-suite CI run under `KANON_FORCE_KERNEL=scalar`) can
//! pin the optimized kernels to the textbook loop. Packed-layout *builders*
//! consult [`packing_enabled`] and skip packing entirely under forced
//! scalar, so the fallback genuinely exercises the per-[`Value`] scan.
//!
//! All kernels compute **exactly** the same distances — equality across
//! every `(kernel, alphabet, row-width)` combination is pinned by the
//! `kernel_equiv` differential proptest suite. Callers that cache a packed
//! layout resolve the kernel at build time (one branch per *build*, none
//! per probe); the `*_with` constructors let tests exercise every kernel on
//! one machine regardless of the environment.
//!
//! [`Value`]: crate::dataset::Value

// The one sanctioned unsafe island in kanon-core (see lib.rs): every
// `unsafe` block here is a `target_feature` intrinsic call guarded by
// runtime detection, and every kernel is differentially pinned to the
// scalar reference.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// A distance-kernel implementation tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// One attribute comparison per step; works on raw `u32` rows with no
    /// packed layout. The reference implementation.
    Scalar,
    /// SWAR over bit-packed `u64` words: 8 byte-lanes (or 4 `u16` lanes)
    /// per word op. Portable to any 64-bit target.
    Swar,
    /// Explicit SIMD: AVX2 (32 byte-lanes per op) or NEON (16 byte-lanes
    /// per op), behind one-time runtime detection.
    Simd,
}

impl Kernel {
    /// Short stable name (used in bench JSON and CI matrices).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Simd => "simd",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether this CPU supports the SIMD tier ([`Kernel::Simd`]).
#[must_use]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("neon")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// The CPU feature the SIMD tier would use, for bench/report provenance:
/// `"avx2"`, `"neon"`, or `"none"`.
#[must_use]
pub fn cpu_features() -> &'static str {
    if !simd_available() {
        return "none";
    }
    #[cfg(target_arch = "x86_64")]
    {
        "avx2"
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "none"
    }
}

/// Resolves a `KANON_FORCE_KERNEL` value against the hardware: the forced
/// tier is a ceiling, so `simd` without AVX2/NEON degrades to SWAR.
fn resolve(force: Option<&str>) -> Kernel {
    match force {
        Some("scalar") => Kernel::Scalar,
        Some("swar") => Kernel::Swar,
        Some("simd") | None => {
            if simd_available() {
                Kernel::Simd
            } else {
                Kernel::Swar
            }
        }
        Some(_) => resolve(None),
    }
}

/// The process-wide active kernel, resolved once (environment override,
/// then feature detection) and cached.
#[must_use]
pub fn kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| resolve(std::env::var("KANON_FORCE_KERNEL").ok().as_deref()))
}

/// Whether packed layouts ([`crate::metric::PackedRows`] /
/// [`crate::metric::PackedColumns`]) should be *built* at all. Under
/// `KANON_FORCE_KERNEL=scalar` the answer is no: every distance then flows
/// through the per-attribute scalar scan, which is what a forced-fallback
/// differential run wants to exercise.
#[must_use]
pub fn packing_enabled() -> bool {
    kernel() != Kernel::Scalar
}

// ---------------------------------------------------------------------------
// Raw u32-row kernels (no packing): used by `metric::hamming` and therefore
// by every diameter/anon-cost probe on unpacked rows.
// ---------------------------------------------------------------------------

/// Reference scalar Hamming distance over raw `u32` lanes.
#[inline]
#[must_use]
pub(crate) fn hamming_u32_scalar(u: &[u32], v: &[u32]) -> usize {
    u.iter().zip(v).filter(|(a, b)| a != b).count()
}

/// Dispatched Hamming distance over raw `u32` lanes. Exact for every
/// kernel; `kernel` is resolved by the caller (usually [`kernel()`]).
#[inline]
#[must_use]
pub(crate) fn hamming_u32(u: &[u32], v: &[u32], kernel: Kernel) -> usize {
    debug_assert_eq!(u.len(), v.len());
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Simd && u.len() >= 8 {
        // SAFETY: `Kernel::Simd` is only resolved when AVX2 is detected.
        return unsafe { hamming_u32_avx2(u, v) };
    }
    #[cfg(target_arch = "aarch64")]
    if kernel == Kernel::Simd && u.len() >= 4 {
        // SAFETY: `Kernel::Simd` is only resolved when NEON is detected.
        return unsafe { hamming_u32_neon(u, v) };
    }
    let _ = kernel;
    hamming_u32_scalar(u, v)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hamming_u32_avx2(u: &[u32], v: &[u32]) -> usize {
    use std::arch::x86_64::{
        _mm256_castsi256_ps, _mm256_cmpeq_epi32, _mm256_loadu_si256, _mm256_movemask_ps,
    };
    let n = u.len();
    let mut diff = 0usize;
    let mut i = 0usize;
    while i + 8 <= n {
        // SAFETY: bounds guarded by the loop condition; unaligned loads.
        let a = unsafe { _mm256_loadu_si256(u.as_ptr().add(i).cast()) };
        let b = unsafe { _mm256_loadu_si256(v.as_ptr().add(i).cast()) };
        let eq = _mm256_cmpeq_epi32(a, b);
        // One mask bit per 32-bit lane; set = equal.
        let mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
        diff += 8 - mask.count_ones() as usize;
        i += 8;
    }
    diff + hamming_u32_scalar(&u[i..], &v[i..])
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn hamming_u32_neon(u: &[u32], v: &[u32]) -> usize {
    use std::arch::aarch64::{vaddvq_u32, vandq_u32, vceqq_u32, vdupq_n_u32, vld1q_u32};
    let n = u.len();
    let mut diff = 0usize;
    let mut i = 0usize;
    let ones = vdupq_n_u32(1);
    while i + 4 <= n {
        // SAFETY: bounds guarded by the loop condition.
        let a = unsafe { vld1q_u32(u.as_ptr().add(i)) };
        let b = unsafe { vld1q_u32(v.as_ptr().add(i)) };
        // Equal lanes become all-ones; mask to 1 and horizontally add.
        let eq = vandq_u32(vceqq_u32(a, b), ones);
        diff += 4 - vaddvq_u32(eq) as usize;
        i += 4;
    }
    diff + hamming_u32_scalar(&u[i..], &v[i..])
}

// ---------------------------------------------------------------------------
// Packed-word kernels: operate on the bit-packed u64 words of
// `metric::PackedRows` / `metric::PackedColumns`. `B8` packs 8 byte lanes
// per word, `B16` packs 4 sixteen-bit lanes per word; unused tail lanes are
// zero in every row and therefore never count as differing.
// ---------------------------------------------------------------------------

/// Per-byte SWAR nonzero test: one bit in the `0x80` position of every
/// nonzero byte lane of `x`, so `count_ones` counts differing attributes.
/// The inner `(x | HI) - LO` never borrows across lanes because every byte
/// of `x | HI` is at least `0x80`.
#[inline]
#[must_use]
pub(crate) fn nonzero_u8_lanes(x: u64) -> u32 {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    ((x | ((x | HI) - LO)) & HI).count_ones()
}

/// 16-bit-lane sibling of [`nonzero_u8_lanes`].
#[inline]
#[must_use]
pub(crate) fn nonzero_u16_lanes(x: u64) -> u32 {
    const LO: u64 = 0x0001_0001_0001_0001;
    const HI: u64 = 0x8000_8000_8000_8000;
    ((x | ((x | HI) - LO)) & HI).count_ones()
}

/// Differing byte lanes between two equal-length word slices (one row pair).
#[inline]
#[must_use]
pub(crate) fn diff_words_b8(a: &[u64], b: &[u64], kernel: Kernel) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Simd && a.len() >= 4 {
        // SAFETY: `Kernel::Simd` is only resolved when AVX2 is detected.
        return unsafe { diff_words_b8_avx2(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if kernel == Kernel::Simd && a.len() >= 2 {
        // SAFETY: `Kernel::Simd` is only resolved when NEON is detected.
        return unsafe { diff_words_b8_neon(a, b) };
    }
    let _ = kernel;
    a.iter()
        .zip(b)
        .map(|(&x, &y)| nonzero_u8_lanes(x ^ y))
        .sum()
}

/// Differing 16-bit lanes between two equal-length word slices.
#[inline]
#[must_use]
pub(crate) fn diff_words_b16(a: &[u64], b: &[u64], kernel: Kernel) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Simd && a.len() >= 4 {
        // SAFETY: `Kernel::Simd` is only resolved when AVX2 is detected.
        return unsafe { diff_words_b16_avx2(a, b) };
    }
    // NEON: the 16-bit SWAR loop is already ≥ the NEON win at the word
    // counts packed rows see (≤ a few words per row); keep SWAR.
    let _ = kernel;
    a.iter()
        .zip(b)
        .map(|(&x, &y)| nonzero_u16_lanes(x ^ y))
        .sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn diff_words_b8_avx2(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::x86_64::{
        _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_xor_si256,
    };
    let n = a.len();
    let mut diff = 0u32;
    let mut i = 0usize;
    while i + 4 <= n {
        // SAFETY: bounds guarded by the loop condition; unaligned loads.
        let x = unsafe { _mm256_loadu_si256(a.as_ptr().add(i).cast()) };
        let y = unsafe { _mm256_loadu_si256(b.as_ptr().add(i).cast()) };
        let xz = _mm256_xor_si256(x, y);
        // Equal byte lanes (xor == 0) set their mask bit; 32 lanes per op.
        let eq = _mm256_cmpeq_epi8(xz, std::arch::x86_64::_mm256_setzero_si256());
        let mask = _mm256_movemask_epi8(eq) as u32;
        diff += 32 - mask.count_ones();
        i += 4;
    }
    while i < n {
        diff += nonzero_u8_lanes(a[i] ^ b[i]);
        i += 1;
    }
    diff
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn diff_words_b16_avx2(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::x86_64::{
        _mm256_cmpeq_epi16, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_xor_si256,
    };
    let n = a.len();
    let mut diff = 0u32;
    let mut i = 0usize;
    while i + 4 <= n {
        // SAFETY: bounds guarded by the loop condition; unaligned loads.
        let x = unsafe { _mm256_loadu_si256(a.as_ptr().add(i).cast()) };
        let y = unsafe { _mm256_loadu_si256(b.as_ptr().add(i).cast()) };
        let xz = _mm256_xor_si256(x, y);
        let eq = _mm256_cmpeq_epi16(xz, std::arch::x86_64::_mm256_setzero_si256());
        // Two mask bits per 16-bit lane; 16 lanes per op.
        let mask = _mm256_movemask_epi8(eq) as u32;
        diff += 16 - mask.count_ones() / 2;
        i += 4;
    }
    while i < n {
        diff += nonzero_u16_lanes(a[i] ^ b[i]);
        i += 1;
    }
    diff
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn diff_words_b8_neon(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::aarch64::{vaddvq_u8, vandq_u8, vceqzq_u8, vdupq_n_u8, veorq_u8, vld1q_u8};
    let n = a.len();
    let mut diff = 0u32;
    let mut i = 0usize;
    let ones = vdupq_n_u8(1);
    while i + 2 <= n {
        // SAFETY: two u64 words are 16 bytes; bounds guarded above.
        let x = unsafe { vld1q_u8(a.as_ptr().add(i).cast()) };
        let y = unsafe { vld1q_u8(b.as_ptr().add(i).cast()) };
        // Equal byte lanes of the xor are zero; count them and subtract.
        let eq = vandq_u8(vceqzq_u8(veorq_u8(x, y)), ones);
        diff += 16 - u32::from(vaddvq_u8(eq));
        i += 2;
    }
    while i < n {
        diff += nonzero_u8_lanes(a[i] ^ b[i]);
        i += 1;
    }
    diff
}

/// One-to-many accumulate for column-major packed storage: for every `j`,
/// `out[j] += diff_byte_lanes(x, col[j])`. `col` and `out` have equal
/// length. This is the streaming inner loop of
/// [`crate::metric::PackedColumns::distances_span`].
#[inline]
pub(crate) fn accum_diff_b8(x: u64, col: &[u64], out: &mut [u32], kernel: Kernel) {
    debug_assert_eq!(col.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Simd && col.len() >= 4 {
        // SAFETY: `Kernel::Simd` is only resolved when AVX2 is detected.
        unsafe { accum_diff_b8_avx2(x, col, out) };
        return;
    }
    let _ = kernel;
    for (o, &w) in out.iter_mut().zip(col) {
        *o += nonzero_u8_lanes(x ^ w);
    }
}

/// 16-bit-lane sibling of [`accum_diff_b8`].
#[inline]
pub(crate) fn accum_diff_b16(x: u64, col: &[u64], out: &mut [u32], kernel: Kernel) {
    debug_assert_eq!(col.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Simd && col.len() >= 4 {
        // SAFETY: `Kernel::Simd` is only resolved when AVX2 is detected.
        unsafe { accum_diff_b16_avx2(x, col, out) };
        return;
    }
    let _ = kernel;
    for (o, &w) in out.iter_mut().zip(col) {
        *o += nonzero_u16_lanes(x ^ w);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accum_diff_b8_avx2(x: u64, col: &[u64], out: &mut [u32]) {
    use std::arch::x86_64::{
        _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_set1_epi64x,
        _mm256_setzero_si256, _mm256_xor_si256,
    };
    let n = col.len();
    let bx = _mm256_set1_epi64x(x as i64);
    let mut j = 0usize;
    while j + 4 <= n {
        // SAFETY: bounds guarded by the loop condition; unaligned loads.
        let w = unsafe { _mm256_loadu_si256(col.as_ptr().add(j).cast()) };
        let eq = _mm256_cmpeq_epi8(_mm256_xor_si256(bx, w), _mm256_setzero_si256());
        // 32 mask bits, 8 per packed row; a set bit is an *equal* lane.
        let mask = _mm256_movemask_epi8(eq) as u32;
        out[j] += 8 - (mask & 0xFF).count_ones();
        out[j + 1] += 8 - ((mask >> 8) & 0xFF).count_ones();
        out[j + 2] += 8 - ((mask >> 16) & 0xFF).count_ones();
        out[j + 3] += 8 - (mask >> 24).count_ones();
        j += 4;
    }
    while j < n {
        out[j] += nonzero_u8_lanes(x ^ col[j]);
        j += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accum_diff_b16_avx2(x: u64, col: &[u64], out: &mut [u32]) {
    use std::arch::x86_64::{
        _mm256_cmpeq_epi16, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_set1_epi64x,
        _mm256_setzero_si256, _mm256_xor_si256,
    };
    let n = col.len();
    let bx = _mm256_set1_epi64x(x as i64);
    let mut j = 0usize;
    while j + 4 <= n {
        // SAFETY: bounds guarded by the loop condition; unaligned loads.
        let w = unsafe { _mm256_loadu_si256(col.as_ptr().add(j).cast()) };
        let eq = _mm256_cmpeq_epi16(_mm256_xor_si256(bx, w), _mm256_setzero_si256());
        // Two mask bits per 16-bit lane, 8 bits (4 lanes) per packed row.
        let mask = _mm256_movemask_epi8(eq) as u32;
        out[j] += 4 - (mask & 0xFF).count_ones() / 2;
        out[j + 1] += 4 - ((mask >> 8) & 0xFF).count_ones() / 2;
        out[j + 2] += 4 - ((mask >> 16) & 0xFF).count_ones() / 2;
        out[j + 3] += 4 - (mask >> 24).count_ones() / 2;
        j += 4;
    }
    while j < n {
        out[j] += nonzero_u16_lanes(x ^ col[j]);
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honors_force_and_hardware_ceiling() {
        assert_eq!(resolve(Some("scalar")), Kernel::Scalar);
        assert_eq!(resolve(Some("swar")), Kernel::Swar);
        let auto = resolve(None);
        assert_eq!(resolve(Some("simd")), auto); // ceiling: simd or swar
        assert_eq!(resolve(Some("warp-drive")), auto); // unknown → auto
        if simd_available() {
            assert_eq!(auto, Kernel::Simd);
        } else {
            assert_eq!(auto, Kernel::Swar);
        }
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(Kernel::Scalar.to_string(), "scalar");
        assert_eq!(Kernel::Swar.name(), "swar");
        assert_eq!(Kernel::Simd.name(), "simd");
        assert!(["avx2", "neon", "none"].contains(&cpu_features()));
    }

    #[test]
    fn swar_lane_tests_cover_boundary_values() {
        for lane in 0..8 {
            for v in [1u64, 0x7F, 0x80, 0xFF] {
                assert_eq!(nonzero_u8_lanes(v << (8 * lane)), 1, "v={v:#x} lane={lane}");
            }
        }
        assert_eq!(nonzero_u8_lanes(0), 0);
        assert_eq!(nonzero_u8_lanes(u64::MAX), 8);
        for lane in 0..4 {
            for v in [1u64, 0x7FFF, 0x8000, 0xFFFF] {
                assert_eq!(
                    nonzero_u16_lanes(v << (16 * lane)),
                    1,
                    "v={v:#x} lane={lane}"
                );
            }
        }
        assert_eq!(nonzero_u16_lanes(0), 0);
        assert_eq!(nonzero_u16_lanes(u64::MAX), 4);
    }

    /// Every kernel tier must agree on raw-u32 rows, packed row pairs, and
    /// the one-to-many accumulate, across lengths that exercise both the
    /// vector body and the scalar tail.
    #[test]
    fn tiers_agree_on_random_words() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD15);
        let tiers: &[Kernel] = &[Kernel::Scalar, Kernel::Swar, Kernel::Simd];
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33] {
            let a: Vec<u64> = (0..len)
                .map(|_| rng.gen::<u64>() & rng.gen::<u64>())
                .collect();
            let b: Vec<u64> = a
                .iter()
                .map(|&x| if rng.gen_bool(0.5) { x } else { rng.gen() })
                .collect();
            let want8: u32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| nonzero_u8_lanes(x ^ y))
                .sum();
            let want16: u32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| nonzero_u16_lanes(x ^ y))
                .sum();
            for &k in tiers {
                if k == Kernel::Simd && !simd_available() {
                    continue;
                }
                assert_eq!(diff_words_b8(&a, &b, k), want8, "b8 {k} len={len}");
                assert_eq!(diff_words_b16(&a, &b, k), want16, "b16 {k} len={len}");
                let x = rng.gen::<u64>();
                let mut out = vec![0u32; len];
                accum_diff_b8(x, &a, &mut out, k);
                let want: Vec<u32> = a.iter().map(|&w| nonzero_u8_lanes(x ^ w)).collect();
                assert_eq!(out, want, "accum b8 {k} len={len}");
                let mut out = vec![0u32; len];
                accum_diff_b16(x, &a, &mut out, k);
                let want: Vec<u32> = a.iter().map(|&w| nonzero_u16_lanes(x ^ w)).collect();
                assert_eq!(out, want, "accum b16 {k} len={len}");
            }
            let u: Vec<u32> = (0..len * 3 + 1).map(|_| rng.gen_range(0..9)).collect();
            let v: Vec<u32> = u
                .iter()
                .map(|&x| {
                    if rng.gen_bool(0.5) {
                        x
                    } else {
                        rng.gen_range(0..9)
                    }
                })
                .collect();
            let want = hamming_u32_scalar(&u, &v);
            for &k in tiers {
                if k == Kernel::Simd && !simd_available() {
                    continue;
                }
                assert_eq!(hamming_u32(&u, &v, k), want, "u32 {k} len={}", u.len());
            }
        }
    }
}
