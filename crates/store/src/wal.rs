//! The write-ahead log: append-only, length-prefixed, checksummed records.
//!
//! ## On-disk format
//!
//! ```text
//! record := [u32 len (LE)] [u32 crc32(payload) (LE)] [payload; len bytes]
//! wal    := record*
//! ```
//!
//! There is no file header: an empty file is a valid empty log, which is
//! what `O_CREAT` naturally produces and what compaction resets to.
//!
//! ## Recovery semantics
//!
//! An append is durable once `append` returns (the record bytes are written
//! and fsynced in one call). Replay distinguishes two failure shapes:
//!
//! - **Torn tail** — the file ends mid-record (header or payload cut
//!   short). This is what a crash between `write` and a completed append
//!   leaves behind. Replay stops at the last complete record and reports
//!   the tear; the consistent prefix is the recovered state.
//! - **Corruption** — a record is fully present but its checksum does not
//!   match, or its length prefix is absurd. The committed prefix has been
//!   damaged; replay refuses loudly ([`Error::Corrupt`]) rather than skip
//!   or truncate, because silently dropping an *interior* record would
//!   reorder history.
//!
//! Payload buffers allocated during replay are charged against a
//! [`Budget`] via a scoped guard, so a corrupt length prefix cannot
//! balloon memory before the checksum gets a chance to reject it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use kanon_core::govern::Budget;

use crate::crc::crc32;
use crate::error::{Error, Result};

/// Each record costs 8 bytes beyond its payload.
pub const RECORD_HEADER: usize = 8;

/// Hard ceiling on a single record's payload (64 MiB). A length prefix
/// beyond this is treated as corruption even before the budget is asked:
/// no legitimate delta batch approaches it, and it bounds what a flipped
/// high byte can make replay try to allocate.
pub const MAX_RECORD: u32 = 64 << 20;

/// Serializes one record (header + payload) into `out`. Exposed so tests
/// can build valid WAL images byte-by-byte and corrupt them surgically.
pub fn encode_record(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("payload fits u32");
    assert!(len <= MAX_RECORD, "payload exceeds MAX_RECORD");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The result of replaying a WAL file.
#[derive(Debug)]
pub struct Replay {
    /// Payloads of every complete, checksum-valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when the file ended mid-record (crash during an append). The
    /// records above are the consistent prefix; the torn bytes carry no
    /// committed data and are safe to truncate away.
    pub torn_tail: bool,
    /// Byte offset of the end of the last complete record (where a torn
    /// tail starts, or the file length when the log is clean).
    pub valid_bytes: u64,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` for appending.
    ///
    /// # Errors
    /// I/O errors from open/metadata.
    pub fn open(path: impl Into<PathBuf>) -> Result<Wal> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(Wal { file, path, bytes })
    }

    /// The file this log writes to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one record and fsyncs. When this returns, the record is
    /// durable; a crash mid-call leaves at worst a torn tail that replay
    /// recovers from.
    ///
    /// # Errors
    /// I/O errors from write/fsync.
    ///
    /// # Panics
    /// If `payload` exceeds [`MAX_RECORD`].
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut buf = Vec::with_capacity(RECORD_HEADER + payload.len());
        encode_record(&mut buf, payload);
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Truncates the log to empty (after a successful snapshot compaction)
    /// and reports how many log bytes the rotation retired, so the caller
    /// can charge the rotation against whoever governs the store.
    ///
    /// # Errors
    /// I/O errors from truncate/fsync.
    pub fn reset(&mut self) -> Result<u64> {
        let retired = self.bytes;
        self.truncate_to(0)?;
        Ok(retired)
    }

    /// Truncates the log to its first `bytes` bytes — how a torn tail found
    /// by [`Wal::replay`] is discarded so later appends extend the valid
    /// prefix instead of interleaving with crash debris. (Appends go to the
    /// end of file, so the shrunken length is what the next append sees.)
    ///
    /// # Errors
    /// I/O errors from truncate/fsync.
    pub fn truncate_to(&mut self, bytes: u64) -> Result<()> {
        self.file.set_len(bytes)?;
        self.file.sync_data()?;
        self.bytes = bytes;
        Ok(())
    }

    /// Replays the log at `path`, returning every committed record.
    /// A missing file is an empty log. See the module docs for the
    /// torn-tail vs corruption distinction.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on a checksum mismatch or absurd length prefix;
    /// [`Error::Budget`] when a record buffer would exceed `budget`'s
    /// memory cap; I/O errors from the filesystem.
    pub fn replay(path: impl AsRef<Path>, budget: &Budget) -> Result<Replay> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Replay {
                    records: Vec::new(),
                    torn_tail: false,
                    valid_bytes: 0,
                })
            }
            Err(e) => return Err(e.into()),
        };
        replay_reader(file, budget)
    }
}

/// Replays WAL-formatted bytes from any reader (the file-free core of
/// [`Wal::replay`], also driven directly by the fault-injection suite).
///
/// # Errors
/// As [`Wal::replay`].
pub fn replay_reader<R: Read>(mut reader: R, budget: &Budget) -> Result<Replay> {
    let mut records = Vec::new();
    let mut offset: u64 = 0;
    loop {
        let mut header = [0u8; RECORD_HEADER];
        match read_exact_or_eof(&mut reader, &mut header)? {
            Fill::Empty => {
                // Clean end: the previous record was the last one.
                return Ok(Replay {
                    records,
                    torn_tail: false,
                    valid_bytes: offset,
                });
            }
            Fill::Partial => {
                return Ok(Replay {
                    records,
                    torn_tail: true,
                    valid_bytes: offset,
                });
            }
            Fill::Full => {}
        }
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_RECORD {
            return Err(Error::Corrupt {
                file: "wal",
                offset,
                detail: format!("record length {len} exceeds the {MAX_RECORD}-byte ceiling"),
            });
        }
        // Charge the payload buffer before allocating it; the guard refunds
        // the charge once the payload has been copied out or rejected.
        let _charge = budget.try_charge_memory_scoped(u64::from(len))?;
        let mut payload = vec![0u8; len as usize];
        match read_exact_or_eof(&mut reader, &mut payload)? {
            Fill::Full => {}
            Fill::Empty | Fill::Partial => {
                return Ok(Replay {
                    records,
                    torn_tail: true,
                    valid_bytes: offset,
                });
            }
        }
        if crc32(&payload) != crc {
            return Err(Error::Corrupt {
                file: "wal",
                offset,
                detail: "record checksum mismatch".into(),
            });
        }
        offset += (RECORD_HEADER + payload.len()) as u64;
        records.push(payload);
    }
}

enum Fill {
    /// The buffer was filled completely.
    Full,
    /// EOF before any byte was read.
    Empty,
    /// EOF after some but not all bytes (a torn record).
    Partial,
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<Fill> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Fill::Empty
                } else {
                    Fill::Partial
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kanon-store-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("round-trip");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"").unwrap();
        wal.append(&[0xab; 1000]).unwrap();
        assert_eq!(wal.bytes(), (5 + 1000 + 3 * RECORD_HEADER) as u64);

        let replay = Wal::replay(&path, &Budget::unlimited()).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.valid_bytes, wal.bytes());
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], b"first");
        assert_eq!(replay.records[1], b"");
        assert_eq!(replay.records[2], vec![0xab; 1000]);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = tmp("missing").with_extension("nope");
        let replay = Wal::replay(&path, &Budget::unlimited()).unwrap();
        assert!(replay.records.is_empty());
        assert!(!replay.torn_tail);
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let mut image = Vec::new();
        encode_record(&mut image, b"alpha");
        encode_record(&mut image, b"beta");
        let full = image.len();
        encode_record(&mut image, b"gamma");
        // Cut at every byte boundary inside the third record (a cut at
        // exactly `full` is a clean EOF, not a tear): the first two records
        // must always survive, the third must never half-apply.
        for cut in full + 1..image.len() {
            let replay = replay_reader(&image[..cut], &Budget::unlimited()).unwrap();
            assert!(replay.torn_tail, "cut at {cut} not reported as torn");
            assert_eq!(replay.records.len(), 2, "cut at {cut}");
            assert_eq!(replay.valid_bytes, full as u64);
        }
    }

    #[test]
    fn interior_corruption_refuses_loudly() {
        let mut image = Vec::new();
        encode_record(&mut image, b"alpha");
        encode_record(&mut image, b"beta");
        // Flip a payload byte of the *first* record.
        image[RECORD_HEADER] ^= 0x01;
        let err = replay_reader(&image[..], &Budget::unlimited()).unwrap_err();
        assert!(matches!(err, Error::Corrupt { offset: 0, .. }), "{err}");
    }

    #[test]
    fn absurd_length_prefix_is_corruption() {
        let mut image = Vec::new();
        encode_record(&mut image, b"ok");
        let mut bad = (MAX_RECORD + 1).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0; 4]);
        image.extend_from_slice(&bad);
        let err = replay_reader(&image[..], &Budget::unlimited()).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "{err}");
    }

    #[test]
    fn replay_buffers_respect_the_memory_budget() {
        let mut image = Vec::new();
        encode_record(&mut image, &[7u8; 4096]);
        let tight = Budget::builder().max_memory_bytes(100).build();
        let err = replay_reader(&image[..], &tight).unwrap_err();
        assert!(matches!(err, Error::Budget(_)), "{err}");
        // The scoped charge rolled back, so the budget is untouched.
        assert_eq!(tight.memory_charged(), 0);
        // A roomy budget replays the same image fine, and ends uncharged.
        let roomy = Budget::builder().max_memory_bytes(1 << 20).build();
        let replay = replay_reader(&image[..], &roomy).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(roomy.memory_charged(), 0);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"short-lived").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), 0);
        let replay = Wal::replay(&path, &Budget::unlimited()).unwrap();
        assert!(replay.records.is_empty());
        // The log accepts appends after a reset.
        wal.append(b"fresh").unwrap();
        let replay = Wal::replay(&path, &Budget::unlimited()).unwrap();
        assert_eq!(replay.records.len(), 1);
    }
}
