//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! The workspace carries no external checksum crate, so the classic
//! byte-at-a-time table implementation lives here. The polynomial and bit
//! order match zlib's `crc32`, which keeps the on-disk format checkable
//! with standard tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (initial value 0, i.e. the common one-shot form).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello, world");
        let mut data = *b"hello, world";
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit} undetected");
                data[i] ^= 1 << bit;
            }
        }
    }
}
