//! A minimal little-endian binary codec for record payloads.
//!
//! Payloads travel inside CRC-checked envelopes (WAL records, snapshots),
//! so by the time a [`ByteReader`] sees them the bytes are known to be the
//! bytes that were written. A read that still runs off the end or finds a
//! nonsensical tag therefore indicates a format bug or version skew and is
//! reported as [`Error::Corrupt`], never silently zero-filled.

use crate::error::{Error, Result};

/// Appends primitive values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the on-disk format is 64-bit
    /// regardless of platform).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string length fits u32"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }
}

/// Reads primitive values back out of an encoded payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
    /// File label for error reports (`wal` or `snapshot`).
    file: &'static str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`; `file` labels corruption reports.
    #[must_use]
    pub fn new(buf: &'a [u8], file: &'static str) -> Self {
        ByteReader { buf, at: 0, file }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Reports a decode problem at the current offset.
    #[must_use]
    pub fn corrupt(&self, detail: impl Into<String>) -> Error {
        Error::Corrupt {
            file: self.file,
            offset: self.at as u64,
            detail: detail.into(),
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        if self.remaining() < len {
            return Err(self.corrupt(format!(
                "payload truncated: wanted {len} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.at..self.at + len];
        self.at += len;
        Ok(slice)
    }

    /// Reads a single byte.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on truncation.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on truncation.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on truncation.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on truncation or a value beyond this platform's
    /// address width.
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("length {v} exceeds usize")))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(self.corrupt(format!(
                "string length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("string is not UTF-8"))
    }

    /// Reads a length-prefixed `u32` slice.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on truncation or an implausible length.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>> {
        let len = self.get_usize()?;
        if len > self.remaining() / 4 {
            return Err(self.corrupt(format!("u32 slice length {len} exceeds payload")));
        }
        (0..len).map(|_| self.get_u32()).collect()
    }

    /// Reads a length-prefixed `u64` slice.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on truncation or an implausible length.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let len = self.get_usize()?;
        if len > self.remaining() / 8 {
            return Err(self.corrupt(format!("u64 slice length {len} exceeds payload")));
        }
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Asserts every byte has been consumed (trailing garbage is version
    /// skew, not padding).
    ///
    /// # Errors
    /// [`Error::Corrupt`] when bytes remain.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() > 0 {
            return Err(self.corrupt(format!("{} trailing bytes after payload", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_usize(12);
        w.put_str("héllo");
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[9, 8]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes, "wal");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 12);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![9, 8]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_corruption_not_default_values() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..2], "snapshot");
        let err = r.get_u32().unwrap_err();
        assert!(err.to_string().contains("snapshot"));
    }

    #[test]
    fn oversized_length_prefixes_are_rejected() {
        // A string claiming to be longer than the payload.
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "wal");
        assert!(r.get_str().is_err());

        // A slice claiming more elements than could fit.
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 8);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "wal");
        assert!(r.get_u64_vec().is_err());
    }

    #[test]
    fn trailing_bytes_are_flagged() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "wal");
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
    }
}
