//! Store error taxonomy: I/O, corruption, and budget trips.

use std::fmt;
use std::io;

/// Alias for store results.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong reading or writing durable state.
#[derive(Debug)]
pub enum Error {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A committed record or snapshot failed its integrity checks. Unlike a
    /// torn tail, this is never recovered from silently: the bytes claim to
    /// be complete but do not check out.
    Corrupt {
        /// Which file was found corrupt (`wal` or `snapshot`).
        file: &'static str,
        /// Byte offset at which the corruption was detected.
        offset: u64,
        /// What check failed.
        detail: String,
    },
    /// A replay buffer would exceed the governing budget's memory cap.
    Budget(kanon_core::Error),
    /// Another live holder owns the store directory's single-writer lock.
    Locked {
        /// The lock file that refused acquisition.
        path: std::path::PathBuf,
        /// PID recorded in the lock file, when its body was readable.
        holder_pid: Option<u32>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "store I/O error: {e}"),
            Error::Corrupt {
                file,
                offset,
                detail,
            } => write!(f, "corrupt {file} at byte {offset}: {detail}"),
            Error::Budget(e) => write!(f, "store budget exceeded: {e}"),
            Error::Locked { path, holder_pid } => match holder_pid {
                Some(pid) => write!(f, "store locked by pid {pid} ({})", path.display()),
                None => write!(f, "store locked ({})", path.display()),
            },
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Budget(e) => Some(e),
            Error::Corrupt { .. } | Error::Locked { .. } => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<kanon_core::Error> for Error {
    fn from(e: kanon_core::Error) -> Self {
        Error::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file_and_offset() {
        let e = Error::Corrupt {
            file: "wal",
            offset: 42,
            detail: "checksum mismatch".into(),
        };
        let text = e.to_string();
        assert!(text.contains("wal"));
        assert!(text.contains("42"));
        assert!(text.contains("checksum"));
    }

    #[test]
    fn io_errors_convert() {
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
