//! Single-writer directory locks for durable store directories.
//!
//! A [`DirLock`] guards a store directory against two live processes (or
//! two stores inside one process) appending to the same WAL. The lock is a
//! `store.lock` file created with `O_CREAT | O_EXCL`; the file body holds
//! the owner's PID in decimal.
//!
//! ## Staleness
//!
//! A `kill -9` leaves the lock file behind, and crash recovery must not be
//! blocked by debris from the process it is recovering. On acquisition
//! conflict the holder's PID is read back; if that process is verifiably
//! gone (on Linux, `/proc/<pid>` does not exist) the stale file is removed
//! and acquisition retried once. A live holder — or an unreadable lock
//! file, or a platform where liveness cannot be checked — refuses with
//! [`Error::Locked`], never steals.
//!
//! Dropping the lock removes the file. The protocol is advisory: it
//! coordinates cooperating `kanon` processes, it does not stop a hostile
//! writer with raw filesystem access.

use std::fs::{self, OpenOptions};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};

/// Name of the lock file inside a guarded store directory.
pub const LOCK_FILE: &str = "store.lock";

/// An exclusive advisory lock on a store directory. Held for the lifetime
/// of the value; dropping it releases the lock by removing the file.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Acquires the lock for `dir`, taking over from a verifiably dead
    /// previous holder.
    ///
    /// # Errors
    /// [`Error::Locked`] when another live process (or another store in
    /// this process) holds the lock; I/O errors from the filesystem.
    pub fn acquire(dir: impl AsRef<Path>) -> Result<DirLock> {
        let path = dir.as_ref().join(LOCK_FILE);
        match Self::try_create(&path) {
            Ok(lock) => Ok(lock),
            Err(Error::Locked { holder_pid, .. }) => {
                if pid_is_dead(holder_pid) {
                    // The holder crashed without releasing. Remove its
                    // debris and retry exactly once; losing the retry race
                    // to a concurrent acquirer is a genuine conflict.
                    let _ = fs::remove_file(&path);
                    Self::try_create(&path)
                } else {
                    Err(Error::Locked {
                        path: path.clone(),
                        holder_pid,
                    })
                }
            }
            Err(e) => Err(e),
        }
    }

    fn try_create(path: &Path) -> Result<DirLock> {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut file) => {
                // Best effort: a lock file with an unreadable body is
                // still a held lock, just never a stealable one.
                let _ = write!(file, "{}", std::process::id());
                let _ = file.sync_all();
                Ok(DirLock {
                    path: path.to_path_buf(),
                })
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                let holder_pid = fs::read_to_string(path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                Err(Error::Locked {
                    path: path.to_path_buf(),
                    holder_pid,
                })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The lock file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// True only when the holder is *verifiably* gone. `None` (unreadable
/// lock body) and non-Linux platforms conservatively report "alive":
/// refusing a stale lock is recoverable, stealing a live one is not.
fn pid_is_dead(pid: Option<u32>) -> bool {
    let Some(pid) = pid else { return false };
    if pid == std::process::id() {
        // Our own previous store in this process still holds it.
        return false;
    }
    if cfg!(target_os = "linux") {
        !Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kanon-lock-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = tmp("cycle");
        let lock = DirLock::acquire(&dir).unwrap();
        assert!(lock.path().exists());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        let _again = DirLock::acquire(&dir).unwrap();
    }

    #[test]
    fn second_acquire_in_process_is_refused() {
        let dir = tmp("conflict");
        let _held = DirLock::acquire(&dir).unwrap();
        let err = DirLock::acquire(&dir).unwrap_err();
        match err {
            Error::Locked { holder_pid, .. } => {
                assert_eq!(holder_pid, Some(std::process::id()));
            }
            other => panic!("expected Locked, got {other}"),
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn stale_lock_from_dead_pid_is_taken_over() {
        let dir = tmp("stale");
        // No real process gets PID near u32::MAX on Linux (pid_max caps
        // far below), so this lock is verifiably dead debris.
        fs::write(dir.join(LOCK_FILE), format!("{}", u32::MAX - 7)).unwrap();
        let lock = DirLock::acquire(&dir).unwrap();
        assert_eq!(
            fs::read_to_string(lock.path()).unwrap().trim(),
            format!("{}", std::process::id())
        );
    }

    #[test]
    fn garbage_lock_body_is_never_stolen() {
        let dir = tmp("garbage");
        fs::write(dir.join(LOCK_FILE), "not a pid").unwrap();
        let err = DirLock::acquire(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                Error::Locked {
                    holder_pid: None,
                    ..
                }
            ),
            "{err}"
        );
    }
}
