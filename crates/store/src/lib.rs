//! `kanon-store`: durable state for incremental anonymization.
//!
//! The delta engine in `kanon-pipeline` must survive a crash at any byte
//! boundary without ever replaying into a half-applied update. This crate
//! supplies the two storage primitives that make that possible, with no
//! dependency on what is being stored:
//!
//! - **Write-ahead log** ([`wal`]) — an append-only file of
//!   length-prefixed, CRC-32-checksummed records. Appends are the
//!   durability point for a delta batch; replay either yields a consistent
//!   prefix (a torn tail from a crash mid-append is truncated away) or
//!   refuses loudly (a checksum mismatch inside the committed prefix is
//!   corruption, never silently skipped).
//! - **Snapshot** ([`snapshot`]) — a whole-state checkpoint written to a
//!   temporary file and atomically renamed into place, with a magic number,
//!   format version, and whole-payload checksum. Compaction writes a
//!   snapshot and then resets the WAL; a crash between the two steps is
//!   harmless because records at or below the snapshot's sequence number
//!   are skipped on replay.
//!
//! A third primitive, the **directory lock** ([`lock`]), keeps two live
//! writers out of the same store directory (single-writer WAL discipline)
//! while letting crash recovery take over a verifiably dead holder's lock.
//!
//! Record payloads are opaque bytes here; [`bytes`] offers the little
//! binary codec (`u32`/`u64`/length-prefixed strings, all little-endian)
//! the delta engine uses to fill them. Replay buffers are charged against a
//! [`kanon_core::govern::Budget`] so a hostile or corrupt length prefix
//! cannot balloon memory past the governor's cap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod crc;
pub mod error;
pub mod lock;
pub mod snapshot;
pub mod wal;

pub use bytes::{ByteReader, ByteWriter};
pub use crc::crc32;
pub use error::{Error, Result};
pub use lock::{DirLock, LOCK_FILE};
pub use snapshot::{read_snapshot, write_snapshot};
pub use wal::{encode_record, Replay, Wal, RECORD_HEADER};
