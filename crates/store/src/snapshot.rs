//! Atomic whole-state snapshots.
//!
//! A snapshot is written to `<path>.tmp`, fsynced, and renamed over
//! `<path>` — the rename is the commit point, so readers only ever see the
//! old snapshot or the new one, never a partial write. The containing
//! directory is fsynced after the rename (best effort on platforms where
//! directory handles cannot be synced) so the rename itself survives a
//! power cut.
//!
//! ## On-disk format
//!
//! ```text
//! [4 bytes magic "KSNP"] [u32 version] [u64 payload len] [u32 crc32(payload)] [payload]
//! ```
//!
//! Any mismatch — magic, unsupported version, truncation, checksum — is
//! [`Error::Corrupt`]: a snapshot is either wholly valid or rejected. There
//! is no partial-recovery mode; the caller falls back to the previous
//! snapshot (if it kept one) or re-initializes from source data.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;

use kanon_core::govern::Budget;

use crate::crc::crc32;
use crate::error::{Error, Result};

const MAGIC: [u8; 4] = *b"KSNP";
const HEADER: usize = 4 + 4 + 8 + 4;

/// Writes `payload` as a version-`version` snapshot at `path`, atomically.
///
/// # Errors
/// I/O errors from the temporary write, fsync, or rename.
pub fn write_snapshot(path: impl AsRef<Path>, version: u32, payload: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        let mut header = Vec::with_capacity(HEADER);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(payload).to_le_bytes());
        file.write_all(&header)?;
        file.write_all(payload)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself. Not all filesystems let us sync a
    // directory handle; failure here narrows durability, not atomicity.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads the snapshot at `path`. `Ok(None)` when no snapshot exists yet.
///
/// # Errors
/// [`Error::Corrupt`] on any integrity failure (bad magic, version other
/// than `version`, truncation, checksum mismatch); [`Error::Budget`] when
/// the payload buffer would exceed `budget`'s memory cap; I/O errors.
pub fn read_snapshot(
    path: impl AsRef<Path>,
    version: u32,
    budget: &Budget,
) -> Result<Option<Vec<u8>>> {
    let path = path.as_ref();
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut header = [0u8; HEADER];
    file.read_exact(&mut header).map_err(|_| Error::Corrupt {
        file: "snapshot",
        offset: 0,
        detail: "file shorter than the snapshot header".into(),
    })?;
    if header[..4] != MAGIC {
        return Err(Error::Corrupt {
            file: "snapshot",
            offset: 0,
            detail: "bad magic (not a kanon snapshot)".into(),
        });
    }
    let found_version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if found_version != version {
        return Err(Error::Corrupt {
            file: "snapshot",
            offset: 4,
            detail: format!("snapshot version {found_version}, expected {version}"),
        });
    }
    let len = u64::from_le_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]);
    let crc = u32::from_le_bytes([header[16], header[17], header[18], header[19]]);
    let expected = file.metadata()?.len().saturating_sub(HEADER as u64);
    if len != expected {
        return Err(Error::Corrupt {
            file: "snapshot",
            offset: 8,
            detail: format!("payload length {len} but {expected} bytes follow the header"),
        });
    }
    // Keep the transient charge alive only while the payload is verified;
    // the caller owns the returned buffer and its long-term accounting.
    let _charge = budget.try_charge_memory_scoped(len)?;
    let mut payload = Vec::with_capacity(usize::try_from(len).map_err(|_| Error::Corrupt {
        file: "snapshot",
        offset: 8,
        detail: format!("payload length {len} exceeds usize"),
    })?);
    file.read_to_end(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(Error::Corrupt {
            file: "snapshot",
            offset: HEADER as u64,
            detail: "payload checksum mismatch".into(),
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kanon-snapshot-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("state.snap")
    }

    #[test]
    fn round_trip() {
        let path = tmp("round-trip");
        write_snapshot(&path, 1, b"the whole state").unwrap();
        let payload = read_snapshot(&path, 1, &Budget::unlimited())
            .unwrap()
            .unwrap();
        assert_eq!(payload, b"the whole state");
        // No stray temporary left behind.
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn missing_snapshot_is_none() {
        let path = tmp("missing").with_extension("nope");
        assert!(read_snapshot(&path, 1, &Budget::unlimited())
            .unwrap()
            .is_none());
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let path = tmp("overwrite");
        write_snapshot(&path, 1, b"old").unwrap();
        write_snapshot(&path, 1, b"new and longer").unwrap();
        let payload = read_snapshot(&path, 1, &Budget::unlimited())
            .unwrap()
            .unwrap();
        assert_eq!(payload, b"new and longer");
    }

    #[test]
    fn corruption_is_refused() {
        let path = tmp("corrupt");
        write_snapshot(&path, 1, b"fragile bytes").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip one payload byte.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1, &Budget::unlimited()),
            Err(Error::Corrupt { .. })
        ));
        bytes[last] ^= 0x40;

        // Truncate the payload.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1, &Budget::unlimited()),
            Err(Error::Corrupt { .. })
        ));

        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        std::fs::write(&path, &wrong).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1, &Budget::unlimited()),
            Err(Error::Corrupt { .. })
        ));

        // Wrong version.
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path, 2, &Budget::unlimited()),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn payload_buffer_is_budget_charged() {
        let path = tmp("budget");
        write_snapshot(&path, 1, &[3u8; 4096]).unwrap();
        let tight = Budget::builder().max_memory_bytes(16).build();
        assert!(matches!(
            read_snapshot(&path, 1, &tight),
            Err(Error::Budget(_))
        ));
        assert_eq!(tight.memory_charged(), 0);
    }
}
