//! Graceful-degradation ladder: spend the budget on the best algorithm that
//! can afford to finish.
//!
//! The paper's approximation algorithms trade quality for cost: the §4.2.1
//! exhaustive greedy (`3k(1+ln k)` guarantee) enumerates `O(n^{2k})`
//! candidates, the §4.2.2 center greedy (`6k(1+ln m)`) is strongly
//! polynomial, and the agglomerative baseline is a fast heuristic with no
//! worst-case guarantee at all. A serving system with a deadline wants the
//! *best guarantee it can afford*, not an error — so [`run_ladder`] tries
//! the rungs in guarantee order, hands each rung a [`Budget::child`] slice
//! of the remaining allowance, and falls one rung down whenever a rung's
//! budget trips (or its static size guard rejects the instance).
//!
//! Budget slicing: at the moment a rung starts, the deadline actually
//! remaining (recomputed from elapsed wall-clock time, never from a
//! schedule drawn up before the run) is divided equally among the rungs
//! still to try — with three rungs left the first receives a third, and a
//! rung that returns early (instantly-failing guard, trivially small
//! shard) hands its unused time straight to its successors instead of
//! stranding them with slices from a stale schedule. The final rung always
//! receives everything that is left. Memory and candidate caps are
//! inherited per rung with a fresh memory counter — an abandoned rung's
//! (freed) allocations do not starve its successor. Cancellation is
//! shared: cancelling the parent budget aborts whichever rung is running
//! *and* every rung after it.

use std::time::{Duration, Instant};

use kanon_core::algo::{
    anonymization_from_partition, try_center_greedy_governed, try_exhaustive_greedy_governed,
};
use kanon_core::error::{Error, Result};
use kanon_core::govern::Budget;
use kanon_core::greedy::{CenterConfig, FullCoverConfig};
use kanon_core::{Algorithm, Anonymization, Dataset};

use crate::agglomerative::try_agglomerative_governed;

/// One rung of the degradation ladder, in descending guarantee order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Rung {
    /// Full-domain generalization via the lattice search in
    /// `kanon-relation` — the ladder's top rung, sitting *above* the
    /// suppression rungs: when hierarchies are available it finds the
    /// exact minimum-total-generalization node, which typically loses far
    /// less information than cell suppression.
    ///
    /// This rung is orchestrated at whole-table scope by the pipeline's
    /// auto path (full-domain levels must be uniform across the table, so
    /// it cannot run per shard) and needs hierarchies plus a codec that
    /// this suppression-domain module does not carry. It is therefore
    /// **not** a member of [`Rung::ALL`]: [`run_ladder`] asked to start
    /// here runs the entire suppression ladder beneath it, which is
    /// exactly the fall-through the pipeline performs when the lattice
    /// trips its budget.
    Generalization,
    /// Theorem 4.1 exhaustive greedy cover: `3k(1+ln k)`-approximate,
    /// exponential in `k`.
    #[default]
    FullGreedyCover,
    /// Theorem 4.2 center greedy cover: `6k(1+ln m)`-approximate, strongly
    /// polynomial.
    CenterGreedy,
    /// Agglomerative merging: fast heuristic, no worst-case guarantee.
    Agglomerative,
}

impl Rung {
    /// The three *suppression* rungs [`run_ladder`] drives, best guarantee
    /// first. [`Rung::Generalization`] sits above them but is excluded: it
    /// runs in a different output domain (a generalized table, not a
    /// suppressor) and is dispatched by the pipeline layer.
    pub const ALL: [Rung; 3] = [
        Rung::FullGreedyCover,
        Rung::CenterGreedy,
        Rung::Agglomerative,
    ];

    /// Short stable name (used in CLI notes and bench CSVs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rung::Generalization => "generalization-lattice",
            Rung::FullGreedyCover => "full-greedy-cover",
            Rung::CenterGreedy => "center-greedy",
            Rung::Agglomerative => "agglomerative",
        }
    }

    /// The approximation guarantee that survives when this rung answers.
    #[must_use]
    pub fn guarantee(self) -> &'static str {
        match self {
            Rung::Generalization => "minimal full-domain generalization (exact)",
            Rung::FullGreedyCover => "3k(1+ln k)",
            Rung::CenterGreedy => "6k(1+ln m)",
            Rung::Agglomerative => "heuristic (no worst-case guarantee)",
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened when a rung was attempted.
#[derive(Clone, Debug)]
pub enum RungOutcome {
    /// The rung finished inside its budget slice with this suppression cost.
    Succeeded {
        /// Suppressed-cell count of the rung's anonymization.
        cost: usize,
    },
    /// The rung could not answer (budget trip, size guard, overflow guard);
    /// the ladder fell to the next rung.
    Failed {
        /// Rendered error explaining why the rung was abandoned.
        reason: String,
    },
}

/// Per-rung account of one ladder run.
#[derive(Clone, Debug)]
pub struct RungReport {
    /// Which rung was attempted.
    pub rung: Rung,
    /// Wall-clock time the attempt consumed.
    pub elapsed: Duration,
    /// How the attempt ended.
    pub outcome: RungOutcome,
}

/// Summary of a completed [`run_ladder`] call.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The rung that produced the returned anonymization.
    pub rung: Rung,
    /// The approximation guarantee that survives (the winning rung's).
    pub guarantee: &'static str,
    /// Every attempt in order, including the failed ones.
    pub attempts: Vec<RungReport>,
}

impl RunReport {
    /// True when the ladder fell below its first attempted rung (which is
    /// [`LadderConfig::start`], the top rung by default).
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.attempts.first().is_some_and(|a| a.rung != self.rung)
    }
}

/// Configuration for [`run_ladder`].
#[derive(Clone, Debug, Default)]
pub struct LadderConfig {
    /// The overall budget the ladder divides among its rungs. Unlimited by
    /// default — the ladder then simply runs the top rung to completion.
    pub budget: Budget,
    /// The first rung to attempt (default: the top,
    /// [`Rung::FullGreedyCover`]); rungs above it are skipped entirely.
    ///
    /// Callers that already know the top rungs cannot answer — e.g. the
    /// sharded pipeline, whose shards sit far past the exhaustive greedy's
    /// candidate guard — start lower and save the (cheap but per-shard
    /// repeated) guard checks and attempt bookkeeping.
    pub start: Rung,
    /// Configuration for the [`Rung::FullGreedyCover`] attempt.
    pub full: FullCoverConfig,
    /// Configuration for the [`Rung::CenterGreedy`] attempt.
    pub center: CenterConfig,
}

/// Whether a rung failure is *recoverable* — i.e. the ladder should fall to
/// the next rung instead of aborting the whole run. Budget trips, static
/// size guards, and overflow guards are exactly the "this algorithm cannot
/// afford this instance" signals the ladder exists to absorb; anything else
/// (bad `k`, internal invariants) would fail on every rung and propagates.
fn recoverable(err: &Error) -> bool {
    matches!(
        err,
        Error::BudgetExceeded { .. } | Error::InstanceTooLarge { .. } | Error::Overflow { .. }
    )
}

fn attempt(
    ds: &Dataset,
    k: usize,
    config: &LadderConfig,
    rung: Rung,
    budget: &Budget,
) -> Result<Anonymization> {
    match rung {
        // The generalization rung needs hierarchies and a codec this
        // suppression-domain runner does not carry; it is dispatched by the
        // pipeline's auto path. Here it fails *recoverably*, so a ladder
        // reaching it falls straight through to the suppression rungs.
        Rung::Generalization => Err(Error::InstanceTooLarge {
            solver: "generalization-lattice",
            limit: "requires hierarchies; driven by the pipeline auto path".to_string(),
        }),
        Rung::FullGreedyCover => try_exhaustive_greedy_governed(ds, k, &config.full, budget),
        Rung::CenterGreedy => try_center_greedy_governed(ds, k, &config.center, budget),
        Rung::Agglomerative => {
            let partition = try_agglomerative_governed(ds, k, budget)?;
            anonymization_from_partition(ds, partition, k, Algorithm::External("agglomerative"))
        }
    }
}

/// Runs the degradation ladder: best-guarantee algorithm first, falling one
/// rung per recoverable failure, inside `config.budget`.
///
/// Returns the first rung's anonymization that finishes, together with a
/// [`RunReport`] naming the winning rung, its surviving guarantee, and
/// every attempt's cost/time.
///
/// # Errors
/// Standard `k` validation errors up front. [`Error::BudgetExceeded`] when
/// no rung could finish (the last rung's error is returned); cancellation
/// surfaces the same way. Non-recoverable rung errors propagate
/// immediately.
pub fn run_ladder(
    ds: &Dataset,
    k: usize,
    config: &LadderConfig,
) -> Result<(Anonymization, RunReport)> {
    run_ladder_with(ds, k, config, attempt)
}

/// The ladder loop, generic over the rung runner so tests can inject mock
/// rungs (instantly-failing, deliberately slow) and observe the slices the
/// real scheduling hands out.
fn run_ladder_with(
    ds: &Dataset,
    k: usize,
    config: &LadderConfig,
    mut run_rung: impl FnMut(&Dataset, usize, &LadderConfig, Rung, &Budget) -> Result<Anonymization>,
) -> Result<(Anonymization, RunReport)> {
    ds.check_k(k)?;
    // `Rung::Generalization` is not in `ALL` (it lives above the
    // suppression ladder, dispatched by the pipeline); starting there
    // means "the whole suppression ladder beneath it".
    let start = Rung::ALL
        .iter()
        .position(|&r| r == config.start)
        .unwrap_or(0);
    let rungs = &Rung::ALL[start..];
    let mut attempts = Vec::with_capacity(rungs.len());
    let mut last_err: Option<Error> = None;

    for (idx, &rung) in rungs.iter().enumerate() {
        let is_last = idx + 1 == rungs.len();
        // Slices are recomputed from the *actual* remaining deadline at the
        // moment each rung starts (never from a schedule fixed up front):
        // the time left is divided equally among the rungs still to try, so
        // a rung that returns early — instantly-tripping guard, trivially
        // small shard — passes its unused allowance on instead of leaving
        // its successors with stale, starved slices. The final rung gets
        // everything left. `child` clamps to the parent's remaining time
        // and shares the cancellation flag.
        let slice = if is_last {
            config.budget.child(None)
        } else {
            let rungs_left = (rungs.len() - idx) as u32;
            config
                .budget
                .child(config.budget.remaining().map(|r| r / rungs_left))
        };
        let started = Instant::now();
        match run_rung(ds, k, config, rung, &slice) {
            Ok(anon) => {
                attempts.push(RungReport {
                    rung,
                    elapsed: started.elapsed(),
                    outcome: RungOutcome::Succeeded { cost: anon.cost },
                });
                let report = RunReport {
                    rung,
                    guarantee: rung.guarantee(),
                    attempts,
                };
                return Ok((anon, report));
            }
            Err(err) if recoverable(&err) => {
                attempts.push(RungReport {
                    rung,
                    elapsed: started.elapsed(),
                    outcome: RungOutcome::Failed {
                        reason: err.to_string(),
                    },
                });
                last_err = Some(err);
            }
            Err(err) => return Err(err),
        }
    }
    Err(last_err.expect("ladder has at least one rung"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::algo::exhaustive_greedy;

    fn dataset() -> Dataset {
        Dataset::from_fn(18, 3, |i, j| ((i * 7 + j * 3) % 5) as u32)
    }

    #[test]
    fn unlimited_budget_uses_top_rung_and_matches_pipeline() {
        let ds = dataset();
        let (anon, report) = run_ladder(&ds, 3, &LadderConfig::default()).unwrap();
        assert_eq!(report.rung, Rung::FullGreedyCover);
        assert!(!report.degraded());
        assert_eq!(report.guarantee, "3k(1+ln k)");
        assert_eq!(report.attempts.len(), 1);
        // Byte-identical to the ungoverned Theorem 4.1 pipeline.
        let direct = exhaustive_greedy(&ds, 3, &FullCoverConfig::default()).unwrap();
        assert_eq!(anon.partition, direct.partition);
        assert_eq!(anon.cost, direct.cost);
        assert!(anon.table.is_k_anonymous(3));
    }

    #[test]
    fn candidate_cap_degrades_to_center_greedy() {
        let ds = dataset();
        let config = LadderConfig {
            // Far below the Σ C(18, 3..=5) candidate family.
            budget: Budget::builder().max_candidates(10).build(),
            ..Default::default()
        };
        let (anon, report) = run_ladder(&ds, 3, &config).unwrap();
        assert_eq!(report.rung, Rung::CenterGreedy);
        assert!(report.degraded());
        assert_eq!(report.guarantee, "6k(1+ln m)");
        assert_eq!(report.attempts.len(), 2);
        assert!(matches!(
            report.attempts[0].outcome,
            RungOutcome::Failed { .. }
        ));
        assert!(anon.table.is_k_anonymous(3));
    }

    #[test]
    fn start_rung_skips_the_rungs_above_it() {
        let ds = dataset();
        let config = LadderConfig {
            start: Rung::CenterGreedy,
            ..Default::default()
        };
        let (anon, report) = run_ladder(&ds, 3, &config).unwrap();
        assert_eq!(report.rung, Rung::CenterGreedy);
        // The skipped top rung is not an attempt, so nothing "degraded".
        assert_eq!(report.attempts.len(), 1);
        assert!(!report.degraded());
        assert!(anon.table.is_k_anonymous(3));
        // Byte-identical to a ladder that fell to the same rung.
        let fell = run_ladder(
            &ds,
            3,
            &LadderConfig {
                budget: Budget::builder().max_candidates(10).build(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(anon.partition, fell.0.partition);
        // Starting on the last rung leaves exactly one attempt possible.
        let last = LadderConfig {
            start: Rung::Agglomerative,
            ..Default::default()
        };
        let (anon, report) = run_ladder(&ds, 3, &last).unwrap();
        assert_eq!(report.rung, Rung::Agglomerative);
        assert!(anon.table.is_k_anonymous(3));
    }

    #[test]
    fn tiny_memory_cap_fails_every_rung() {
        let ds = dataset();
        let config = LadderConfig {
            // Too small even for the distance cache every rung needs.
            budget: Budget::builder().max_memory_bytes(8).build(),
            ..Default::default()
        };
        let err = run_ladder(&ds, 3, &config).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn cancellation_aborts_the_whole_ladder() {
        let ds = dataset();
        let config = LadderConfig::default();
        config.budget.cancel();
        let err = run_ladder(&ds, 3, &config).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn bad_k_is_not_absorbed() {
        let ds = dataset();
        assert!(run_ladder(&ds, 0, &LadderConfig::default()).is_err());
        assert!(run_ladder(&ds, 19, &LadderConfig::default()).is_err());
    }

    /// A mock rung failure that the ladder treats as recoverable.
    fn budget_trip() -> Error {
        Error::BudgetExceeded {
            resource: kanon_core::Resource::WallClock,
            spent: 0,
            limit: 0,
        }
    }

    /// Regression (deadline-slice starvation): a first rung that returns
    /// *instantly* must not strand the later rungs with slices from a
    /// stale, up-front schedule. With a 3-rung ladder and deadline `D`, the
    /// first rung's slice is `D/3`; when it fails in ~0 time the second
    /// rung's slice must be recomputed from the time actually left — about
    /// `D/2` — not the `D/3` a pre-drawn schedule would hand it.
    #[test]
    fn instant_first_rung_passes_its_time_to_later_rungs() {
        let ds = dataset();
        let deadline = Duration::from_millis(400);
        let config = LadderConfig {
            budget: Budget::builder().deadline(deadline).build(),
            ..Default::default()
        };
        let mut observed: Vec<(Rung, Duration)> = Vec::new();
        let (anon, report) = run_ladder_with(&ds, 3, &config, |ds, k, config, rung, slice| {
            observed.push((rung, slice.remaining().expect("deadline set")));
            match rung {
                Rung::FullGreedyCover => Err(budget_trip()),
                other => attempt(ds, k, config, other, slice),
            }
        })
        .unwrap();
        assert_eq!(report.rung, Rung::CenterGreedy);
        assert!(anon.table.is_k_anonymous(3));
        let first = observed[0].1;
        let second = observed[1].1;
        // First slice: an equal third of the deadline, not half.
        assert!(
            first <= deadline / 3 && first > deadline / 4,
            "first rung slice {first:.2?} is not ~D/3"
        );
        // Second slice: recomputed from the ~full remaining time (about
        // D/2). A stale schedule would leave it the original D/3 = 133 ms;
        // anything comfortably above that proves the recomputation.
        assert!(
            second > deadline * 2 / 5,
            "second rung slice {second:.2?} was not recomputed from the \
             actual elapsed time (stale schedule would give {:.2?})",
            deadline / 3
        );
    }

    /// Regression (mock-slow first rung): when the first rung consumes its
    /// entire slice, the rungs after it still receive fresh, equal shares
    /// of whatever genuinely remains — and the final rung inherits all of
    /// it, so the ladder answers inside the original deadline.
    #[test]
    fn slow_first_rung_does_not_starve_the_final_rung() {
        let ds = dataset();
        let deadline = Duration::from_millis(300);
        let started = Instant::now();
        let config = LadderConfig {
            budget: Budget::builder().deadline(deadline).build(),
            ..Default::default()
        };
        let mut observed: Vec<(Rung, Duration)> = Vec::new();
        let (anon, report) = run_ladder_with(&ds, 3, &config, |ds, k, config, rung, slice| {
            observed.push((rung, slice.remaining().expect("deadline set")));
            match rung {
                // Mock-slow: burn the whole slice, then trip.
                Rung::FullGreedyCover => loop {
                    slice.check()?;
                    std::thread::sleep(Duration::from_millis(1));
                },
                // Fail instantly so the *last* rung's slice is observable.
                Rung::CenterGreedy => Err(budget_trip()),
                Rung::Agglomerative | Rung::Generalization => attempt(ds, k, config, rung, slice),
            }
        })
        .unwrap();
        assert_eq!(report.rung, Rung::Agglomerative);
        assert!(anon.table.is_k_anonymous(3));
        assert!(
            started.elapsed() < deadline + Duration::from_millis(100),
            "ladder overran the deadline: {:.2?}",
            started.elapsed()
        );
        // The slow rung held ~D/3 = 100 ms; the final rung must get all of
        // the ~200 ms actually left. The old compounding-halving schedule
        // (D/2 to the first rung, half of the rest to the second) left the
        // final rung only ~D/2; require comfortably more than that.
        let last = observed[2].1;
        assert!(
            last > deadline / 2 + Duration::from_millis(25),
            "final rung got {last:.2?} of a {deadline:.2?} deadline — starved"
        );
    }

    #[test]
    fn rung_metadata() {
        assert_eq!(Rung::FullGreedyCover.to_string(), "full-greedy-cover");
        assert_eq!(Rung::CenterGreedy.name(), "center-greedy");
        assert!(Rung::Agglomerative.guarantee().contains("heuristic"));
        assert_eq!(Rung::Generalization.name(), "generalization-lattice");
        assert!(Rung::Generalization.guarantee().contains("generalization"));
        assert!(!Rung::ALL.contains(&Rung::Generalization));
    }

    /// Starting at the (pipeline-dispatched) generalization rung must not
    /// panic: the suppression ladder runs in full beneath it — the exact
    /// fall-through the pipeline performs when the lattice trips.
    #[test]
    fn generalization_start_falls_through_to_the_suppression_ladder() {
        let ds = dataset();
        let config = LadderConfig {
            start: Rung::Generalization,
            ..Default::default()
        };
        let (anon, report) = run_ladder(&ds, 3, &config).unwrap();
        assert_eq!(report.rung, Rung::FullGreedyCover);
        assert!(anon.table.is_k_anonymous(3));
    }
}
