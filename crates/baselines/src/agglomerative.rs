//! Bottom-up agglomerative grouping by cheapest `ANON` delta.
//!
//! Start with singletons; while any block is smaller than `k`, merge the
//! pair `(A, B)` — with at least one of them undersized — minimizing
//! `ANON(A ∪ B) − ANON(A) − ANON(B)`. `O(n³·m)` worst case with the naive
//! rescan used here; fine at baseline-comparison sizes. Merge-candidate
//! costs come from a shared [`PairwiseDistances`] cache, whose pair and
//! zero-diameter fast paths cover the bulk of early-round evaluations.

use kanon_core::error::{Error, Result};
use kanon_core::govern::Budget;
use kanon_core::{Dataset, PairwiseDistances, Partition};

/// Builds a partition by agglomerative merging.
///
/// # Errors
/// Standard `k` validation errors.
pub fn agglomerative(ds: &Dataset, k: usize) -> Result<Partition> {
    try_agglomerative_governed(ds, k, &Budget::unlimited())
}

/// [`agglomerative`] under a [`Budget`]: the distance-cache build and the
/// merge scan poll the budget at bounded intervals.
///
/// # Errors
/// As [`agglomerative`]; additionally
/// [`kanon_core::Error::BudgetExceeded`] when the budget trips.
pub fn try_agglomerative_governed(ds: &Dataset, k: usize, budget: &Budget) -> Result<Partition> {
    ds.check_k(k)?;
    budget.check()?;
    let cache = PairwiseDistances::try_build_governed(ds, Some(1), budget)?;
    try_agglomerative_governed_with_cache(ds, k, &cache, budget)
}

/// [`agglomerative`] over a caller-supplied distance cache.
///
/// # Errors
/// As [`agglomerative`]; additionally [`Error::InvalidPartition`] if the
/// cache was built for a different row count.
pub fn agglomerative_with_cache(
    ds: &Dataset,
    k: usize,
    cache: &PairwiseDistances,
) -> Result<Partition> {
    try_agglomerative_governed_with_cache(ds, k, cache, &Budget::unlimited())
}

/// [`agglomerative_with_cache`] under a [`Budget`], polled once per
/// merge-candidate evaluation.
///
/// # Errors
/// As [`agglomerative_with_cache`]; additionally
/// [`kanon_core::Error::BudgetExceeded`] when the budget trips.
pub fn try_agglomerative_governed_with_cache(
    ds: &Dataset,
    k: usize,
    cache: &PairwiseDistances,
    budget: &Budget,
) -> Result<Partition> {
    ds.check_k(k)?;
    budget.check()?;
    let n = ds.n_rows();
    if cache.n() != n {
        return Err(Error::InvalidPartition(format!(
            "distance cache covers {} rows but the dataset has {n}",
            cache.n()
        )));
    }
    let mut blocks: Vec<Vec<u32>> = (0..n as u32).map(|r| vec![r]).collect();
    let mut costs: Vec<usize> = vec![0; n];
    let mut ticker = budget.ticker();

    loop {
        if !blocks.iter().any(|b| b.len() < k) {
            break;
        }
        let mut best: Option<(usize, usize, usize, usize)> = None; // (delta, merged_cost, i, j)
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                ticker.tick()?;
                if blocks[i].len() >= k && blocks[j].len() >= k {
                    continue;
                }
                let mut union: Vec<usize> = blocks[i]
                    .iter()
                    .chain(&blocks[j])
                    .map(|&r| r as usize)
                    .collect();
                union.sort_unstable();
                let merged = cache.anon_cost(ds, &union);
                let delta = merged.saturating_sub(costs[i] + costs[j]);
                let better = match best {
                    None => true,
                    Some((bd, _, _, _)) => delta < bd,
                };
                if better {
                    best = Some((delta, merged, i, j));
                }
            }
        }
        let (_, merged_cost, i, j) = best.expect("an undersized block always has a partner");
        // Merge j into i; remove j (swap-remove keeps indices dense).
        let absorbed = blocks.swap_remove(j);
        costs.swap_remove(j);
        blocks[i].extend(absorbed);
        costs[i] = merged_cost;
    }
    Partition::new(blocks, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicates_first() {
        let ds = Dataset::from_rows(vec![vec![1, 1], vec![1, 1], vec![5, 5], vec![5, 5]]).unwrap();
        let p = agglomerative(&ds, 2).unwrap();
        assert_eq!(p.anonymization_cost(&ds), 0);
        assert_eq!(p.n_blocks(), 2);
    }

    #[test]
    fn handles_odd_counts() {
        let ds = Dataset::from_fn(5, 3, |i, j| ((i + j) % 3) as u32);
        let p = agglomerative(&ds, 2).unwrap();
        assert!(p.min_block_size().unwrap() >= 2);
        let total: usize = p.blocks().iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn single_block_when_k_equals_n() {
        let ds = Dataset::from_fn(3, 2, |i, _| i as u32);
        let p = agglomerative(&ds, 3).unwrap();
        assert_eq!(p.n_blocks(), 1);
    }

    #[test]
    fn never_worse_than_trivial_on_clusters() {
        let ds = Dataset::from_rows(vec![
            vec![0, 0, 0],
            vec![0, 0, 1],
            vec![7, 7, 7],
            vec![7, 7, 8],
        ])
        .unwrap();
        let p = agglomerative(&ds, 2).unwrap();
        assert_eq!(p.anonymization_cost(&ds), 4); // two within-cluster pairs
    }

    #[test]
    fn shared_cache_matches_internal_build() {
        let ds = Dataset::from_fn(9, 3, |i, j| ((i * 5 + j) % 4) as u32);
        let cache = PairwiseDistances::build(&ds);
        let a = agglomerative(&ds, 3).unwrap();
        let b = agglomerative_with_cache(&ds, 3, &cache).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mismatched_cache_rejected() {
        let ds = Dataset::from_fn(6, 2, |i, _| i as u32);
        let other = Dataset::from_fn(5, 2, |i, _| i as u32);
        let cache = PairwiseDistances::build(&other);
        assert!(agglomerative_with_cache(&ds, 2, &cache).is_err());
    }

    #[test]
    fn bad_k() {
        let ds = Dataset::from_fn(3, 2, |i, _| i as u32);
        assert!(agglomerative(&ds, 0).is_err());
        assert!(agglomerative(&ds, 9).is_err());
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        let ds = Dataset::from_fn(17, 3, |i, j| ((i * 11 + j * 3) % 6) as u32);
        let a = agglomerative(&ds, 3).unwrap();
        let b = try_agglomerative_governed(&ds, 3, &Budget::unlimited()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn governed_cancellation_trips() {
        let ds = Dataset::from_fn(17, 3, |i, j| ((i * 11 + j * 3) % 6) as u32);
        let budget = Budget::unlimited();
        budget.cancel();
        let err = try_agglomerative_governed(&ds, 3, &budget).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }), "{err}");
    }
}
