//! Mondrian-style top-down median partitioning.
//!
//! LeFevre, DeWitt & Ramakrishnan's Mondrian (ICDE 2006) recursively splits
//! the record set at the median of the "widest" attribute until blocks drop
//! below `2k`. It post-dates the paper but is the de facto practical
//! comparator, so experiment E8 includes it. Dictionary codes are treated
//! as ordered values (Mondrian is defined for ordered domains; for purely
//! categorical data the order is arbitrary but fixed, which is the standard
//! adaptation).

use kanon_core::error::Result;
use kanon_core::govern::{Budget, PollTicker};
use kanon_core::{Dataset, Partition};

/// Builds a partition by recursive median splits.
///
/// ```
/// use kanon_core::Dataset;
/// let ds = Dataset::from_rows(vec![
///     vec![0, 0], vec![0, 1], vec![9, 9], vec![9, 8],
/// ]).unwrap();
/// let p = kanon_baselines::mondrian(&ds, 2).unwrap();
/// assert_eq!(p.n_blocks(), 2); // splits on the wide first column
/// ```
///
/// # Errors
/// Standard `k` validation errors.
pub fn mondrian(ds: &Dataset, k: usize) -> Result<Partition> {
    try_mondrian_governed(ds, k, &Budget::unlimited())
}

/// [`mondrian`] under a [`Budget`]: the recursive splitter polls the budget
/// once per row scanned while choosing and applying each cut.
///
/// # Errors
/// As [`mondrian`]; additionally [`kanon_core::Error::BudgetExceeded`] when
/// the budget trips.
pub fn try_mondrian_governed(ds: &Dataset, k: usize, budget: &Budget) -> Result<Partition> {
    ds.check_k(k)?;
    budget.check()?;
    let n = ds.n_rows();
    let all: Vec<u32> = (0..n as u32).collect();
    let mut blocks = Vec::new();
    let mut ticker = budget.ticker();
    split(ds, k, all, &mut blocks, &mut ticker)?;
    Partition::new(blocks, n, k)
}

fn split(
    ds: &Dataset,
    k: usize,
    rows: Vec<u32>,
    out: &mut Vec<Vec<u32>>,
    ticker: &mut PollTicker<'_>,
) -> Result<()> {
    if rows.len() < 2 * k {
        out.push(rows);
        return Ok(());
    }
    // Rank columns by number of distinct values within this block, widest
    // first (Mondrian's "choose dimension" heuristic for categorical data).
    let m = ds.n_cols();
    let mut col_spread: Vec<(usize, usize)> = Vec::with_capacity(m);
    for j in 0..m {
        let mut vals = Vec::with_capacity(rows.len());
        for &r in &rows {
            ticker.tick()?;
            vals.push(ds.get(r as usize, j));
        }
        vals.sort_unstable();
        vals.dedup();
        col_spread.push((vals.len(), j));
    }
    col_spread.sort_unstable_by(|a, b| b.cmp(a));

    for &(spread, j) in &col_spread {
        if spread < 2 {
            break; // No column can split this block.
        }
        // Median split on column j's values.
        let mut vals = Vec::with_capacity(rows.len());
        for &r in &rows {
            ticker.tick()?;
            vals.push(ds.get(r as usize, j));
        }
        vals.sort_unstable();
        let median = vals[vals.len() / 2];
        // "Strict" Mondrian: left gets < median... but with heavy ties that
        // can be empty. Use <= of the *lower* median neighbour: put values
        // strictly below the median left, the rest right, and fall back to
        // <= median if that leaves the left side empty.
        let mut left: Vec<u32> = rows
            .iter()
            .copied()
            .filter(|&r| ds.get(r as usize, j) < median)
            .collect();
        let mut right: Vec<u32> = rows
            .iter()
            .copied()
            .filter(|&r| ds.get(r as usize, j) >= median)
            .collect();
        if left.len() < k || right.len() < k {
            // Try the other cut direction before giving up on this column.
            left = rows
                .iter()
                .copied()
                .filter(|&r| ds.get(r as usize, j) <= median)
                .collect();
            right = rows
                .iter()
                .copied()
                .filter(|&r| ds.get(r as usize, j) > median)
                .collect();
        }
        if left.len() >= k && right.len() >= k {
            split(ds, k, left, out, ticker)?;
            split(ds, k, right, out, ticker)?;
            return Ok(());
        }
    }
    // No feasible cut: emit as one block.
    out.push(rows);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_two_obvious_clusters() {
        let ds = Dataset::from_rows(vec![vec![0, 0], vec![0, 1], vec![9, 9], vec![9, 8]]).unwrap();
        let p = mondrian(&ds, 2).unwrap();
        assert_eq!(p.n_blocks(), 2);
        assert_eq!(p.anonymization_cost(&ds), 4);
    }

    #[test]
    fn constant_table_single_block() {
        let ds = Dataset::from_fn(10, 3, |_, _| 7);
        let p = mondrian(&ds, 2).unwrap();
        assert_eq!(p.n_blocks(), 1);
        assert_eq!(p.anonymization_cost(&ds), 0);
    }

    #[test]
    fn block_sizes_at_least_k() {
        let ds = Dataset::from_fn(31, 4, |i, j| ((i * 13 + j * 5) % 7) as u32);
        for k in [2, 3, 5] {
            let p = mondrian(&ds, k).unwrap();
            assert!(p.min_block_size().unwrap() >= k, "k = {k}");
            let total: usize = p.blocks().iter().map(Vec::len).sum();
            assert_eq!(total, 31);
        }
    }

    #[test]
    fn skewed_values_still_split() {
        // 9 copies of value 0 and 3 of value 1: median is 0; strict < cut
        // yields an empty left, so the <= fallback must fire.
        let ds = Dataset::from_fn(12, 1, |i, _| u32::from(i >= 9));
        let p = mondrian(&ds, 3).unwrap();
        assert_eq!(p.n_blocks(), 2);
        assert_eq!(p.anonymization_cost(&ds), 0);
    }

    #[test]
    fn bad_k() {
        let ds = Dataset::from_fn(3, 1, |i, _| i as u32);
        assert!(mondrian(&ds, 0).is_err());
        assert!(mondrian(&ds, 4).is_err());
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        let ds = Dataset::from_fn(31, 4, |i, j| ((i * 13 + j * 5) % 7) as u32);
        let a = mondrian(&ds, 3).unwrap();
        let b = try_mondrian_governed(&ds, 3, &Budget::unlimited()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn governed_cancellation_trips() {
        let ds = Dataset::from_fn(31, 4, |i, j| ((i * 13 + j * 5) % 7) as u32);
        let budget = Budget::unlimited();
        budget.cancel();
        assert!(try_mondrian_governed(&ds, 3, &budget).is_err());
    }
}
