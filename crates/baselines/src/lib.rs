//! # kanon-baselines
//!
//! Baseline k-anonymization partitioners to contrast with the paper's
//! greedy algorithms (experiment E8). Each baseline produces a
//! [`kanon_core::Partition`] with all blocks of size ≥ k; the shared
//! Corollary 4.1 rounding ([`kanon_core::rounding`]) then prices every
//! method with the same suppression-cost objective, so comparisons are
//! apples-to-apples.
//!
//! * [`random_partition`] — shuffle and chunk: the "no algorithm" floor;
//! * [`knn_greedy`] — seed a group, absorb the k−1 nearest unassigned rows
//!   (the classic clustering heuristic k-anonymizers are built on);
//! * [`agglomerative`] — bottom-up merging by cheapest `ANON` delta;
//! * [`mondrian`] — top-down median splits in the style of LeFevre et al.'s
//!   Mondrian (published after this paper; included as the contemporary
//!   comparator), treating dictionary codes as ordered values;
//! * [`forest`] — the k-forest construction from the follow-up
//!   approximation literature, i.e. the direction in which the paper's §5
//!   open question was resolved.
//!
//! The crate also hosts the [`ladder`] module: a resource-governed
//! degradation ladder that tries the paper's algorithms best-guarantee
//! first (exhaustive greedy → center greedy → agglomerative) and falls one
//! rung whenever a [`kanon_core::govern::Budget`] slice trips, so a
//! deadline produces the best answer affordable instead of an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A module and its primary function intentionally share a name (`uniform`,
// `mondrian`, ...): the module is the namespace, the function the API.
#![allow(rustdoc::broken_intra_doc_links)]

pub mod agglomerative;
pub mod forest;
pub mod knn;
pub mod ladder;
pub mod mondrian;
pub mod random;

pub use agglomerative::{
    agglomerative, agglomerative_with_cache, try_agglomerative_governed,
    try_agglomerative_governed_with_cache,
};
pub use forest::forest;
pub use knn::{
    knn_greedy, knn_greedy_with_cache, try_knn_greedy_governed, try_knn_greedy_governed_with_cache,
};
pub use ladder::{run_ladder, LadderConfig, RunReport, Rung, RungOutcome, RungReport};
pub use mondrian::{mondrian, try_mondrian_governed};
pub use random::random_partition;

#[cfg(test)]
mod tests {
    use kanon_core::rounding::suppressor_for_partition;
    use kanon_core::Dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Every baseline yields a feasible k-anonymization end to end.
    #[test]
    fn all_baselines_round_to_k_anonymous_tables() {
        let mut rng = StdRng::seed_from_u64(99);
        let ds = Dataset::from_fn(23, 4, |i, j| ((i * 31 + j * 7) % 5) as u32);
        let k = 3;
        let partitions = vec![
            super::random_partition(&mut rng, ds.n_rows(), k).unwrap(),
            super::knn_greedy(&ds, k).unwrap(),
            super::agglomerative(&ds, k).unwrap(),
            super::mondrian(&ds, k).unwrap(),
        ];
        for p in partitions {
            assert!(p.min_block_size().unwrap() >= k);
            let s = suppressor_for_partition(&ds, &p).unwrap();
            let table = s.apply(&ds).unwrap();
            assert!(table.is_k_anonymous(k));
        }
    }
}
