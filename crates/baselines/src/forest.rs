//! The k-forest partitioner — the direction in which the paper's open
//! question was later resolved.
//!
//! §5 of Meyerson–Williams asks: "Can an approximation algorithm be found
//! whose performance ratio is independent of k?" Follow-up work (Aggarwal,
//! Feder, Kenthapadi, Motwani, Panigrahy, Thomas & Zhu, *Approximation
//! algorithms for k-anonymity*, 2005) answered with an `O(k)`-approximation
//! built on a minimum-style **forest with components of size ≥ k**. This
//! module implements that construction as a comparator (experiment E16
//! measures how its empirical ratio scales with `k` next to the paper's
//! center greedy):
//!
//! 1. start with singleton components; while any component has fewer than
//!    `k` rows, join it to another component via its cheapest outgoing
//!    Hamming edge (the forest's edge cost is lower-bounded by each row's
//!    nearest-neighbour distances, which also lower-bound OPT);
//! 2. decompose each resulting tree into parts of size `k..2k−1` by
//!    accumulating subtrees in post-order, so parts stay local in the tree
//!    and therefore cheap.

use kanon_core::error::{Error, Result};
use kanon_core::metric::DistanceMatrix;
use kanon_core::{Dataset, Partition};

/// Union-find over row indices.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Tuning knobs for [`forest`].
#[derive(Clone, Debug)]
pub struct ForestConfig {
    /// Row guard — the algorithm stores an `n × n` distance matrix.
    pub max_rows: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { max_rows: 8_000 }
    }
}

/// Builds a partition via the k-forest construction.
///
/// ```
/// use kanon_core::Dataset;
/// use kanon_baselines::forest::{forest, ForestConfig};
/// let ds = Dataset::from_rows(vec![
///     vec![0, 0], vec![0, 1], vec![9, 9], vec![9, 8],
/// ]).unwrap();
/// let p = forest(&ds, 2, &ForestConfig::default()).unwrap();
/// assert_eq!(p.anonymization_cost(&ds), 4); // within-cluster pairs
/// ```
///
/// # Errors
/// Standard `k` validation errors; [`Error::InstanceTooLarge`] above the
/// row guard.
pub fn forest(ds: &Dataset, k: usize, config: &ForestConfig) -> Result<Partition> {
    ds.check_k(k)?;
    let n = ds.n_rows();
    if n > config.max_rows {
        return Err(Error::InstanceTooLarge {
            solver: "forest",
            limit: format!("n = {n} exceeds max_rows = {}", config.max_rows),
        });
    }
    if k == 1 {
        let blocks: Vec<Vec<u32>> = (0..n as u32).map(|r| vec![r]).collect();
        return Partition::new(blocks, n, 1);
    }

    let dm = DistanceMatrix::build(ds);
    let mut dsu = Dsu::new(n);
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Phase 1: grow components to size >= k along cheapest outgoing edges.
    loop {
        // The smallest undersized component's root, if any.
        let mut target: Option<usize> = None;
        for v in 0..n {
            let root = dsu.find(v);
            if dsu.size[root] < k {
                let better = match target {
                    None => true,
                    Some(t) => dsu.size[root] < dsu.size[t],
                };
                if better {
                    target = Some(root);
                }
            }
        }
        let Some(root) = target else { break };

        // Cheapest edge leaving this component.
        let mut best: Option<(u32, usize, usize)> = None;
        for u in 0..n {
            if dsu.find(u) != root {
                continue;
            }
            for v in 0..n {
                if dsu.find(v) == root {
                    continue;
                }
                let d = dm.get(u, v);
                let better = match best {
                    None => true,
                    Some((bd, _, _)) => d < bd,
                };
                if better {
                    best = Some((d, u, v));
                }
            }
        }
        let (_, u, v) = best.expect("k <= n guarantees another component exists");
        dsu.union(u, v);
        adjacency[u].push(v);
        adjacency[v].push(u);
    }

    // Phase 2: decompose each component's tree into parts of size k..2k-1.
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Iterative post-order over the tree containing `start`.
        let mut leftover = decompose(start, &adjacency, &mut visited, k, &mut blocks);
        if !leftover.is_empty() {
            // Fewer than k roots remain; fold them into the last emitted
            // part (every component has >= k rows, so one exists). The
            // resulting block may exceed 2k-1; the split_large pass below
            // restores the cap without increasing cost (§4.1).
            match blocks.pop() {
                Some(mut last) => {
                    last.append(&mut leftover);
                    blocks.push(last);
                }
                None => blocks.push(leftover),
            }
        }
    }
    let blocks_u32: Vec<Vec<u32>> = blocks
        .into_iter()
        .map(|b| b.into_iter().map(|r| r as u32).collect())
        .collect();
    let partition = Partition::new_unchecked(blocks_u32, n).split_large(k);
    // Re-validate with k to surface any internal mistake loudly.
    Partition::new(partition.blocks().to_vec(), n, k)
}

/// Post-order accumulation: emits parts of size `k..=2k−1` into `blocks`,
/// returns the `< k` leftover bubble for the caller.
fn decompose(
    root: usize,
    adjacency: &[Vec<usize>],
    visited: &mut [bool],
    k: usize,
    blocks: &mut Vec<Vec<usize>>,
) -> Vec<usize> {
    // Iterative DFS with explicit post-order accumulation.
    struct Frame {
        node: usize,
        child_iter: usize,
        acc: Vec<usize>,
    }
    visited[root] = true;
    let mut stack = vec![Frame {
        node: root,
        child_iter: 0,
        acc: vec![root],
    }];
    loop {
        let top = stack.len() - 1;
        let node = stack[top].node;
        let start = stack[top].child_iter;
        let next_child = adjacency[node][start..]
            .iter()
            .position(|&c| !visited[c])
            .map(|off| start + off);
        match next_child {
            Some(pos) => {
                stack[top].child_iter = pos + 1;
                let child = adjacency[node][pos];
                visited[child] = true;
                stack.push(Frame {
                    node: child,
                    child_iter: 0,
                    acc: vec![child],
                });
            }
            None => {
                // Node finished: bubble its accumulator to the parent,
                // cutting a part whenever the bubble reaches k.
                let frame = stack.pop().expect("stack non-empty");
                let mut acc = frame.acc;
                if acc.len() >= k {
                    blocks.push(std::mem::take(&mut acc));
                }
                match stack.last_mut() {
                    Some(parent) => {
                        parent.acc.extend(acc);
                        if parent.acc.len() >= k {
                            blocks.push(std::mem::take(&mut parent.acc));
                            // Parent node itself was already emitted inside
                            // that part; keep its accumulator empty but
                            // remember the node is gone. (The node id stays
                            // in exactly one part because acc sets are
                            // disjoint by construction.)
                        }
                    }
                    None => return acc,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::exact::{subset_dp, SubsetDpConfig};
    use proptest::prelude::*;

    #[test]
    fn pairs_up_obvious_clusters() {
        let ds = Dataset::from_rows(vec![vec![0, 0], vec![0, 1], vec![9, 9], vec![9, 8]]).unwrap();
        let p = forest(&ds, 2, &ForestConfig::default()).unwrap();
        assert_eq!(p.anonymization_cost(&ds), 4);
    }

    #[test]
    fn k1_is_singletons() {
        let ds = Dataset::from_fn(5, 2, |i, _| i as u32);
        let p = forest(&ds, 1, &ForestConfig::default()).unwrap();
        assert_eq!(p.n_blocks(), 5);
        assert_eq!(p.anonymization_cost(&ds), 0);
    }

    #[test]
    fn k_equals_n() {
        let ds = Dataset::from_fn(4, 2, |i, _| i as u32);
        let p = forest(&ds, 4, &ForestConfig::default()).unwrap();
        assert_eq!(p.n_blocks(), 1);
    }

    #[test]
    fn sizes_capped_at_2k_minus_1() {
        let ds = Dataset::from_fn(23, 3, |i, j| ((i * 7 + j) % 5) as u32);
        for k in [2usize, 3, 4] {
            let p = forest(&ds, k, &ForestConfig::default()).unwrap();
            for b in p.blocks() {
                assert!(b.len() >= k && b.len() < 2 * k, "k={k} size={}", b.len());
            }
            let total: usize = p.blocks().iter().map(Vec::len).sum();
            assert_eq!(total, 23);
        }
    }

    #[test]
    fn guard_and_k_validation() {
        let ds = Dataset::from_fn(5, 1, |i, _| i as u32);
        assert!(forest(&ds, 0, &ForestConfig::default()).is_err());
        assert!(forest(&ds, 6, &ForestConfig::default()).is_err());
        let small_guard = ForestConfig { max_rows: 3 };
        assert!(matches!(
            forest(&ds, 2, &small_guard),
            Err(Error::InstanceTooLarge { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Always feasible, never beats the exact optimum, and never worse
        /// than suppressing every non-constant column.
        #[test]
        fn sandwiched_between_opt_and_trivial(
            flat in proptest::collection::vec(0u32..4, 10 * 3),
            k in 2usize..4,
        ) {
            let ds = Dataset::from_flat(10, 3, flat).unwrap();
            let p = forest(&ds, k, &ForestConfig::default()).unwrap();
            prop_assert!(p.min_block_size().unwrap() >= k);
            let cost = p.anonymization_cost(&ds);
            let opt = subset_dp(&ds, k, &SubsetDpConfig::default()).unwrap().cost;
            prop_assert!(cost >= opt);
            let all: Vec<usize> = (0..10).collect();
            let trivial = kanon_core::diameter::anon_cost(&ds, &all);
            prop_assert!(cost <= trivial);
        }
    }
}
