//! Nearest-neighbour greedy grouping.
//!
//! While at least `2k` rows remain unassigned: take the lowest-indexed
//! unassigned row as a seed and group it with its `k − 1` nearest
//! unassigned rows (Hamming distance). The final `k..2k−1` rows form the
//! last block. This is the workhorse heuristic most practical
//! k-anonymizers refine; `O(n²·m)` (dominated by the distance-cache build —
//! the grouping rounds themselves are `O(n² log n)` cache lookups).

use kanon_core::error::{Error, Result};
use kanon_core::govern::Budget;
use kanon_core::{Dataset, PairwiseDistances, Partition};

/// Builds a partition by greedy nearest-neighbour grouping.
///
/// # Errors
/// Standard `k` validation errors.
pub fn knn_greedy(ds: &Dataset, k: usize) -> Result<Partition> {
    try_knn_greedy_governed(ds, k, &Budget::unlimited())
}

/// [`knn_greedy`] under a [`Budget`]: the distance-cache build and the
/// grouping rounds poll the budget at bounded intervals.
///
/// # Errors
/// As [`knn_greedy`]; additionally [`kanon_core::Error::BudgetExceeded`]
/// when the budget trips.
pub fn try_knn_greedy_governed(ds: &Dataset, k: usize, budget: &Budget) -> Result<Partition> {
    ds.check_k(k)?;
    budget.check()?;
    let cache = PairwiseDistances::try_build_governed(ds, Some(1), budget)?;
    try_knn_greedy_governed_with_cache(ds, k, &cache, budget)
}

/// [`knn_greedy`] over a caller-supplied distance cache.
///
/// # Errors
/// As [`knn_greedy`]; additionally [`Error::InvalidPartition`] if the cache
/// was built for a different row count.
pub fn knn_greedy_with_cache(
    ds: &Dataset,
    k: usize,
    cache: &PairwiseDistances,
) -> Result<Partition> {
    try_knn_greedy_governed_with_cache(ds, k, cache, &Budget::unlimited())
}

/// [`knn_greedy_with_cache`] under a [`Budget`], polled once per distance
/// lookup in each grouping round.
///
/// # Errors
/// As [`knn_greedy_with_cache`]; additionally
/// [`kanon_core::Error::BudgetExceeded`] when the budget trips.
pub fn try_knn_greedy_governed_with_cache(
    ds: &Dataset,
    k: usize,
    cache: &PairwiseDistances,
    budget: &Budget,
) -> Result<Partition> {
    ds.check_k(k)?;
    budget.check()?;
    let n = ds.n_rows();
    if cache.n() != n {
        return Err(Error::InvalidPartition(format!(
            "distance cache covers {} rows but the dataset has {n}",
            cache.n()
        )));
    }
    let mut unassigned: Vec<u32> = (0..n as u32).collect();
    let mut blocks: Vec<Vec<u32>> = Vec::new();
    let mut ticker = budget.ticker();

    while unassigned.len() >= 2 * k {
        let seed = unassigned[0];
        // Distances from the seed to every other unassigned row.
        let mut rest = Vec::with_capacity(unassigned.len() - 1);
        for &r in &unassigned[1..] {
            ticker.tick()?;
            rest.push((cache.get(seed as usize, r as usize), r));
        }
        rest.sort_unstable();
        let mut block = vec![seed];
        block.extend(rest.iter().take(k - 1).map(|&(_, r)| r));
        // Remove block members from the pool.
        let member_set: std::collections::HashSet<u32> = block.iter().copied().collect();
        unassigned.retain(|r| !member_set.contains(r));
        blocks.push(block);
    }
    if !unassigned.is_empty() {
        blocks.push(unassigned);
    }
    Partition::new(blocks, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_duplicates_together() {
        let ds = Dataset::from_rows(vec![vec![0, 0], vec![9, 9], vec![0, 0], vec![9, 9]]).unwrap();
        let p = knn_greedy(&ds, 2).unwrap();
        assert_eq!(p.anonymization_cost(&ds), 0);
    }

    #[test]
    fn remainder_forms_final_block() {
        let ds = Dataset::from_fn(7, 2, |i, _| i as u32);
        let p = knn_greedy(&ds, 3).unwrap();
        let mut sizes: Vec<usize> = p.blocks().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 4]);
    }

    #[test]
    fn k_equals_n() {
        let ds = Dataset::from_fn(4, 2, |i, _| i as u32);
        let p = knn_greedy(&ds, 4).unwrap();
        assert_eq!(p.n_blocks(), 1);
    }

    #[test]
    fn shared_cache_matches_internal_build() {
        let ds = Dataset::from_fn(11, 3, |i, j| ((i * 7 + j) % 5) as u32);
        let cache = PairwiseDistances::build(&ds);
        let a = knn_greedy(&ds, 3).unwrap();
        let b = knn_greedy_with_cache(&ds, 3, &cache).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mismatched_cache_rejected() {
        let ds = Dataset::from_fn(6, 2, |i, _| i as u32);
        let other = Dataset::from_fn(5, 2, |i, _| i as u32);
        let cache = PairwiseDistances::build(&other);
        assert!(knn_greedy_with_cache(&ds, 2, &cache).is_err());
    }

    #[test]
    fn bad_k() {
        let ds = Dataset::from_fn(3, 2, |i, _| i as u32);
        assert!(knn_greedy(&ds, 0).is_err());
        assert!(knn_greedy(&ds, 4).is_err());
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        let ds = Dataset::from_fn(19, 3, |i, j| ((i * 7 + j * 5) % 6) as u32);
        let a = knn_greedy(&ds, 3).unwrap();
        let b = try_knn_greedy_governed(&ds, 3, &Budget::unlimited()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn governed_cancellation_trips() {
        let ds = Dataset::from_fn(19, 3, |i, j| ((i * 7 + j * 5) % 6) as u32);
        let budget = Budget::unlimited();
        budget.cancel();
        let err = try_knn_greedy_governed(&ds, 3, &budget).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn beats_random_on_clustered_data() {
        // Two tight clusters; knn should pair within clusters.
        let ds = Dataset::from_rows(vec![
            vec![0, 0, 0],
            vec![9, 9, 9],
            vec![0, 0, 1],
            vec![9, 9, 8],
        ])
        .unwrap();
        let p = knn_greedy(&ds, 2).unwrap();
        // Each within-cluster pair suppresses 1 column in 2 rows.
        assert_eq!(p.anonymization_cost(&ds), 4);
    }
}
