//! Nearest-neighbour greedy grouping.
//!
//! While at least `2k` rows remain unassigned: take the lowest-indexed
//! unassigned row as a seed and group it with its `k − 1` nearest
//! unassigned rows (Hamming distance). The final `k..2k−1` rows form the
//! last block. This is the workhorse heuristic most practical
//! k-anonymizers refine; `O(n²·m)`.

use kanon_core::error::Result;
use kanon_core::metric::hamming;
use kanon_core::{Dataset, Partition};

/// Builds a partition by greedy nearest-neighbour grouping.
///
/// # Errors
/// Standard `k` validation errors.
pub fn knn_greedy(ds: &Dataset, k: usize) -> Result<Partition> {
    ds.check_k(k)?;
    let n = ds.n_rows();
    let mut unassigned: Vec<u32> = (0..n as u32).collect();
    let mut blocks: Vec<Vec<u32>> = Vec::new();

    while unassigned.len() >= 2 * k {
        let seed = unassigned[0];
        let seed_row = ds.row(seed as usize);
        // Distances from the seed to every other unassigned row.
        let mut rest: Vec<(usize, u32)> = unassigned[1..]
            .iter()
            .map(|&r| (hamming(seed_row, ds.row(r as usize)), r))
            .collect();
        rest.sort_unstable();
        let mut block = vec![seed];
        block.extend(rest.iter().take(k - 1).map(|&(_, r)| r));
        // Remove block members from the pool.
        let member_set: std::collections::HashSet<u32> = block.iter().copied().collect();
        unassigned.retain(|r| !member_set.contains(r));
        blocks.push(block);
    }
    if !unassigned.is_empty() {
        blocks.push(unassigned);
    }
    Partition::new(blocks, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_duplicates_together() {
        let ds = Dataset::from_rows(vec![vec![0, 0], vec![9, 9], vec![0, 0], vec![9, 9]]).unwrap();
        let p = knn_greedy(&ds, 2).unwrap();
        assert_eq!(p.anonymization_cost(&ds), 0);
    }

    #[test]
    fn remainder_forms_final_block() {
        let ds = Dataset::from_fn(7, 2, |i, _| i as u32);
        let p = knn_greedy(&ds, 3).unwrap();
        let mut sizes: Vec<usize> = p.blocks().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 4]);
    }

    #[test]
    fn k_equals_n() {
        let ds = Dataset::from_fn(4, 2, |i, _| i as u32);
        let p = knn_greedy(&ds, 4).unwrap();
        assert_eq!(p.n_blocks(), 1);
    }

    #[test]
    fn bad_k() {
        let ds = Dataset::from_fn(3, 2, |i, _| i as u32);
        assert!(knn_greedy(&ds, 0).is_err());
        assert!(knn_greedy(&ds, 4).is_err());
    }

    #[test]
    fn beats_random_on_clustered_data() {
        // Two tight clusters; knn should pair within clusters.
        let ds = Dataset::from_rows(vec![
            vec![0, 0, 0],
            vec![9, 9, 9],
            vec![0, 0, 1],
            vec![9, 9, 8],
        ])
        .unwrap();
        let p = knn_greedy(&ds, 2).unwrap();
        // Each within-cluster pair suppresses 1 column in 2 rows.
        assert_eq!(p.anonymization_cost(&ds), 4);
    }
}
