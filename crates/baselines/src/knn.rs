//! Nearest-neighbour greedy grouping.
//!
//! While at least `2k` rows remain unassigned: take the lowest-indexed
//! unassigned row as a seed and group it with its `k − 1` nearest
//! unassigned rows (Hamming distance). The final `k..2k−1` rows form the
//! last block. This is the workhorse heuristic most practical
//! k-anonymizers refine; `O(n²·m)` (dominated by the distance-cache build —
//! the grouping rounds themselves are `O(n² log n)` cache lookups).

use kanon_core::error::{Error, Result};
use kanon_core::{Dataset, PairwiseDistances, Partition};

/// Builds a partition by greedy nearest-neighbour grouping.
///
/// # Errors
/// Standard `k` validation errors.
pub fn knn_greedy(ds: &Dataset, k: usize) -> Result<Partition> {
    ds.check_k(k)?;
    let cache = PairwiseDistances::build(ds);
    knn_greedy_with_cache(ds, k, &cache)
}

/// [`knn_greedy`] over a caller-supplied distance cache.
///
/// # Errors
/// As [`knn_greedy`]; additionally [`Error::InvalidPartition`] if the cache
/// was built for a different row count.
pub fn knn_greedy_with_cache(
    ds: &Dataset,
    k: usize,
    cache: &PairwiseDistances,
) -> Result<Partition> {
    ds.check_k(k)?;
    let n = ds.n_rows();
    if cache.n() != n {
        return Err(Error::InvalidPartition(format!(
            "distance cache covers {} rows but the dataset has {n}",
            cache.n()
        )));
    }
    let mut unassigned: Vec<u32> = (0..n as u32).collect();
    let mut blocks: Vec<Vec<u32>> = Vec::new();

    while unassigned.len() >= 2 * k {
        let seed = unassigned[0];
        // Distances from the seed to every other unassigned row.
        let mut rest: Vec<(u32, u32)> = unassigned[1..]
            .iter()
            .map(|&r| (cache.get(seed as usize, r as usize), r))
            .collect();
        rest.sort_unstable();
        let mut block = vec![seed];
        block.extend(rest.iter().take(k - 1).map(|&(_, r)| r));
        // Remove block members from the pool.
        let member_set: std::collections::HashSet<u32> = block.iter().copied().collect();
        unassigned.retain(|r| !member_set.contains(r));
        blocks.push(block);
    }
    if !unassigned.is_empty() {
        blocks.push(unassigned);
    }
    Partition::new(blocks, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_duplicates_together() {
        let ds = Dataset::from_rows(vec![vec![0, 0], vec![9, 9], vec![0, 0], vec![9, 9]]).unwrap();
        let p = knn_greedy(&ds, 2).unwrap();
        assert_eq!(p.anonymization_cost(&ds), 0);
    }

    #[test]
    fn remainder_forms_final_block() {
        let ds = Dataset::from_fn(7, 2, |i, _| i as u32);
        let p = knn_greedy(&ds, 3).unwrap();
        let mut sizes: Vec<usize> = p.blocks().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 4]);
    }

    #[test]
    fn k_equals_n() {
        let ds = Dataset::from_fn(4, 2, |i, _| i as u32);
        let p = knn_greedy(&ds, 4).unwrap();
        assert_eq!(p.n_blocks(), 1);
    }

    #[test]
    fn shared_cache_matches_internal_build() {
        let ds = Dataset::from_fn(11, 3, |i, j| ((i * 7 + j) % 5) as u32);
        let cache = PairwiseDistances::build(&ds);
        let a = knn_greedy(&ds, 3).unwrap();
        let b = knn_greedy_with_cache(&ds, 3, &cache).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mismatched_cache_rejected() {
        let ds = Dataset::from_fn(6, 2, |i, _| i as u32);
        let other = Dataset::from_fn(5, 2, |i, _| i as u32);
        let cache = PairwiseDistances::build(&other);
        assert!(knn_greedy_with_cache(&ds, 2, &cache).is_err());
    }

    #[test]
    fn bad_k() {
        let ds = Dataset::from_fn(3, 2, |i, _| i as u32);
        assert!(knn_greedy(&ds, 0).is_err());
        assert!(knn_greedy(&ds, 4).is_err());
    }

    #[test]
    fn beats_random_on_clustered_data() {
        // Two tight clusters; knn should pair within clusters.
        let ds = Dataset::from_rows(vec![
            vec![0, 0, 0],
            vec![9, 9, 9],
            vec![0, 0, 1],
            vec![9, 9, 8],
        ])
        .unwrap();
        let p = knn_greedy(&ds, 2).unwrap();
        // Each within-cluster pair suppresses 1 column in 2 rows.
        assert_eq!(p.anonymization_cost(&ds), 4);
    }
}
