//! The floor baseline: shuffle rows, chunk into k-groups.

use kanon_core::error::Result;
use kanon_core::Partition;
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random feasible partition: rows shuffled, cut into blocks of
/// `k` (the final block absorbs the remainder, size `k..2k−1`).
///
/// # Errors
/// [`kanon_core::Error::KZero`] / [`kanon_core::Error::KExceedsRows`]-style
/// partition validation errors when `k` is 0 or exceeds `n`.
pub fn random_partition(rng: &mut impl Rng, n: usize, k: usize) -> Result<Partition> {
    if k == 0 {
        return Err(kanon_core::Error::KZero);
    }
    if k > n {
        return Err(kanon_core::Error::KExceedsRows { k, n });
    }
    let mut rows: Vec<u32> = (0..n as u32).collect();
    rows.shuffle(rng);
    let mut blocks: Vec<Vec<u32>> = Vec::with_capacity(n / k);
    let mut rest: &[u32] = &rows;
    while rest.len() >= 2 * k {
        let (head, tail) = rest.split_at(k);
        blocks.push(head.to_vec());
        rest = tail;
    }
    blocks.push(rest.to_vec());
    Partition::new(blocks, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_sizes_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, k) in [(10, 3), (9, 3), (11, 3), (4, 4), (7, 2), (1, 1)] {
            let p = random_partition(&mut rng, n, k).unwrap();
            for b in p.blocks() {
                assert!(
                    b.len() >= k && b.len() < 2 * k,
                    "n={n} k={k} got {}",
                    b.len()
                );
            }
            let total: usize = p.blocks().iter().map(Vec::len).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(random_partition(&mut rng, 5, 0).is_err());
        assert!(random_partition(&mut rng, 5, 6).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_partition(&mut StdRng::seed_from_u64(3), 12, 3).unwrap();
        let b = random_partition(&mut StdRng::seed_from_u64(3), 12, 3).unwrap();
        assert_eq!(a.blocks(), b.blocks());
    }
}
