//! Hostile-client tests against a live server over raw sockets: malformed
//! request lines, oversized heads, unsupported transfer encodings,
//! oversized and short bodies, and clients that vanish mid-request. The
//! server must answer the documented `4xx` (or nothing, for a vanished
//! peer) and keep serving afterwards — proven by pushing more requests
//! through than it has handler threads, which would hang if any handler
//! leaked or died.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use kanon_service::{Server, ServiceConfig};

fn small_server() -> Server {
    Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        http_threads: 2,
        max_head_bytes: 512,
        max_body_bytes: 2048,
        ..ServiceConfig::default()
    })
    .expect("server starts")
}

#[test]
fn malformed_requests_get_4xx_and_the_server_survives() {
    let server = small_server();
    let addr = server.addr();

    let cases: &[(&[u8], u16)] = &[
        (b"COMPLETE GARBAGE\r\n\r\n", 400),
        (b"GET noslash HTTP/1.1\r\n\r\n", 400),
        (b"GET / SMTP/1.0\r\n\r\n", 400),
        (b"GET /healthz HTTP/1.1\r\nbroken-header-no-colon\r\n\r\n", 400),
        (
            b"POST /v1/anonymize?k=2 HTTP/1.1\r\nContent-Length: over9000\r\n\r\n",
            400,
        ),
        (
            b"POST /v1/anonymize?k=2 HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
            400,
        ),
        (
            b"POST /v1/anonymize?k=2 HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            413,
        ),
        (b"PUT /v1/anonymize?k=2 HTTP/1.1\r\nContent-Length: 0\r\n\r\n", 405),
        (b"GET /v1/jobs/abc HTTP/1.1\r\n\r\n", 400),
        (b"GET /made/up/path HTTP/1.1\r\n\r\n", 404),
    ];
    for (bytes, expected) in cases {
        let (status, _, body) = common::raw(addr, bytes).expect("an answer");
        assert_eq!(
            status,
            *expected,
            "for {:?}: {body}",
            String::from_utf8_lossy(bytes)
        );
        assert!(
            body.contains("\"error\""),
            "error body for {expected}: {body}"
        );
    }

    // An oversized head never even finishes parsing: feed a header that
    // keeps going past the limit.
    let mut endless = b"GET /healthz HTTP/1.1\r\nX-Pad: ".to_vec();
    endless.extend(std::iter::repeat_n(b'a', 4096));
    endless.extend_from_slice(b"\r\n\r\n");
    let (status, _, _) = common::raw(addr, &endless).expect("an answer");
    assert_eq!(status, 400);

    // The server is still fully alive: more sequential requests than it
    // has handler threads all succeed.
    for _ in 0..8 {
        let (status, _, body) = common::http(addr, "GET", "/healthz", &[]);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""));
    }
    server.shutdown();
}

#[test]
fn vanishing_clients_do_not_wedge_the_handler_pool() {
    let server = small_server();
    let addr = server.addr();

    // Disconnect mid-request-line, mid-headers, and mid-body, more times
    // than there are handler threads.
    for partial in [
        &b"GET /heal"[..],
        &b"GET /healthz HTTP/1.1\r\nHost: x"[..],
        &b"POST /v1/anonymize?k=2 HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-bit"[..],
    ] {
        for _ in 0..3 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(partial).expect("send partial");
            drop(stream);
        }
    }
    // A zero-byte connection (connect, immediately close).
    for _ in 0..3 {
        drop(TcpStream::connect(addr).expect("connect"));
    }

    // Every handler thread must still be answering.
    std::thread::sleep(Duration::from_millis(50));
    for _ in 0..6 {
        let (status, _, _) = common::http(addr, "GET", "/healthz", &[]);
        assert_eq!(status, 200);
    }

    // And the job path still works end to end.
    let csv = b"a,b\n1,x\n1,x\n2,y\n2,y\n";
    let (status, _, body) = common::http(addr, "POST", "/v1/anonymize?k=2&shard_size=4", csv);
    assert_eq!(status, 202, "{body}");
    let id = common::extract_number(&body, "\"id\":").expect("job id");
    let done = common::await_job(addr, id);
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    assert!(done.contains("\"k_anonymous\":true"), "{done}");
    server.shutdown();
}

#[test]
fn hostile_clients_cannot_corrupt_or_wedge_tables() {
    // Without a data directory the table endpoints are cleanly disabled.
    let server = small_server();
    let (status, _, body) = common::http(server.addr(), "GET", "/v1/tables/t", &[]);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("table serving is disabled"), "{body}");
    server.shutdown();

    let dir = std::env::temp_dir().join(format!("kanon-hostile-tables-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        http_threads: 2,
        max_body_bytes: 2048,
        data_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let seed = b"a,b\n1,x\n1,x\n2,y\n2,y\n1,x\n2,y\n";
    let (status, _, body) = common::http(addr, "PUT", "/v1/tables/t?k=2&shard_size=4", seed);
    assert_eq!(status, 201, "{body}");

    // The documented rejections, none of which may touch the table.
    let cases: &[(&str, &str, &[u8], u16)] = &[
        ("PUT", "/v1/tables/t?k=2", seed, 409),     // already exists
        ("PUT", "/v1/tables/..?k=2", seed, 400),    // traversal
        ("PUT", "/v1/tables/a%2Fb?k=2", seed, 400), // encoded slash
        ("PUT", "/v1/tables/bad?shard_size=8", seed, 400), // no k
        ("PUT", "/v1/tables/empty?k=2", &[], 400),  // empty body
        ("PATCH", "/v1/tables/t", &[], 405),        // bad method
        ("GET", "/v1/tables/t/ops", &[], 405),      // ops is POST-only
        ("GET", "/v1/tables/t/nope", &[], 404),     // no such action
        ("POST", "/v1/tables/ghost/ops", b"op,id,a,b\n", 404), // unknown table
        ("POST", "/v1/tables/t/ops", b"op,id,wrong\nx\n", 400), // bad ops header
        ("POST", "/v1/tables/t/ops?deadline_ms=0", b"x", 400), // bad budget param
    ];
    for (method, target, body, expected) in cases {
        let (status, _, resp) = common::http(addr, method, target, body);
        assert_eq!(status, *expected, "for {method} {target}: {resp}");
        assert!(resp.contains("\"error\""), "{resp}");
    }

    // An oversized ops batch bounces at the body limit.
    let (status, _, body) = common::raw(
        addr,
        b"POST /v1/tables/t/ops HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
    )
    .expect("an answer");
    assert_eq!(status, 413, "{body}");

    // A client that vanishes mid-ops-CSV leaves no trace: the batch was
    // never parsed, let alone applied.
    for _ in 0..3 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                b"POST /v1/tables/t/ops HTTP/1.1\r\nContent-Length: 500\r\n\r\nop,id,a,b\nins",
            )
            .expect("send partial");
        drop(stream);
    }
    std::thread::sleep(Duration::from_millis(50));

    // Nothing above moved the table: still ready, still at seq 0, and a
    // real batch still lands.
    let (status, _, status_json) = common::http(addr, "GET", "/v1/tables/t", &[]);
    assert_eq!(status, 200, "{status_json}");
    assert_eq!(common::extract_number(&status_json, "\"seq\":"), Some(0));
    let (status, _, body) = common::http(
        addr,
        "POST",
        "/v1/tables/t/ops",
        b"op,id,a,b\ninsert,,3,z\n",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"seq\":1"), "{body}");
    let (_, _, health) = common::http(addr, "GET", "/healthz", &[]);
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submissions_with_bad_parameters_are_rejected_before_admission() {
    let server = small_server();
    let addr = server.addr();

    for (target, expected) in [
        ("/v1/anonymize", 400),                          // no k
        ("/v1/anonymize?k=0", 400),                      // k must be >= 1
        ("/v1/anonymize?k=3&shard_size=4", 400),         // below 2k-1
        ("/v1/anonymize?k=2&strategy=spiral", 400),      // unknown strategy
        ("/v1/anonymize?k=2&max_memory_mb=999999", 400), // bigger than the pool
    ] {
        let (status, _, body) = common::http(addr, "POST", target, b"a\n1\n2\n");
        assert_eq!(status, expected, "for {target}: {body}");
    }
    // Empty body with no path=.
    let (status, _, body) = common::http(addr, "POST", "/v1/anonymize?k=2", &[]);
    assert_eq!(status, 400, "{body}");

    // Nothing was admitted: metrics show zero accepted jobs.
    let (status, _, page) = common::http(addr, "GET", "/metrics", &[]);
    assert_eq!(status, 200);
    assert!(page.contains("kanon_jobs_accepted_total 0"), "{page}");
    assert!(page.contains("kanon_jobs_rejected_total 0"), "{page}");
    server.shutdown();
}
