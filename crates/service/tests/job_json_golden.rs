//! Golden-file test pinning the JSON shape of `GET /v1/jobs/{id}` — same
//! style as the CLI's `json_golden`: timing fields are scrubbed to `0`,
//! everything else (key order included) must match `tests/golden/` byte
//! for byte. Regenerate with `UPDATE_GOLDEN=1`.

mod common;

use kanon_service::{Server, ServiceConfig};

/// Replaces every numeric value following `"key":` with `0` so wall-clock
/// noise cannot fail the comparison.
fn scrub_number(s: &str, key: &str) -> String {
    let marker = format!("\"{key}\":");
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find(&marker) {
        let after = i + marker.len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

fn normalize(s: &str) -> String {
    scrub_number(&scrub_number(s, "elapsed_ms"), "rows_per_sec")
}

fn assert_matches_golden(actual: &str, name: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    let actual = normalize(actual);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, format!("{actual}\n")).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden `{path}`: {e}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual,
        expected.trim_end_matches('\n'),
        "job JSON shape drifted from {name}; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}

/// Twelve rows over two tiny columns — the same deterministic table the
/// CLI pipeline golden uses, so the embedded report is reproducible.
const MEDIUM: &str = "a,b\n\
    x,1\ny,1\nx,1\ny,2\nx,2\ny,2\n\
    x,1\ny,1\nx,2\ny,2\nx,1\ny,1\n";

#[test]
fn completed_job_json_shape_is_stable() {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let (status, _, body) = common::http(
        addr,
        "POST",
        "/v1/anonymize?k=2&shard_size=5",
        MEDIUM.as_bytes(),
    );
    assert_eq!(status, 202, "{body}");
    let id = common::extract_number(&body, "\"id\":").expect("job id");
    assert_eq!(id, 1, "first job on a fresh server");

    let done = common::await_job(addr, id);
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    assert_matches_golden(&done, "job_completed.json");
    server.shutdown();
}

#[test]
fn error_and_not_found_bodies_are_stable() {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let (status, _, body) = common::http(addr, "GET", "/v1/jobs/7", &[]);
    assert_eq!(status, 404);
    assert_eq!(body, "{\"error\":\"unknown job 7\"}");

    // A failed job renders its state-specific keys: submit unparsable CSV.
    let (status, _, body) = common::http(
        addr,
        "POST",
        "/v1/anonymize?k=2",
        b"a,b\n1,2\nonly-one-field\n",
    );
    assert_eq!(status, 202, "{body}");
    let id = common::extract_number(&body, "\"id\":").expect("job id");
    let done = common::await_job(addr, id);
    assert_matches_golden(&done, "job_failed.json");
    server.shutdown();
}
