//! Raw-socket HTTP helpers shared by the service integration tests. The
//! tests deliberately speak TCP directly instead of going through any
//! client abstraction: the service's contract is bytes on a socket.

// Compiled once per integration-test binary; not every binary uses every
// helper.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP exchange. Returns `(status, head, body)`.
pub fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String, String) {
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut bytes = request.into_bytes();
    bytes.extend_from_slice(body);
    raw(addr, &bytes).expect("server closed the connection without answering")
}

/// Sends `bytes` verbatim and reads whatever comes back until the server
/// closes. `None` when the server answered nothing (e.g. the client side
/// looked like a vanished peer).
pub fn raw(addr: SocketAddr, bytes: &[u8]) -> Option<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(bytes).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    if response.is_empty() {
        return None;
    }
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a head/body separator");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    Some((status, head.to_string(), body.to_string()))
}

/// Polls `GET /v1/jobs/{id}` until the job reaches a terminal state;
/// returns the final body.
pub fn await_job(addr: SocketAddr, id: u64) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), &[]);
        assert_eq!(status, 200, "job poll failed: {body}");
        if body.contains("\"state\":\"completed\"") || body.contains("\"state\":\"failed\"") {
            return body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} never finished; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Extracts the unsigned integer following `prefix` in a JSON body.
pub fn extract_number(text: &str, prefix: &str) -> Option<u64> {
    let rest = &text[text.find(prefix)? + prefix.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
