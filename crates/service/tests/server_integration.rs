//! End-to-end service tests: a job's full lifecycle, admission control
//! under burst overload (queue and memory pool), and the in-process
//! closed-loop bench with exact counter reconciliation.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};

use kanon_service::{run_bench, BenchConfig, Server, ServiceConfig};

const CSV: &str = "age,zip,job\n34,90210,cook\n34,90210,cook\n35,90210,cook\n\
                   35,90211,nurse\n34,90211,nurse\n35,90211,nurse\n";

#[test]
fn a_job_runs_queued_to_completed_and_counters_agree() {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let (status, head, body) = common::http(
        addr,
        "POST",
        "/v1/anonymize?k=2&shard_size=8&quasi=age,zip",
        CSV.as_bytes(),
    );
    assert_eq!(status, 202, "{body}");
    assert!(head.contains("Location: /v1/jobs/1"), "{head}");
    let id = common::extract_number(&body, "\"id\":").expect("job id");

    let done = common::await_job(addr, id);
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    assert!(done.contains("\"k_anonymous\":true"), "{done}");
    assert!(done.contains("\"report\":{"), "{done}");
    assert!(done.contains("\"n_rows\":6"), "{done}");
    assert!(done.contains("\"n_cols\":2"), "{done}"); // quasi projection

    // Unknown jobs 404.
    let (status, _, _) = common::http(addr, "GET", "/v1/jobs/999", &[]);
    assert_eq!(status, 404);

    // The pool has fully reclaimed the job's lease.
    let (_, _, health) = common::http(addr, "GET", "/healthz", &[]);
    let available = common::extract_number(&health, "\"pool_available_bytes\":").unwrap();
    assert_eq!(available, ServiceConfig::default().pool_memory_bytes);

    // Counters: one accepted, one completed, nothing else.
    let (_, _, page) = common::http(addr, "GET", "/metrics", &[]);
    assert!(page.contains("kanon_jobs_accepted_total 1"), "{page}");
    assert!(page.contains("kanon_jobs_completed_total 1"), "{page}");
    assert!(page.contains("kanon_jobs_rejected_total 0"), "{page}");
    assert!(page.contains("kanon_jobs_failed_total 0"), "{page}");
    assert!(page.contains("kanon_shards_solved_total{solver="), "{page}");
    server.shutdown();
}

#[test]
fn a_private_job_re_verifies_the_constraint_and_measures_the_attack() {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // `job` is the sensitive column: it stays out of the quasi-identifier
    // and every released block must carry at least two distinct values.
    let (status, _, body) = common::http(
        addr,
        "POST",
        "/v1/anonymize?k=2&shard_size=8&privacy=l=2&sensitive=job",
        CSV.as_bytes(),
    );
    assert_eq!(status, 202, "{body}");
    let id = common::extract_number(&body, "\"id\":").expect("job id");

    let done = common::await_job(addr, id);
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    assert!(done.contains("\"k_anonymous\":true"), "{done}");
    assert!(done.contains("\"privacy_verified\":true"), "{done}");
    assert!(done.contains("\"privacy\":{\"spec\":\"l=2\""), "{done}");
    assert!(done.contains("\"sensitive\":\"job\""), "{done}");
    // The sensitive column is excluded, so the solver saw two columns.
    assert!(done.contains("\"n_cols\":2"), "{done}");
    // The measured attack ran and nobody was re-identified outright.
    assert!(done.contains("\"attack\":{"), "{done}");
    assert!(done.contains("\"unique_matches\":0"), "{done}");

    // A malformed spec or a model with no sensitive column never admits.
    for bad in [
        "/v1/anonymize?k=2&privacy=l=0&sensitive=job",
        "/v1/anonymize?k=2&privacy=l=2",
    ] {
        let (status, _, body) = common::http(addr, "POST", bad, CSV.as_bytes());
        assert_eq!(status, 400, "{body}");
    }
    server.shutdown();
}

#[test]
fn burst_overload_yields_clean_429s_that_reconcile_exactly() {
    // One worker, one queue slot: a 16-submission burst must mostly bounce.
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        http_threads: 8,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // A body big enough that one job occupies the worker for a while.
    let mut body = String::from("a,b\n");
    for i in 0..1000u32 {
        body.push_str(&format!("v{},w{}\n", i % 37, i % 53));
    }

    let accepted = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let ids = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..16 {
            let (body, accepted, rejected, ids) = (&body, &accepted, &rejected, &ids);
            scope.spawn(move || {
                let (status, head, resp) = common::http(
                    addr,
                    "POST",
                    "/v1/anonymize?k=3&shard_size=16",
                    body.as_bytes(),
                );
                match status {
                    202 => {
                        accepted.fetch_add(1, Ordering::Relaxed);
                        ids.lock()
                            .unwrap()
                            .push(common::extract_number(&resp, "\"id\":").unwrap());
                    }
                    429 => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        assert!(head.contains("Retry-After:"), "{head}");
                    }
                    other => panic!("burst got unexpected status {other}: {resp}"),
                }
            });
        }
    });
    let accepted = accepted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert_eq!(accepted + rejected, 16);
    assert!(rejected >= 1, "burst should overflow a depth-1 queue");

    // Every accepted job still completes (none are dropped post-accept).
    for id in ids.into_inner().unwrap() {
        let done = common::await_job(addr, id);
        assert!(done.contains("\"state\":\"completed\""), "{done}");
        assert!(done.contains("\"k_anonymous\":true"), "{done}");
    }

    // Exact reconciliation after the drain.
    let (_, _, page) = common::http(addr, "GET", "/metrics", &[]);
    assert!(
        page.contains(&format!("kanon_jobs_accepted_total {accepted}")),
        "{page}"
    );
    assert!(
        page.contains(&format!("kanon_jobs_rejected_total {rejected}")),
        "{page}"
    );
    assert!(
        page.contains(&format!("kanon_jobs_completed_total {accepted}")),
        "{page}"
    );
    assert!(page.contains("kanon_jobs_failed_total 0"), "{page}");
    server.shutdown();
}

#[test]
fn memory_pool_exhaustion_rejects_even_with_queue_room() {
    // Pool fits exactly one default-size job; the queue has plenty of
    // room, so any second concurrent submission must bounce off the pool.
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 8,
        pool_memory_bytes: 32 * 1024 * 1024,
        default_job_memory_bytes: 32 * 1024 * 1024,
        http_threads: 4,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let mut body = String::from("a,b\n");
    for i in 0..800u32 {
        body.push_str(&format!("v{},w{}\n", i % 31, i % 43));
    }

    let accepted = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (body, accepted, rejected) = (&body, &accepted, &rejected);
            scope.spawn(move || {
                let (status, head, resp) = common::http(
                    addr,
                    "POST",
                    "/v1/anonymize?k=3&shard_size=16",
                    body.as_bytes(),
                );
                match status {
                    202 => {
                        accepted.fetch_add(1, Ordering::Relaxed);
                    }
                    429 => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        assert!(head.contains("Retry-After:"), "{head}");
                        assert!(resp.contains("memory pool exhausted"), "{resp}");
                    }
                    other => panic!("unexpected status {other}: {resp}"),
                }
            });
        }
    });
    assert_eq!(
        accepted.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed),
        4
    );
    assert!(rejected.load(Ordering::Relaxed) >= 1);
    server.shutdown();
}

#[test]
fn in_process_bench_reconciles_and_writes_its_report() {
    let out = std::env::temp_dir().join(format!("bench-service-{}.json", std::process::id()));
    let report = run_bench(&BenchConfig {
        requests: 8,
        clients: 4,
        rows: 400,
        k: 3,
        shard_size: 16,
        server_workers: 2,
        queue_depth: 8,
        out_path: Some(out.to_str().unwrap().to_string()),
        ..BenchConfig::default()
    })
    .expect("bench runs");
    assert!(report.ok(), "{}", report.to_json());
    assert_eq!(report.completed, 8);
    assert_eq!(report.server_errors, 0);
    let written = std::fs::read_to_string(&out).expect("report file");
    assert!(written.contains("\"ok\":true"), "{written}");
    assert!(written.contains("\"p99_ms\":"), "{written}");
    std::fs::remove_file(&out).ok();
}
