//! The WAL fault-injection matrix, driven through the HTTP path: every
//! truncation point and every flipped byte of a served table's WAL, plus
//! snapshot corruption, each followed by a full server restart. The
//! contract mirrors the store-level `wal_faults` suite, observed from a
//! client's seat:
//!
//! - a torn tail recovers the longest whole prefix of acknowledged
//!   batches and the table serves it;
//! - interior corruption either recovers a shorter consistent prefix or
//!   quarantines the table — `503` with a structured error, `/healthz`
//!   degraded, `/readyz` refusing — while healthy tables keep serving;
//! - `DELETE` is the operator's way out of quarantine.

mod common;

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use kanon_service::{Server, ServiceConfig};
use kanon_store::RECORD_HEADER;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kanon-tbl-faults-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(data_dir: &Path) -> Server {
    Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        http_threads: 2,
        data_dir: Some(data_dir.to_path_buf()),
        ..ServiceConfig::default()
    })
    .expect("server starts")
}

/// Polls `/healthz` until the recovery pass has finished (whatever its
/// verdict); returns the final health body.
fn await_recovered(addr: SocketAddr) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, body) = common::http(addr, "GET", "/healthz", &[]);
        assert_eq!(status, 200, "liveness must hold during recovery: {body}");
        if body.contains("\"recovering\":false") {
            return body;
        }
        assert!(Instant::now() < deadline, "recovery never finished: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Copies a table directory, leaving the advisory lock behind (the
/// fixture process is still alive, so a copied lock would read as held).
fn copy_table(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_name() == kanon_store::LOCK_FILE {
            continue;
        }
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Byte offsets where each WAL record starts.
fn record_bounds(wal: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut at = 0usize;
    while at + RECORD_HEADER <= wal.len() {
        let len = u32::from_le_bytes(wal[at..at + 4].try_into().unwrap()) as usize;
        let end = at + RECORD_HEADER + len;
        assert!(end <= wal.len(), "fixture WAL is torn");
        bounds.push((at, end));
        at = end;
    }
    assert_eq!(at, wal.len());
    bounds
}

/// The fixture, built entirely over HTTP: a `frail` table with two
/// acknowledged ops batches past its snapshot, a pristine `good` table
/// beside it, and the release bytes after each batch prefix.
struct Fixture {
    dir: PathBuf,
    wal: Vec<u8>,
    /// `releases[i]` is the served release after `i` batches.
    releases: Vec<String>,
    good_release: String,
}

fn build_fixture(name: &str) -> Fixture {
    let dir = tmp(name);
    let server = start(&dir);
    let addr = server.addr();

    let mut seed = String::from("p,q\n");
    for i in 0..10u64 {
        seed.push_str(&format!("a{},b{}\n", i % 5, i % 3));
    }
    for table in ["frail", "good"] {
        let (status, _, body) = common::http(
            addr,
            "PUT",
            &format!("/v1/tables/{table}?k=2&shard_size=8"),
            seed.as_bytes(),
        );
        assert_eq!(status, 201, "{body}");
    }

    let mut releases = Vec::new();
    let (status, _, r0) = common::http(addr, "GET", "/v1/tables/frail/release", &[]);
    assert_eq!(status, 200);
    releases.push(r0);
    for batch in [
        "insert,,a9,b9\ninsert,,a9,b8\n",
        "delete,3,,\ninsert,,a7,b6\n",
    ] {
        let ops = format!("op,id,p,q\n{batch}");
        let (status, _, body) = common::http(addr, "POST", "/v1/tables/frail/ops", ops.as_bytes());
        assert_eq!(status, 200, "{body}");
        let (status, _, release) = common::http(addr, "GET", "/v1/tables/frail/release", &[]);
        assert_eq!(status, 200);
        releases.push(release);
    }
    let (status, _, good_release) = common::http(addr, "GET", "/v1/tables/good/release", &[]);
    assert_eq!(status, 200);
    server.shutdown();

    let wal = std::fs::read(dir.join("frail").join("delta.wal")).unwrap();
    Fixture {
        dir,
        wal,
        releases,
        good_release,
    }
}

/// Mounts a mutated copy of the fixture and reports what the service
/// makes of it: `Ok(seq)` when `frail` serves a recovered prefix,
/// `Err(health)` when it was quarantined.
fn mount_mutated(fixture: &Fixture, work: &Path, mutated_wal: &[u8]) -> Result<u64, String> {
    copy_table(&fixture.dir.join("frail"), &work.join("frail"));
    copy_table(&fixture.dir.join("good"), &work.join("good"));
    std::fs::write(work.join("frail").join("delta.wal"), mutated_wal).unwrap();

    let server = start(work);
    let addr = server.addr();
    let health = await_recovered(addr);

    // Whatever happened to `frail`, its healthy sibling keeps serving.
    let (status, _, good) = common::http(addr, "GET", "/v1/tables/good/release", &[]);
    assert_eq!(status, 200, "healthy table stopped serving: {good}");
    assert_eq!(good, fixture.good_release);

    let verdict = if health.contains("\"frail\"") {
        // Quarantined: the table answers 503 with a structured error and
        // readiness refuses, but liveness holds.
        assert!(health.contains("\"status\":\"degraded\""), "{health}");
        let (status, head, body) = common::http(addr, "GET", "/v1/tables/frail/release", &[]);
        assert_eq!(status, 503, "{body}");
        // Quarantine is not transient — no Retry-After; DELETE is the
        // only way out.
        assert!(!head.contains("Retry-After:"), "{head}");
        assert!(body.contains("\"error\":\"table quarantined\""), "{body}");
        assert!(body.contains("\"table\":\"frail\""), "{body}");
        let (status, _, ready) = common::http(addr, "GET", "/readyz", &[]);
        assert_eq!(status, 503, "{ready}");
        Err(health)
    } else {
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        let (status, _, status_json) = common::http(addr, "GET", "/v1/tables/frail", &[]);
        assert_eq!(status, 200, "{status_json}");
        let seq = common::extract_number(&status_json, "\"seq\":").unwrap();
        let (status, _, release) = common::http(addr, "GET", "/v1/tables/frail/release", &[]);
        assert_eq!(status, 200);
        assert_eq!(
            release, fixture.releases[seq as usize],
            "seq {seq}: served state is not that batch prefix"
        );
        Ok(seq)
    };
    server.shutdown();
    verdict
}

#[test]
fn truncation_at_every_byte_serves_the_acknowledged_prefix() {
    let fixture = build_fixture("truncate");
    let bounds = record_bounds(&fixture.wal);
    assert_eq!(bounds.len(), 2);
    let work = tmp("truncate-work");
    for cut in 0..=fixture.wal.len() {
        let complete = bounds.iter().filter(|(_, end)| *end <= cut).count() as u64;
        match mount_mutated(&fixture, &work, &fixture.wal[..cut]) {
            Ok(seq) => assert_eq!(
                seq, complete,
                "cut at {cut}: served {seq} batches, {complete} were whole"
            ),
            Err(health) => panic!("cut at {cut}: a torn tail must never quarantine: {health}"),
        }
    }
    let _ = std::fs::remove_dir_all(&fixture.dir);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn a_flipped_byte_quarantines_or_serves_a_shorter_prefix() {
    let fixture = build_fixture("flip");
    let bounds = record_bounds(&fixture.wal);
    let work = tmp("flip-work");
    let mut quarantines = 0usize;
    for pos in 0..fixture.wal.len() {
        for bit in [0x01u8, 0x80] {
            let mut bad = fixture.wal.clone();
            bad[pos] ^= bit;
            let record = bounds
                .iter()
                .position(|(s, e)| (*s..*e).contains(&pos))
                .unwrap() as u64;
            match mount_mutated(&fixture, &work, &bad) {
                // A flip in a length field can make the record look torn;
                // the corrupted batch itself must never be served.
                Ok(seq) => assert!(
                    seq <= record,
                    "flip at {pos} (record {record}): corrupted batch {seq} survived"
                ),
                Err(_) => quarantines += 1,
            }
        }
    }
    assert!(
        quarantines > 0,
        "CRC corruption never quarantined — the loud path is untested"
    );
    let _ = std::fs::remove_dir_all(&fixture.dir);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn a_corrupt_snapshot_quarantines_and_delete_clears_it() {
    let fixture = build_fixture("snap");
    let work = tmp("snap-work");
    copy_table(&fixture.dir.join("frail"), &work.join("frail"));
    copy_table(&fixture.dir.join("good"), &work.join("good"));
    let snap_path = work.join("frail").join("state.snap");
    let mut snap = std::fs::read(&snap_path).unwrap();
    let mid = snap.len() / 2;
    snap[mid] ^= 0x10;
    std::fs::write(&snap_path, &snap).unwrap();

    let server = start(&work);
    let addr = server.addr();
    let health = await_recovered(addr);
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(health.contains("\"quarantined\":[\"frail\"]"), "{health}");

    // Ops against the quarantined table are refused with the reason.
    let ops = "op,id,p,q\ninsert,,a1,b1\n";
    let (status, _, body) = common::http(addr, "POST", "/v1/tables/frail/ops", ops.as_bytes());
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"error\":\"table quarantined\""), "{body}");

    // The quarantine gauge is up; the healthy sibling still serves.
    let (_, _, page) = common::http(addr, "GET", "/metrics", &[]);
    assert!(
        page.contains("kanon_table_quarantined{table=\"frail\"} 1"),
        "{page}"
    );
    let (status, _, good) = common::http(addr, "GET", "/v1/tables/good/release", &[]);
    assert_eq!(status, 200);
    assert_eq!(good, fixture.good_release);

    // DELETE is the way out: the table (and the degradation) disappear.
    let (status, _, body) = common::http(addr, "DELETE", "/v1/tables/frail", &[]);
    assert_eq!(status, 200, "{body}");
    let (status, _, health) = common::http(addr, "GET", "/healthz", &[]);
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    let (status, _, _) = common::http(addr, "GET", "/readyz", &[]);
    assert_eq!(status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&fixture.dir);
    let _ = std::fs::remove_dir_all(&work);
}
