//! End-to-end durable-table tests over real sockets: the lifecycle of a
//! table, the differential guarantee observed through HTTP (ops-driven
//! releases are byte-identical to a batch pipeline run on the equivalent
//! final CSV), restart durability for acknowledged batches, and
//! concurrent writers racing the single-writer lock.

mod common;

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use kanon_pipeline::release::write_release;
use kanon_pipeline::{run_csv, PipelineConfig, ShardStrategy};
use kanon_service::{run_bench, BenchConfig, Server, ServiceConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kanon-table-svc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(data_dir: &std::path::Path) -> Server {
    Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        data_dir: Some(data_dir.to_path_buf()),
        ..ServiceConfig::default()
    })
    .expect("server starts")
}

/// Polls `/readyz` until the server reports ready (recovery finished,
/// nothing quarantined).
fn await_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, body) = common::http(addr, "GET", "/readyz", &[]);
        if status == 200 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server never became ready; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The batch pipeline's release for `table`, pinned to the serving
/// store's sharding (read back from its status JSON).
fn batch_release(table: &str, k: usize, status_json: &str) -> String {
    let shard_size = common::extract_number(status_json, "\"shard_size\":").unwrap() as usize;
    let n_buckets = common::extract_number(status_json, "\"n_buckets\":").unwrap() as usize;
    let config = PipelineConfig {
        shard_size,
        strategy: ShardStrategy::HashQuasi,
        n_buckets: Some(n_buckets),
        ..PipelineConfig::default()
    };
    let run = run_csv(table.as_bytes(), k, None, &config).unwrap();
    let mut buf = Vec::new();
    write_release(
        &run.dataset,
        &run.codec,
        &run.quasi,
        &run.anonymization.suppressor,
        &mut buf,
    )
    .unwrap();
    String::from_utf8(buf).unwrap()
}

fn row(i: u64) -> Vec<String> {
    vec![
        format!("a{}", i % 5),
        format!("z{}", i % 3),
        format!("j{}", i % 4),
    ]
}

fn csv_of(rows: &[(u64, Vec<String>)]) -> String {
    let mut s = String::from("age,zip,job\n");
    for (_, fields) in rows {
        s.push_str(&fields.join(","));
        s.push('\n');
    }
    s
}

#[test]
fn table_lifecycle_matches_the_batch_pipeline_through_http() {
    let dir = scratch("lifecycle");
    let server = start(&dir);
    let addr = server.addr();
    await_ready(addr);

    // Healthy empty registry: /healthz ok, nothing quarantined.
    let (status, _, health) = common::http(addr, "GET", "/healthz", &[]);
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"quarantined\":[]"), "{health}");

    // Shadow model: ids are assigned 0..n to the seed rows in order.
    let mut rows: Vec<(u64, Vec<String>)> = (0..20).map(|i| (i, row(i))).collect();
    let seed = csv_of(&rows);
    let (status, head, body) = common::http(
        addr,
        "PUT",
        "/v1/tables/people?k=2&shard_size=8",
        seed.as_bytes(),
    );
    assert_eq!(status, 201, "{body}");
    assert!(head.contains("Location: /v1/tables/people"), "{head}");
    assert!(body.contains("\"state\":\"ready\""), "{body}");
    assert!(body.contains("\"seq\":0"), "{body}");

    // Creating the same table again conflicts without a retry hint.
    let (status, head, body) = common::http(addr, "PUT", "/v1/tables/people?k=2", seed.as_bytes());
    assert_eq!(status, 409, "{body}");
    assert!(!head.contains("Retry-After"), "{head}");

    // Batch 1: inserts (ids continue from 20).
    let mut ops = String::from("op,id,age,zip,job\n");
    for i in 20..26 {
        rows.push((i, row(i)));
        ops.push_str(&format!("insert,,{}\n", row(i).join(",")));
    }
    let (status, _, body) = common::http(addr, "POST", "/v1/tables/people/ops", ops.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"seq\":1"), "{body}");
    assert!(body.contains("\"inserted\":6"), "{body}");

    // Batch 2: a delete and an update of known ids.
    rows.retain(|(id, _)| *id != 3);
    let updated = vec!["a9".to_string(), "z9".to_string(), "j9".to_string()];
    rows.iter_mut().find(|(id, _)| *id == 7).unwrap().1 = updated.clone();
    let ops = format!(
        "op,id,age,zip,job\ndelete,3,,,\nupdate,7,{}\n",
        updated.join(",")
    );
    let (status, _, body) = common::http(addr, "POST", "/v1/tables/people/ops", ops.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"seq\":2"), "{body}");
    assert!(body.contains("\"deleted\":1"), "{body}");
    assert!(body.contains("\"updated\":1"), "{body}");

    // The differential guarantee, observed from outside: the served
    // release is byte-identical to a batch pipeline run on the
    // equivalent final CSV with the store's pinned sharding.
    let (status, _, status_json) = common::http(addr, "GET", "/v1/tables/people", &[]);
    assert_eq!(status, 200, "{status_json}");
    assert!(status_json.contains("\"state\":\"ready\""), "{status_json}");
    assert_eq!(
        common::extract_number(&status_json, "\"n_rows\":"),
        Some(rows.len() as u64)
    );
    let (status, head, release) = common::http(addr, "GET", "/v1/tables/people/release", &[]);
    assert_eq!(status, 200);
    assert!(head.contains("text/csv"), "{head}");
    assert_eq!(release, batch_release(&csv_of(&rows), 2, &status_json));

    // Per-table metrics track the applied batches.
    let (_, _, page) = common::http(addr, "GET", "/metrics", &[]);
    assert!(
        page.contains("kanon_table_batches_applied_total{table=\"people\"} 2"),
        "{page}"
    );
    assert!(
        page.contains("kanon_table_ops_applied_total{table=\"people\"} 8"),
        "{page}"
    );
    assert!(
        page.contains("kanon_table_quarantined{table=\"people\"} 0"),
        "{page}"
    );

    // Delete drops the table, its metrics, and its directory.
    let (status, _, body) = common::http(addr, "DELETE", "/v1/tables/people", &[]);
    assert_eq!(status, 200, "{body}");
    let (status, _, _) = common::http(addr, "GET", "/v1/tables/people", &[]);
    assert_eq!(status, 404);
    let (_, _, page) = common::http(addr, "GET", "/metrics", &[]);
    assert!(!page.contains("table=\"people\""), "{page}");
    assert!(!dir.join("people").exists());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_preserves_every_acknowledged_batch() {
    let dir = scratch("restart");
    let server = start(&dir);
    let addr = server.addr();
    await_ready(addr);

    let rows: Vec<(u64, Vec<String>)> = (1..=12).map(|i| (i, row(i))).collect();
    let (status, _, body) = common::http(
        addr,
        "PUT",
        "/v1/tables/t?k=2&shard_size=8",
        csv_of(&rows).as_bytes(),
    );
    assert_eq!(status, 201, "{body}");

    let mut acked = 0u64;
    for batch in 0..3 {
        let mut ops = String::from("op,id,age,zip,job\n");
        for i in 0..4u64 {
            ops.push_str(&format!("insert,,{}\n", row(100 + batch * 4 + i).join(",")));
        }
        let (status, _, body) = common::http(addr, "POST", "/v1/tables/t/ops", ops.as_bytes());
        assert_eq!(status, 200, "{body}");
        acked += 1;
    }
    let (_, _, release_before) = common::http(addr, "GET", "/v1/tables/t/release", &[]);
    server.shutdown();

    // A new process generation mounts the same directory: recovery must
    // surface exactly the acknowledged batches, then serve identical
    // bytes.
    let server = start(&dir);
    let addr = server.addr();
    await_ready(addr);
    let (status, _, status_json) = common::http(addr, "GET", "/v1/tables/t", &[]);
    assert_eq!(status, 200, "{status_json}");
    assert_eq!(
        common::extract_number(&status_json, "\"seq\":"),
        Some(acked),
        "{status_json}"
    );
    let (status, _, release_after) = common::http(addr, "GET", "/v1/tables/t/release", &[]);
    assert_eq!(status, 200);
    assert_eq!(release_after, release_before);

    // Recovery duration is exported for the operator.
    let (_, _, page) = common::http(addr, "GET", "/metrics", &[]);
    assert!(
        page.contains("kanon_table_recovery_seconds{table=\"t\"}"),
        "{page}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_race_the_lock_and_nothing_is_lost() {
    let dir = scratch("writers");
    let server = start(&dir);
    let addr = server.addr();
    await_ready(addr);

    let rows: Vec<(u64, Vec<String>)> = (1..=10).map(|i| (i, row(i))).collect();
    let (status, _, body) = common::http(
        addr,
        "PUT",
        "/v1/tables/race?k=2&shard_size=8",
        csv_of(&rows).as_bytes(),
    );
    assert_eq!(status, 201, "{body}");

    // 8 writers, one batch each, retrying honestly on 409. Readers of
    // status must never block while the writers contend.
    let conflicts = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..8u64 {
            let conflicts = &conflicts;
            scope.spawn(move || {
                let ops = format!("op,id,age,zip,job\ninsert,,{}\n", row(200 + w).join(","));
                loop {
                    let (status, head, body) =
                        common::http(addr, "POST", "/v1/tables/race/ops", ops.as_bytes());
                    match status {
                        200 => break,
                        409 | 429 => {
                            assert!(head.contains("Retry-After:"), "{head}");
                            conflicts.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        other => panic!("writer got {other}: {body}"),
                    }
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..20 {
                let (status, _, body) = common::http(addr, "GET", "/v1/tables/race", &[]);
                assert_eq!(status, 200, "status must never block: {body}");
                std::thread::sleep(Duration::from_millis(2));
            }
        });
    });

    // Every writer was eventually acknowledged exactly once.
    let (status, _, status_json) = common::http(addr, "GET", "/v1/tables/race", &[]);
    assert_eq!(status, 200);
    assert_eq!(
        common::extract_number(&status_json, "\"seq\":"),
        Some(8),
        "{status_json}"
    );
    assert_eq!(
        common::extract_number(&status_json, "\"n_rows\":"),
        Some(18),
        "{status_json}"
    );

    // The server counted each 409 it handed out.
    let observed = conflicts.load(Ordering::Relaxed) as u64;
    let (_, _, page) = common::http(addr, "GET", "/metrics", &[]);
    let scraped =
        common::extract_number(&page, "kanon_table_write_conflicts_total{table=\"race\"} ");
    assert_eq!(scraped, Some(observed), "{page}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_process_table_bench_reconciles() {
    let out = std::env::temp_dir().join(format!("bench-table-{}.json", std::process::id()));
    let report = run_bench(&BenchConfig {
        requests: 4,
        clients: 3,
        rows: 48,
        k: 2,
        shard_size: 8,
        server_workers: 1,
        out_path: Some(out.to_str().unwrap().to_string()),
        table_mode: true,
        ..BenchConfig::default()
    })
    .expect("table bench runs");
    assert!(report.ok(), "{}", report.to_json());
    assert_eq!(report.completed, report.submitted);
    let written = std::fs::read_to_string(&out).expect("report file");
    assert!(written.contains("\"retries\":"), "{written}");
    assert!(written.contains("\"ok\":true"), "{written}");
    std::fs::remove_file(&out).ok();
}
