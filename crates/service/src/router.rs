//! Maps parsed requests onto the service's endpoints and validates
//! submission parameters before anything touches the queue.

use kanon_pipeline::ShardStrategy;

use crate::http::{split_target, Reject, Request};
use crate::job::JobId;

/// Validated parameters of a `POST /v1/anonymize` submission.
#[derive(Debug, PartialEq, Eq)]
pub struct SubmitParams {
    /// The anonymity parameter (required, at least 1).
    pub k: usize,
    /// Target rows per shard; the server default applies when absent.
    pub shard_size: Option<usize>,
    /// Per-job deadline in milliseconds; the server default applies when
    /// absent.
    pub deadline_ms: Option<u64>,
    /// Per-job memory cap in MiB, leased from the global pool; the server
    /// default applies when absent.
    pub max_memory_mb: Option<u64>,
    /// Sharding strategy (`hash` or `sorted`).
    pub strategy: Option<ShardStrategy>,
    /// Comma-separated quasi-identifier column names; every column when
    /// absent.
    pub quasi: Option<Vec<String>>,
    /// Server-side CSV path for out-of-core inputs; the request body is
    /// the CSV when absent.
    pub path: Option<String>,
    /// Privacy model spec beyond plain k-anonymity (`l=N`, `entropy-l=X`,
    /// `t=X`, `emd-t=X`), validated at parse time but stored as the spec
    /// string — [`kanon_privacy::PrivacyModel`] carries thresholds as
    /// `f64` and cannot ride in this `Eq` struct. Re-parsed by the worker.
    pub privacy: Option<String>,
    /// Sensitive column name for the privacy model (and excluded from the
    /// quasi-identifier projection even under plain k).
    pub sensitive: Option<String>,
}

/// Validated parameters of a `PUT /v1/tables/{name}` creation.
#[derive(Debug, PartialEq, Eq)]
pub struct TableParams {
    /// The anonymity parameter (required, at least 1).
    pub k: usize,
    /// Target rows per shard; the delta engine's default applies when
    /// absent.
    pub shard_size: Option<usize>,
    /// Pinned hash-bucket count; derived from the initial table when
    /// absent.
    pub buckets: Option<usize>,
    /// Comma-separated quasi-identifier column names; every column when
    /// absent.
    pub quasi: Option<Vec<String>>,
    /// Deadline for the initial solve in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Memory cap in MiB, leased from the global pool for the initial
    /// solve.
    pub max_memory_mb: Option<u64>,
}

/// Validated parameters of a `POST /v1/tables/{name}/ops` batch.
#[derive(Debug, PartialEq, Eq)]
pub struct TableOpsParams {
    /// Deadline for applying the batch, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Memory cap in MiB, leased from the global pool for the batch.
    pub max_memory_mb: Option<u64>,
}

/// An endpoint the service can serve.
#[derive(Debug, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz` — liveness plus degradation detail.
    Health,
    /// `GET /readyz` — strict readiness (`503` while recovering or
    /// degraded).
    Ready,
    /// `GET /metrics`.
    Metrics,
    /// `POST /v1/anonymize`.
    Submit(SubmitParams),
    /// `GET /v1/jobs/{id}`.
    JobStatus(JobId),
    /// `PUT /v1/tables/{name}`.
    TableCreate(String, TableParams),
    /// `POST /v1/tables/{name}/ops`.
    TableOps(String, TableOpsParams),
    /// `GET /v1/tables/{name}/release`.
    TableRelease(String),
    /// `GET /v1/tables/{name}`.
    TableStatus(String),
    /// `DELETE /v1/tables/{name}`.
    TableDelete(String),
}

/// Resolves a request to a route.
///
/// # Errors
/// [`Reject`] with `404` for unknown paths, `405` for a known path with
/// the wrong method, and `400` for unparsable submission parameters.
pub fn route(request: &Request) -> Result<Route, Reject> {
    let (path, query) = split_target(&request.target);

    match path {
        "/healthz" => method_gate(request, "GET", Route::Health),
        "/readyz" => method_gate(request, "GET", Route::Ready),
        "/metrics" => method_gate(request, "GET", Route::Metrics),
        "/v1/anonymize" => {
            if request.method != "POST" {
                return Err(method_not_allowed("POST"));
            }
            Ok(Route::Submit(parse_submit(&query)?))
        }
        _ => {
            if let Some(raw_id) = path.strip_prefix("/v1/jobs/") {
                if request.method != "GET" {
                    return Err(method_not_allowed("GET"));
                }
                let id: JobId = raw_id.parse().map_err(|_| Reject {
                    status: 400,
                    reason: format!("bad job id {raw_id:?}"),
                })?;
                return Ok(Route::JobStatus(id));
            }
            if let Some(rest) = path.strip_prefix("/v1/tables/") {
                return route_table(request, rest, &query);
            }
            Err(Reject {
                status: 404,
                reason: format!("no such endpoint: {path}"),
            })
        }
    }
}

/// Routes `/v1/tables/{name}` and `/v1/tables/{name}/{action}`. The name
/// is validated here, before any handler touches the filesystem.
fn route_table(request: &Request, rest: &str, query: &[(String, String)]) -> Result<Route, Reject> {
    let (name, action) = match rest.split_once('/') {
        Some((name, action)) => (name, Some(action)),
        None => (rest, None),
    };
    crate::tables::validate_table_name(name)?;
    let name = name.to_string();
    match action {
        None => match request.method.as_str() {
            "GET" => Ok(Route::TableStatus(name)),
            "PUT" => Ok(Route::TableCreate(name, parse_table_create(query)?)),
            "DELETE" => Ok(Route::TableDelete(name)),
            _ => Err(method_not_allowed("GET, PUT or DELETE")),
        },
        Some("ops") => {
            if request.method != "POST" {
                return Err(method_not_allowed("POST"));
            }
            let (deadline_ms, max_memory_mb) = parse_budget(query)?;
            Ok(Route::TableOps(
                name,
                TableOpsParams {
                    deadline_ms,
                    max_memory_mb,
                },
            ))
        }
        Some("release") => method_gate(request, "GET", Route::TableRelease(name)),
        Some(other) => Err(Reject {
            status: 404,
            reason: format!("no such table action: {other}"),
        }),
    }
}

fn method_gate(request: &Request, method: &str, route: Route) -> Result<Route, Reject> {
    if request.method == method {
        Ok(route)
    } else {
        Err(method_not_allowed(method))
    }
}

fn method_not_allowed(allowed: &str) -> Reject {
    Reject {
        status: 405,
        reason: format!("method not allowed (use {allowed})"),
    }
}

fn parse_submit(query: &[(String, String)]) -> Result<SubmitParams, Reject> {
    let lookup = |key: &str| -> Option<&str> {
        query
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, value)| value.as_str())
    };
    let bad = |what: &str, raw: &str| Reject {
        status: 400,
        reason: format!("bad query parameter {what}={raw:?}"),
    };
    let k = match lookup("k") {
        None => {
            return Err(Reject {
                status: 400,
                reason: "missing required query parameter k".into(),
            })
        }
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|k| *k >= 1)
            .ok_or_else(|| bad("k", raw))?,
    };
    let parse_usize = |key: &str| -> Result<Option<usize>, Reject> {
        lookup(key)
            .map(|raw| raw.parse::<usize>().map_err(|_| bad(key, raw)))
            .transpose()
    };
    let parse_u64 = |key: &str| -> Result<Option<u64>, Reject> {
        lookup(key)
            .map(|raw| {
                raw.parse::<u64>()
                    .ok()
                    .filter(|v| *v > 0)
                    .ok_or_else(|| bad(key, raw))
            })
            .transpose()
    };
    let strategy = lookup("strategy")
        .map(|raw| ShardStrategy::from_name(raw).map_err(|_| bad("strategy", raw)))
        .transpose()?;
    let quasi = lookup("quasi").map(|raw| {
        raw.split(',')
            .filter(|name| !name.is_empty())
            .map(str::to_string)
            .collect::<Vec<_>>()
    });
    let sensitive = lookup("sensitive").map(str::to_string);
    // Validate the privacy spec here so a typo answers 400 immediately
    // instead of failing the job after admission; the worker re-parses
    // the (now known-good) spec string.
    let privacy = match lookup("privacy") {
        None => None,
        Some(raw) => {
            let model = kanon_privacy::PrivacyModel::parse(raw).map_err(|e| Reject {
                status: 400,
                reason: format!("bad query parameter privacy={raw:?}: {e}"),
            })?;
            if model.requires_sensitive() && sensitive.is_none() {
                return Err(Reject {
                    status: 400,
                    reason: format!("privacy={raw} needs a sensitive column (pass sensitive=COL)"),
                });
            }
            Some(raw.to_string())
        }
    };
    Ok(SubmitParams {
        k,
        shard_size: parse_usize("shard_size")?,
        deadline_ms: parse_u64("deadline_ms")?,
        max_memory_mb: parse_u64("max_memory_mb")?,
        strategy,
        quasi,
        path: lookup("path").map(str::to_string),
        privacy,
        sensitive,
    })
}

fn lookup<'q>(query: &'q [(String, String)], key: &str) -> Option<&'q str> {
    query
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value.as_str())
}

fn bad_param(what: &str, raw: &str) -> Reject {
    Reject {
        status: 400,
        reason: format!("bad query parameter {what}={raw:?}"),
    }
}

/// Parses the optional `deadline_ms` / `max_memory_mb` pair (both must be
/// positive when present).
fn parse_budget(query: &[(String, String)]) -> Result<(Option<u64>, Option<u64>), Reject> {
    let positive = |key: &str| -> Result<Option<u64>, Reject> {
        lookup(query, key)
            .map(|raw| {
                raw.parse::<u64>()
                    .ok()
                    .filter(|v| *v > 0)
                    .ok_or_else(|| bad_param(key, raw))
            })
            .transpose()
    };
    Ok((positive("deadline_ms")?, positive("max_memory_mb")?))
}

fn parse_table_create(query: &[(String, String)]) -> Result<TableParams, Reject> {
    let k = match lookup(query, "k") {
        None => {
            return Err(Reject {
                status: 400,
                reason: "missing required query parameter k".into(),
            })
        }
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|k| *k >= 1)
            .ok_or_else(|| bad_param("k", raw))?,
    };
    let positive_usize = |key: &str| -> Result<Option<usize>, Reject> {
        lookup(query, key)
            .map(|raw| {
                raw.parse::<usize>()
                    .ok()
                    .filter(|v| *v > 0)
                    .ok_or_else(|| bad_param(key, raw))
            })
            .transpose()
    };
    let quasi = lookup(query, "quasi").map(|raw| {
        raw.split(',')
            .filter(|name| !name.is_empty())
            .map(str::to_string)
            .collect::<Vec<_>>()
    });
    let (deadline_ms, max_memory_mb) = parse_budget(query)?;
    Ok(TableParams {
        k,
        shard_size: positive_usize("shard_size")?,
        buckets: positive_usize("buckets")?,
        quasi,
        deadline_ms,
        max_memory_mb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn routes_the_four_endpoints() {
        assert_eq!(route(&request("GET", "/healthz")).unwrap(), Route::Health);
        assert_eq!(route(&request("GET", "/metrics")).unwrap(), Route::Metrics);
        assert_eq!(
            route(&request("GET", "/v1/jobs/42")).unwrap(),
            Route::JobStatus(42)
        );
        match route(&request("POST", "/v1/anonymize?k=3")).unwrap() {
            Route::Submit(params) => {
                assert_eq!(params.k, 3);
                assert_eq!(params.shard_size, None);
                assert_eq!(params.path, None);
                assert_eq!(params.privacy, None);
                assert_eq!(params.sensitive, None);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn submit_parses_every_parameter() {
        let target = "/v1/anonymize?k=5&shard_size=64&deadline_ms=2000&max_memory_mb=32\
                      &strategy=sorted&quasi=age,zip&path=%2Fdata%2Fin.csv\
                      &privacy=l=2&sensitive=diagnosis";
        match route(&request("POST", target)).unwrap() {
            Route::Submit(params) => {
                assert_eq!(params.k, 5);
                assert_eq!(params.shard_size, Some(64));
                assert_eq!(params.deadline_ms, Some(2000));
                assert_eq!(params.max_memory_mb, Some(32));
                assert_eq!(params.strategy, Some(ShardStrategy::Sorted));
                assert_eq!(
                    params.quasi,
                    Some(vec!["age".to_string(), "zip".to_string()])
                );
                assert_eq!(params.path.as_deref(), Some("/data/in.csv"));
                assert_eq!(params.privacy.as_deref(), Some("l=2"));
                assert_eq!(params.sensitive.as_deref(), Some("diagnosis"));
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn submit_privacy_specs_are_validated_up_front() {
        // Every model family parses when a sensitive column rides along.
        for spec in ["k", "l=2", "entropy-l=2.5", "t=0.3", "emd-t=0.2"] {
            let target = format!("/v1/anonymize?k=2&privacy={spec}&sensitive=diag");
            match route(&request("POST", &target)).unwrap() {
                Route::Submit(params) => assert_eq!(params.privacy.as_deref(), Some(spec)),
                other => panic!("expected Submit for {spec}, got {other:?}"),
            }
        }
        // Malformed specs and a missing sensitive column answer 400 before
        // anything is admitted.
        for bad in [
            "/v1/anonymize?k=2&privacy=l=1&sensitive=diag",
            "/v1/anonymize?k=2&privacy=bogus&sensitive=diag",
            "/v1/anonymize?k=2&privacy=t=1.5&sensitive=diag",
            "/v1/anonymize?k=2&privacy=l=2",
        ] {
            assert_eq!(
                route(&request("POST", bad)).unwrap_err().status,
                400,
                "for {bad}"
            );
        }
    }

    #[test]
    fn routes_the_table_endpoints() {
        assert_eq!(route(&request("GET", "/readyz")).unwrap(), Route::Ready);
        match route(&request(
            "PUT",
            "/v1/tables/orders?k=3&buckets=17&shard_size=64&quasi=age,zip",
        ))
        .unwrap()
        {
            Route::TableCreate(name, params) => {
                assert_eq!(name, "orders");
                assert_eq!(params.k, 3);
                assert_eq!(params.buckets, Some(17));
                assert_eq!(params.shard_size, Some(64));
                assert_eq!(
                    params.quasi,
                    Some(vec!["age".to_string(), "zip".to_string()])
                );
            }
            other => panic!("expected TableCreate, got {other:?}"),
        }
        assert_eq!(
            route(&request("POST", "/v1/tables/orders/ops?max_memory_mb=8")).unwrap(),
            Route::TableOps(
                "orders".to_string(),
                TableOpsParams {
                    deadline_ms: None,
                    max_memory_mb: Some(8),
                }
            )
        );
        assert_eq!(
            route(&request("GET", "/v1/tables/orders/release")).unwrap(),
            Route::TableRelease("orders".to_string())
        );
        assert_eq!(
            route(&request("GET", "/v1/tables/orders")).unwrap(),
            Route::TableStatus("orders".to_string())
        );
        assert_eq!(
            route(&request("DELETE", "/v1/tables/orders")).unwrap(),
            Route::TableDelete("orders".to_string())
        );
    }

    #[test]
    fn table_rejections_carry_the_right_status() {
        // Hostile or malformed names never reach the filesystem.
        for bad in [
            "/v1/tables/..",
            "/v1/tables/a.b",
            "/v1/tables/a%2Fb", // stays encoded in the path: '%' is invalid
            "/v1/tables/",
        ] {
            assert_eq!(
                route(&request("GET", bad)).unwrap_err().status,
                400,
                "for {bad}"
            );
        }
        assert_eq!(
            route(&request("PATCH", "/v1/tables/t")).unwrap_err().status,
            405
        );
        assert_eq!(
            route(&request("GET", "/v1/tables/t/ops"))
                .unwrap_err()
                .status,
            405
        );
        assert_eq!(
            route(&request("GET", "/v1/tables/t/nope"))
                .unwrap_err()
                .status,
            404
        );
        for bad in [
            "/v1/tables/t?buckets=0",
            "/v1/tables/t?k=2&buckets=0",
            "/v1/tables/t?k=0",
            "/v1/tables/t",
        ] {
            assert_eq!(
                route(&request("PUT", bad)).unwrap_err().status,
                400,
                "for {bad}"
            );
        }
        assert_eq!(
            route(&request("POST", "/v1/tables/t/ops?deadline_ms=0"))
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn rejections_carry_the_right_status() {
        assert_eq!(route(&request("GET", "/nope")).unwrap_err().status, 404);
        assert_eq!(route(&request("POST", "/healthz")).unwrap_err().status, 405);
        assert_eq!(
            route(&request("DELETE", "/v1/anonymize?k=2"))
                .unwrap_err()
                .status,
            405
        );
        assert_eq!(
            route(&request("GET", "/v1/jobs/not-a-number"))
                .unwrap_err()
                .status,
            400
        );
        for bad in [
            "/v1/anonymize",
            "/v1/anonymize?k=0",
            "/v1/anonymize?k=x",
            "/v1/anonymize?k=2&shard_size=big",
            "/v1/anonymize?k=2&deadline_ms=0",
            "/v1/anonymize?k=2&max_memory_mb=0",
            "/v1/anonymize?k=2&strategy=spiral",
        ] {
            assert_eq!(
                route(&request("POST", bad)).unwrap_err().status,
                400,
                "for {bad}"
            );
        }
    }
}
