//! Maps parsed requests onto the service's endpoints and validates
//! submission parameters before anything touches the queue.

use kanon_pipeline::ShardStrategy;

use crate::http::{split_target, Reject, Request};
use crate::job::JobId;

/// Validated parameters of a `POST /v1/anonymize` submission.
#[derive(Debug, PartialEq, Eq)]
pub struct SubmitParams {
    /// The anonymity parameter (required, at least 1).
    pub k: usize,
    /// Target rows per shard; the server default applies when absent.
    pub shard_size: Option<usize>,
    /// Per-job deadline in milliseconds; the server default applies when
    /// absent.
    pub deadline_ms: Option<u64>,
    /// Per-job memory cap in MiB, leased from the global pool; the server
    /// default applies when absent.
    pub max_memory_mb: Option<u64>,
    /// Sharding strategy (`hash` or `sorted`).
    pub strategy: Option<ShardStrategy>,
    /// Comma-separated quasi-identifier column names; every column when
    /// absent.
    pub quasi: Option<Vec<String>>,
    /// Server-side CSV path for out-of-core inputs; the request body is
    /// the CSV when absent.
    pub path: Option<String>,
}

/// An endpoint the service can serve.
#[derive(Debug, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Health,
    /// `GET /metrics`.
    Metrics,
    /// `POST /v1/anonymize`.
    Submit(SubmitParams),
    /// `GET /v1/jobs/{id}`.
    JobStatus(JobId),
}

/// Resolves a request to a route.
///
/// # Errors
/// [`Reject`] with `404` for unknown paths, `405` for a known path with
/// the wrong method, and `400` for unparsable submission parameters.
pub fn route(request: &Request) -> Result<Route, Reject> {
    let (path, query) = split_target(&request.target);

    match path {
        "/healthz" => method_gate(request, "GET", Route::Health),
        "/metrics" => method_gate(request, "GET", Route::Metrics),
        "/v1/anonymize" => {
            if request.method != "POST" {
                return Err(method_not_allowed("POST"));
            }
            Ok(Route::Submit(parse_submit(&query)?))
        }
        _ => {
            if let Some(raw_id) = path.strip_prefix("/v1/jobs/") {
                if request.method != "GET" {
                    return Err(method_not_allowed("GET"));
                }
                let id: JobId = raw_id.parse().map_err(|_| Reject {
                    status: 400,
                    reason: format!("bad job id {raw_id:?}"),
                })?;
                return Ok(Route::JobStatus(id));
            }
            Err(Reject {
                status: 404,
                reason: format!("no such endpoint: {path}"),
            })
        }
    }
}

fn method_gate(request: &Request, method: &str, route: Route) -> Result<Route, Reject> {
    if request.method == method {
        Ok(route)
    } else {
        Err(method_not_allowed(method))
    }
}

fn method_not_allowed(allowed: &str) -> Reject {
    Reject {
        status: 405,
        reason: format!("method not allowed (use {allowed})"),
    }
}

fn parse_submit(query: &[(String, String)]) -> Result<SubmitParams, Reject> {
    let lookup = |key: &str| -> Option<&str> {
        query
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, value)| value.as_str())
    };
    let bad = |what: &str, raw: &str| Reject {
        status: 400,
        reason: format!("bad query parameter {what}={raw:?}"),
    };
    let k = match lookup("k") {
        None => {
            return Err(Reject {
                status: 400,
                reason: "missing required query parameter k".into(),
            })
        }
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|k| *k >= 1)
            .ok_or_else(|| bad("k", raw))?,
    };
    let parse_usize = |key: &str| -> Result<Option<usize>, Reject> {
        lookup(key)
            .map(|raw| raw.parse::<usize>().map_err(|_| bad(key, raw)))
            .transpose()
    };
    let parse_u64 = |key: &str| -> Result<Option<u64>, Reject> {
        lookup(key)
            .map(|raw| {
                raw.parse::<u64>()
                    .ok()
                    .filter(|v| *v > 0)
                    .ok_or_else(|| bad(key, raw))
            })
            .transpose()
    };
    let strategy = lookup("strategy")
        .map(|raw| ShardStrategy::from_name(raw).map_err(|_| bad("strategy", raw)))
        .transpose()?;
    let quasi = lookup("quasi").map(|raw| {
        raw.split(',')
            .filter(|name| !name.is_empty())
            .map(str::to_string)
            .collect::<Vec<_>>()
    });
    Ok(SubmitParams {
        k,
        shard_size: parse_usize("shard_size")?,
        deadline_ms: parse_u64("deadline_ms")?,
        max_memory_mb: parse_u64("max_memory_mb")?,
        strategy,
        quasi,
        path: lookup("path").map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn routes_the_four_endpoints() {
        assert_eq!(route(&request("GET", "/healthz")).unwrap(), Route::Health);
        assert_eq!(route(&request("GET", "/metrics")).unwrap(), Route::Metrics);
        assert_eq!(
            route(&request("GET", "/v1/jobs/42")).unwrap(),
            Route::JobStatus(42)
        );
        match route(&request("POST", "/v1/anonymize?k=3")).unwrap() {
            Route::Submit(params) => {
                assert_eq!(params.k, 3);
                assert_eq!(params.shard_size, None);
                assert_eq!(params.path, None);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn submit_parses_every_parameter() {
        let target = "/v1/anonymize?k=5&shard_size=64&deadline_ms=2000&max_memory_mb=32\
                      &strategy=sorted&quasi=age,zip&path=%2Fdata%2Fin.csv";
        match route(&request("POST", target)).unwrap() {
            Route::Submit(params) => {
                assert_eq!(params.k, 5);
                assert_eq!(params.shard_size, Some(64));
                assert_eq!(params.deadline_ms, Some(2000));
                assert_eq!(params.max_memory_mb, Some(32));
                assert_eq!(params.strategy, Some(ShardStrategy::Sorted));
                assert_eq!(
                    params.quasi,
                    Some(vec!["age".to_string(), "zip".to_string()])
                );
                assert_eq!(params.path.as_deref(), Some("/data/in.csv"));
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn rejections_carry_the_right_status() {
        assert_eq!(route(&request("GET", "/nope")).unwrap_err().status, 404);
        assert_eq!(route(&request("POST", "/healthz")).unwrap_err().status, 405);
        assert_eq!(
            route(&request("DELETE", "/v1/anonymize?k=2"))
                .unwrap_err()
                .status,
            405
        );
        assert_eq!(
            route(&request("GET", "/v1/jobs/not-a-number"))
                .unwrap_err()
                .status,
            400
        );
        for bad in [
            "/v1/anonymize",
            "/v1/anonymize?k=0",
            "/v1/anonymize?k=x",
            "/v1/anonymize?k=2&shard_size=big",
            "/v1/anonymize?k=2&deadline_ms=0",
            "/v1/anonymize?k=2&max_memory_mb=0",
            "/v1/anonymize?k=2&strategy=spiral",
        ] {
            assert_eq!(
                route(&request("POST", bad)).unwrap_err().status,
                400,
                "for {bad}"
            );
        }
    }
}
