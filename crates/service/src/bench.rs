//! `kanon bench-serve`: a closed-loop load generator that doubles as the
//! service's end-to-end acceptance check.
//!
//! Closed loop means each client thread has at most one job in flight: it
//! submits, polls the job to a terminal state, then submits the next.
//! That keeps offered load proportional to service capacity, so the run
//! measures latency under a sustainable arrival process instead of
//! manufacturing a queue explosion.
//!
//! After the loop drains, the generator scrapes `/metrics` and
//! reconciles the server's counters against its own tallies — exactly,
//! not approximately. Any 5xx, any failed job, any non-k-anonymous
//! result, or any counter mismatch fails the run.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kanon_pipeline::json::JsonObject;
use kanon_workloads::{write_zipf_csv, ZipfParams};

use crate::config::ServiceConfig;
use crate::error::{Error, Result};
use crate::metrics::parse_exposition;
use crate::server::Server;

/// Parameters of a bench run.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Target server; `None` self-hosts one in-process on a loopback
    /// port, which is how CI runs the whole check as a single command.
    pub addr: Option<String>,
    /// Total jobs to submit.
    pub requests: usize,
    /// Concurrent client threads (each with one job in flight).
    pub clients: usize,
    /// Rows in the generated zipf CSV each job submits.
    pub rows: usize,
    /// Anonymity parameter for every job.
    pub k: usize,
    /// `shard_size` passed with every job.
    pub shard_size: usize,
    /// Optional per-job deadline passed with every job.
    pub deadline_ms: Option<u64>,
    /// Worker threads for the self-hosted server (ignored with `addr`).
    pub server_workers: usize,
    /// Queue depth for the self-hosted server (ignored with `addr`).
    pub queue_depth: usize,
    /// Where to write the JSON report; `None` skips the file.
    pub out_path: Option<String>,
    /// RNG seed for the generated table.
    pub seed: u64,
    /// Bench the durable-table path instead of the job loop: seed one
    /// table, then race `clients` writers posting ops batches through the
    /// single-writer lock, honoring every `409`/`429` `Retry-After`.
    pub table_mode: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: None,
            requests: 64,
            clients: 8,
            rows: 50_000,
            k: 5,
            shard_size: 512,
            deadline_ms: None,
            server_workers: 4,
            queue_depth: 64,
            out_path: None,
            seed: 42,
            table_mode: false,
        }
    }
}

/// Outcome of a bench run, including the reconciliation verdict.
#[derive(Debug)]
pub struct BenchReport {
    /// Jobs submitted (client-side).
    pub submitted: usize,
    /// `202` admissions observed by clients.
    pub accepted: usize,
    /// `429`/`409` rejections observed by clients (each later retried).
    pub rejected: usize,
    /// Retries performed after a rejection, each preceded by a jittered
    /// exponential backoff no shorter than the server's `Retry-After`.
    pub retries: usize,
    /// Jobs that reached `completed` with a k-anonymous result.
    pub completed: usize,
    /// Jobs that reached `failed` or a non-k-anonymous result.
    pub failed: usize,
    /// 5xx responses observed by clients.
    pub server_errors: usize,
    /// End-to-end job latencies (submit to terminal state), sorted.
    pub latencies: Vec<Duration>,
    /// Wall-clock duration of the whole loop.
    pub elapsed: Duration,
    /// Counter mismatches found while reconciling against `/metrics`
    /// (empty means the scrape agreed exactly).
    pub mismatches: Vec<String>,
}

impl BenchReport {
    /// True when the run met every acceptance condition.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.server_errors == 0
            && self.failed == 0
            && self.completed == self.submitted
            && self.mismatches.is_empty()
    }

    fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((self.latencies.len() as f64) * p).ceil() as usize;
        self.latencies[rank.clamp(1, self.latencies.len()) - 1]
    }

    /// Jobs completed per wall-clock second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Renders the report as JSON (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.number("submitted", self.submitted as u128)
            .number("accepted", self.accepted as u128)
            .number("rejected", self.rejected as u128)
            .number("retries", self.retries as u128)
            .number("completed", self.completed as u128)
            .number("failed", self.failed as u128)
            .number("server_errors", self.server_errors as u128)
            .number("elapsed_ms", self.elapsed.as_millis())
            .raw(
                "throughput_jobs_per_sec",
                &format!("{:.2}", self.throughput()),
            )
            .number("p50_ms", self.percentile(0.50).as_millis())
            .number("p95_ms", self.percentile(0.95).as_millis())
            .number("p99_ms", self.percentile(0.99).as_millis())
            .boolean("counters_reconciled", self.mismatches.is_empty())
            .boolean("ok", self.ok());
        if !self.mismatches.is_empty() {
            let rendered: Vec<String> = self
                .mismatches
                .iter()
                .map(|m| format!("\"{}\"", kanon_pipeline::json_escape(m)))
                .collect();
            obj.raw("mismatches", &format!("[{}]", rendered.join(",")));
        }
        obj.finish()
    }
}

/// Runs the closed loop and, when configured, writes the JSON report.
///
/// # Errors
/// [`Error::Io`] when the target (or self-hosted) server cannot be
/// reached, [`Error::Bench`] when responses are not parsable HTTP.
/// A run that *reaches* the server but fails acceptance returns `Ok`
/// with [`BenchReport::ok`] false — the caller decides the exit code.
pub fn run_bench(config: &BenchConfig) -> Result<BenchReport> {
    // When self-hosting, the server must outlive the whole run; it joins
    // its threads when this binding drops at the end of the function.
    let _hosted: Option<Server>;
    // Self-hosted table runs get a throwaway data directory, removed
    // only after the server has shut down and released its locks.
    let mut scratch_dir: Option<std::path::PathBuf> = None;
    let addr: SocketAddr = match &config.addr {
        Some(addr) => {
            _hosted = None;
            addr.to_socket_addrs()?
                .next()
                .ok_or_else(|| Error::Bench(format!("cannot resolve {addr}")))?
        }
        None => {
            let data_dir = if config.table_mode {
                let dir = std::env::temp_dir().join(format!(
                    "kanon-bench-tables-{}-{}",
                    std::process::id(),
                    config.seed
                ));
                std::fs::create_dir_all(&dir)?;
                scratch_dir = Some(dir.clone());
                Some(dir)
            } else {
                None
            };
            let server = Server::start(ServiceConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: config.server_workers,
                queue_depth: config.queue_depth,
                data_dir,
                ..ServiceConfig::default()
            })?;
            let addr = server.addr();
            _hosted = Some(server);
            addr
        }
    };

    let mut csv = Vec::new();
    let params = ZipfParams {
        n: config.rows,
        m: 6,
        alphabet: 40,
        exponent: 1.1,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    write_zipf_csv(&mut rng, &params, &mut csv)
        .map_err(|e| Error::Bench(format!("zipf generation failed: {e}")))?;

    let report = if config.table_mode {
        run_table_loop(config, addr, &csv)
    } else {
        run_job_loop(config, addr, &csv)
    };
    drop(_hosted);
    if let Some(dir) = scratch_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let report = report?;
    if let Some(path) = &config.out_path {
        let mut file = std::fs::File::create(path)?;
        file.write_all(report.to_json().as_bytes())?;
        file.write_all(b"\n")?;
    }
    Ok(report)
}

/// Client-side tallies, shared by all bench threads under one lock.
#[derive(Default)]
struct Tally {
    completed: usize,
    failed: usize,
    server_errors: usize,
    rejected: usize,
    retries: usize,
    /// `409`s alone (a subset of `rejected`) — reconciled against
    /// `kanon_table_write_conflicts_total` in table mode.
    conflicts: usize,
    max_seq: u64,
    latencies: Vec<Duration>,
}

/// The honest client's pause before a retry: full-jitter exponential
/// backoff *on top of* the server's `Retry-After`, so the retry never
/// lands sooner than the server asked and concurrent clients do not
/// re-collide in lockstep.
fn backoff_delay(rng: &mut StdRng, attempt: u32, retry_after_secs: Option<u64>) -> Duration {
    let step = Duration::from_millis(100 << attempt.min(4));
    let jittered = step.mul_f64(0.5 + rng.gen::<f64>() * 0.5);
    Duration::from_secs(retry_after_secs.unwrap_or(0)) + jittered
}

/// The original closed loop: each client submits a job, polls it to a
/// terminal state, then takes the next.
fn run_job_loop(config: &BenchConfig, addr: SocketAddr, csv: &[u8]) -> Result<BenchReport> {
    let mut target = format!(
        "/v1/anonymize?k={}&shard_size={}",
        config.k, config.shard_size
    );
    if let Some(ms) = config.deadline_ms {
        target.push_str(&format!("&deadline_ms={ms}"));
    }

    let next = AtomicUsize::new(0);
    let tallies = Mutex::new(Tally::default());
    let started = Instant::now();
    let loop_result: std::result::Result<(), Error> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|client| {
                let (next, tallies, target) = (&next, &tallies, &target);
                scope.spawn(move || -> std::result::Result<(), Error> {
                    let mut rng = StdRng::seed_from_u64(config.seed ^ (client as u64 + 1));
                    while next.fetch_add(1, Ordering::Relaxed) < config.requests {
                        let job_started = Instant::now();
                        let mut attempt = 0u32;
                        let id = loop {
                            let (status, retry_after, body) = request(addr, "POST", target, csv)?;
                            match status {
                                202 => {
                                    break extract_number(&body, "\"id\":").ok_or_else(|| {
                                        Error::Bench(format!("202 without an id: {body}"))
                                    })?
                                }
                                429 => {
                                    {
                                        let mut t = tallies.lock().expect("tally lock");
                                        t.rejected += 1;
                                        t.retries += 1;
                                    }
                                    std::thread::sleep(backoff_delay(
                                        &mut rng,
                                        attempt,
                                        retry_after,
                                    ));
                                    attempt += 1;
                                }
                                s if s >= 500 => {
                                    tallies.lock().expect("tally lock").server_errors += 1;
                                    return Err(Error::Bench(format!("server error {s}: {body}")));
                                }
                                s => {
                                    return Err(Error::Bench(format!(
                                        "unexpected submit status {s}: {body}"
                                    )))
                                }
                            }
                        };
                        let poll_target = format!("/v1/jobs/{id}");
                        let verdict = loop {
                            let (status, _, body) = request(addr, "GET", &poll_target, &[])?;
                            if status >= 500 {
                                tallies.lock().expect("tally lock").server_errors += 1;
                                return Err(Error::Bench(format!("server error {status}: {body}")));
                            }
                            if body.contains("\"state\":\"completed\"") {
                                break body.contains("\"k_anonymous\":true");
                            }
                            if body.contains("\"state\":\"failed\"") {
                                break false;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        };
                        let mut t = tallies.lock().expect("tally lock");
                        if verdict {
                            t.completed += 1;
                            t.latencies.push(job_started.elapsed());
                        } else {
                            t.failed += 1;
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("bench client panicked")?;
        }
        Ok(())
    });
    loop_result?;
    let elapsed = started.elapsed();

    let mut tally = tallies.into_inner().expect("tally lock");
    tally.latencies.sort_unstable();
    let accepted = tally.completed + tally.failed;

    // Scrape and reconcile: the server's accounting must agree exactly
    // with what the clients observed.
    let (status, _, page) = request(addr, "GET", "/metrics", &[])?;
    if status != 200 {
        return Err(Error::Bench(format!("metrics scrape answered {status}")));
    }
    let scraped = parse_exposition(&page);
    let mismatches = reconcile(
        &scraped,
        accepted as u64,
        tally.rejected as u64,
        tally.completed as u64,
        tally.failed as u64,
    );

    Ok(BenchReport {
        submitted: config.requests,
        accepted,
        rejected: tally.rejected,
        retries: tally.retries,
        completed: tally.completed,
        failed: tally.failed,
        server_errors: tally.server_errors,
        latencies: tally.latencies,
        elapsed,
        mismatches,
    })
}

/// The durable-table loop: seed one table from the first half of the
/// generated CSV, then race `clients` writers inserting the second half
/// as `requests` ops batches. Every `409` from the single-writer lock is
/// followed by an honest backoff and a retry; at the end the table's
/// sequence number must equal exactly the batches acknowledged with
/// `200` — the accepted-equals-applied invariant, observed end to end.
fn run_table_loop(config: &BenchConfig, addr: SocketAddr, csv: &[u8]) -> Result<BenchReport> {
    let text = std::str::from_utf8(csv).map_err(|_| Error::Bench("zipf CSV not UTF-8".into()))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| Error::Bench("generated CSV is empty".into()))?;
    let rows: Vec<&str> = lines.collect();
    if rows.len() < 2 * config.requests.max(1) {
        return Err(Error::Bench(format!(
            "table mode needs at least 2 rows per batch; got {} rows for {} batches",
            rows.len(),
            config.requests
        )));
    }
    let (seed_rows, op_rows) = rows.split_at(rows.len() / 2);
    let mut seed_csv = String::from(header);
    seed_csv.push('\n');
    for row in seed_rows {
        seed_csv.push_str(row);
        seed_csv.push('\n');
    }
    let chunk = op_rows.len().div_ceil(config.requests.max(1));
    let batches: Vec<String> = op_rows
        .chunks(chunk)
        .map(|chunk| {
            let mut ops = format!("op,id,{header}\n");
            for row in chunk {
                ops.push_str("insert,,");
                ops.push_str(row);
                ops.push('\n');
            }
            ops
        })
        .collect();
    let inserted: usize = op_rows.len();

    let create_target = format!(
        "/v1/tables/bench?k={}&shard_size={}",
        config.k, config.shard_size
    );
    let (status, _, body) = request(addr, "PUT", &create_target, seed_csv.as_bytes())?;
    if status != 201 {
        return Err(Error::Bench(format!(
            "table create answered {status}: {body}"
        )));
    }

    let next = AtomicUsize::new(0);
    let tallies = Mutex::new(Tally::default());
    let started = Instant::now();
    let loop_result: std::result::Result<(), Error> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|client| {
                let (next, tallies, batches) = (&next, &tallies, &batches);
                scope.spawn(move || -> std::result::Result<(), Error> {
                    let mut rng = StdRng::seed_from_u64(config.seed ^ (client as u64 + 1));
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(batch) = batches.get(index) else {
                            return Ok(());
                        };
                        let batch_started = Instant::now();
                        let mut attempt = 0u32;
                        loop {
                            let (status, retry_after, body) =
                                request(addr, "POST", "/v1/tables/bench/ops", batch.as_bytes())?;
                            match status {
                                200 => {
                                    let seq =
                                        extract_number(&body, "\"seq\":").ok_or_else(|| {
                                            Error::Bench(format!("200 without a seq: {body}"))
                                        })?;
                                    let mut t = tallies.lock().expect("tally lock");
                                    t.completed += 1;
                                    t.max_seq = t.max_seq.max(seq);
                                    t.latencies.push(batch_started.elapsed());
                                    break;
                                }
                                409 | 429 => {
                                    {
                                        let mut t = tallies.lock().expect("tally lock");
                                        t.rejected += 1;
                                        t.retries += 1;
                                        if status == 409 {
                                            t.conflicts += 1;
                                        }
                                    }
                                    if retry_after.is_none() {
                                        return Err(Error::Bench(format!(
                                            "{status} without Retry-After: {body}"
                                        )));
                                    }
                                    std::thread::sleep(backoff_delay(
                                        &mut rng,
                                        attempt,
                                        retry_after,
                                    ));
                                    attempt += 1;
                                }
                                s if s >= 500 => {
                                    tallies.lock().expect("tally lock").server_errors += 1;
                                    return Err(Error::Bench(format!("server error {s}: {body}")));
                                }
                                s => {
                                    return Err(Error::Bench(format!(
                                        "unexpected ops status {s}: {body}"
                                    )))
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("bench client panicked")?;
        }
        Ok(())
    });
    loop_result?;
    let elapsed = started.elapsed();

    let mut tally = tallies.into_inner().expect("tally lock");
    tally.latencies.sort_unstable();
    let mut mismatches = Vec::new();

    // Accepted == applied, read back from the durable store itself.
    let (status, _, body) = request(addr, "GET", "/v1/tables/bench", &[])?;
    if status != 200 {
        return Err(Error::Bench(format!(
            "table status answered {status}: {body}"
        )));
    }
    let final_seq = extract_number(&body, "\"seq\":").unwrap_or(0);
    if final_seq != tally.completed as u64 {
        mismatches.push(format!(
            "table seq is {final_seq}, clients got {} acknowledgements",
            tally.completed
        ));
    }
    if tally.max_seq != final_seq {
        mismatches.push(format!(
            "highest acknowledged seq {} does not match final seq {final_seq}",
            tally.max_seq
        ));
    }
    let n_rows = extract_number(&body, "\"n_rows\":").unwrap_or(0);
    let expected_rows = (seed_rows.len() + inserted) as u64;
    if n_rows != expected_rows {
        mismatches.push(format!(
            "table has {n_rows} rows, clients inserted up to {expected_rows}"
        ));
    }

    // The release must stream exactly the current rows.
    let (status, _, release) = request(addr, "GET", "/v1/tables/bench/release", &[])?;
    if status != 200 {
        return Err(Error::Bench(format!("release answered {status}")));
    }
    let released = release.lines().count().saturating_sub(1) as u64;
    if released != n_rows {
        mismatches.push(format!(
            "release streams {released} rows but the table holds {n_rows}"
        ));
    }

    // And the server's own per-table counters must agree with the
    // clients' observations, exactly.
    let (status, _, page) = request(addr, "GET", "/metrics", &[])?;
    if status != 200 {
        return Err(Error::Bench(format!("metrics scrape answered {status}")));
    }
    let scraped = parse_exposition(&page);
    for (name, expected) in [
        (
            "kanon_table_batches_applied_total{table=\"bench\"}",
            tally.completed as u64,
        ),
        (
            "kanon_table_write_conflicts_total{table=\"bench\"}",
            tally.conflicts as u64,
        ),
        ("kanon_table_quarantined{table=\"bench\"}", 0),
    ] {
        let actual = scraped.get(name).copied().unwrap_or(0.0);
        if (actual - expected as f64).abs() > 0.0 {
            mismatches.push(format!(
                "{name}: server says {actual}, clients saw {expected}"
            ));
        }
    }

    Ok(BenchReport {
        submitted: batches.len(),
        accepted: tally.completed,
        rejected: tally.rejected,
        retries: tally.retries,
        completed: tally.completed,
        failed: tally.failed,
        server_errors: tally.server_errors,
        latencies: tally.latencies,
        elapsed,
        mismatches,
    })
}

/// Checks the scraped counters against client-side tallies. Returns one
/// message per disagreement.
fn reconcile(
    scraped: &BTreeMap<String, f64>,
    accepted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
) -> Vec<String> {
    let mut mismatches = Vec::new();
    let mut check = |name: &str, expected: u64| {
        let actual = scraped.get(name).copied().unwrap_or(0.0);
        if (actual - expected as f64).abs() > 0.0 {
            mismatches.push(format!(
                "{name}: server says {actual}, clients saw {expected}"
            ));
        }
    };
    check("kanon_jobs_accepted_total", accepted);
    check("kanon_jobs_rejected_total", rejected);
    check("kanon_jobs_completed_total", completed);
    check("kanon_jobs_failed_total", failed);
    for (name, value) in scraped {
        if let Some(code) = name
            .strip_prefix("kanon_http_responses_total{code=\"")
            .and_then(|rest| rest.strip_suffix("\"}"))
        {
            if code.starts_with('5') && *value > 0.0 {
                mismatches.push(format!(
                    "server emitted {value} responses with status {code}"
                ));
            }
        }
    }
    mismatches
}

/// One HTTP exchange over a fresh connection (the server closes after
/// every response anyway). Returns the status, the parsed `Retry-After`
/// (seconds) if the server sent one, and the body as text.
fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> Result<(u16, Option<u64>, String)> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = &stream;
    write!(
        writer,
        "{method} {target} HTTP/1.1\r\nHost: kanon\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()?;

    let mut reader = BufReader::new(&stream);
    read_response(&mut reader)
}

/// Parses a status line, headers, and `Content-Length` body.
fn read_response<R: std::io::BufRead>(reader: &mut R) -> Result<(u16, Option<u64>, String)> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if reader.read(&mut byte)? == 0 {
            return Err(Error::Bench("connection closed mid-response".into()));
        }
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > 64 * 1024 {
            return Err(Error::Bench("response head too large".into()));
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Bench(format!("bad status line: {status_line:?}")))?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    for (name, value) in lines.filter_map(|line| line.split_once(':')) {
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().unwrap_or(0);
        } else if name.trim().eq_ignore_ascii_case("retry-after") {
            retry_after = value.trim().parse().ok();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((
        status,
        retry_after,
        String::from_utf8_lossy(&body).into_owned(),
    ))
}

/// Extracts the unsigned integer that follows `prefix` in a JSON text.
fn extract_number(text: &str, prefix: &str) -> Option<u64> {
    let rest = &text[text.find(prefix)? + prefix.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_honors_retry_after_and_grows_with_jitter() {
        let mut rng = StdRng::seed_from_u64(7);
        for attempt in 0..8 {
            let with_floor = backoff_delay(&mut rng, attempt, Some(1));
            assert!(with_floor >= Duration::from_secs(1), "floor ignored");
            let free = backoff_delay(&mut rng, attempt, None);
            let step = Duration::from_millis(100 << attempt.min(4));
            assert!(free >= step / 2 && free <= step, "jitter out of range");
        }
    }

    #[test]
    fn number_extraction() {
        assert_eq!(extract_number("{\"id\":42,\"x\":1}", "\"id\":"), Some(42));
        assert_eq!(extract_number("{\"x\":1}", "\"id\":"), None);
    }

    #[test]
    fn reconcile_flags_disagreements_and_5xx() {
        let mut scraped = BTreeMap::new();
        scraped.insert("kanon_jobs_accepted_total".to_string(), 3.0);
        scraped.insert("kanon_jobs_rejected_total".to_string(), 1.0);
        scraped.insert("kanon_jobs_completed_total".to_string(), 3.0);
        scraped.insert("kanon_jobs_failed_total".to_string(), 0.0);
        assert!(reconcile(&scraped, 3, 1, 3, 0).is_empty());
        assert_eq!(reconcile(&scraped, 4, 1, 3, 0).len(), 1);
        scraped.insert("kanon_http_responses_total{code=\"500\"}".to_string(), 2.0);
        assert_eq!(reconcile(&scraped, 3, 1, 3, 0).len(), 1);
    }

    #[test]
    fn report_json_and_percentiles() {
        let report = BenchReport {
            submitted: 4,
            accepted: 4,
            rejected: 1,
            retries: 1,
            completed: 4,
            failed: 0,
            server_errors: 0,
            latencies: (1..=4).map(Duration::from_millis).collect(),
            elapsed: Duration::from_millis(100),
            mismatches: Vec::new(),
        };
        assert!(report.ok());
        assert_eq!(report.percentile(0.50), Duration::from_millis(2));
        assert_eq!(report.percentile(0.99), Duration::from_millis(4));
        let json = report.to_json();
        assert!(json.contains("\"ok\":true"));
        assert!(json.contains("\"retries\":1"));
        assert!(json.contains("\"p50_ms\":2"));
        assert!(json.contains("\"counters_reconciled\":true"));

        let bad = BenchReport {
            failed: 1,
            completed: 3,
            mismatches: vec!["x".into()],
            ..report
        };
        assert!(!bad.ok());
        assert!(bad.to_json().contains("\"mismatches\":[\"x\"]"));
    }
}
