//! Error type for the serving layer.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from server configuration, startup, and the load generator.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A service configuration that cannot run (zero workers, zero queue).
    Config(String),
    /// Socket-level failure (bind, accept, connect).
    Io(std::io::Error),
    /// The load generator observed a protocol or reconciliation failure.
    Bench(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "service config error: {msg}"),
            Error::Io(e) => write!(f, "service i/o error: {e}"),
            Error::Bench(msg) => write!(f, "bench error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Config(_) | Error::Bench(_) => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let cfg = Error::Config("zero workers".into());
        assert_eq!(cfg.to_string(), "service config error: zero workers");
        assert!(std::error::Error::source(&cfg).is_none());

        let io: Error = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
