//! Job records and their JSON projection for `GET /v1/jobs/{id}`.
//!
//! A job moves `queued → running → completed | failed`; progress inside
//! `running` comes from the pipeline's [`kanon_pipeline::Progress`]
//! events. The store keeps every finished record for the server's
//! lifetime — the service is an operator tool, not a public API, and a
//! bounded bench run never produces enough records to matter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use kanon_pipeline::json::JsonObject;
use kanon_pipeline::PipelineReport;

/// Opaque job identifier, allocated sequentially from 1.
pub type JobId = u64;

/// Measured linkage attack against a completed job's release: the job's
/// own (capped sample of) original rows play the external table, so the
/// numbers answer "could the uploader's population be re-identified from
/// what we just released?".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackSummary {
    /// Rows attacked (at most the sampling cap).
    pub attacked: usize,
    /// Rows re-identified outright — candidate set of size one. Zero for
    /// any correct k ≥ 2 release.
    pub unique_matches: usize,
    /// Mean probability a uniformly-guessing attacker names the right
    /// released row; at most `1/k` for a k-anonymous release.
    pub expected_success: f64,
}

/// Lifecycle state of one job.
#[derive(Debug)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is solving it; `done` of `units` pipeline work units
    /// (shards plus residue) are finished.
    Running {
        /// Work units solved so far.
        done: usize,
        /// Total work units (0 until the pipeline has planned shards).
        units: usize,
    },
    /// Finished with a valid anonymization.
    Completed {
        /// The pipeline's run report.
        report: PipelineReport,
        /// Whether the service re-verified k-anonymity of the output.
        k_anonymous: bool,
        /// Whether the service's independent re-check of the requested
        /// privacy model passed; `None` when the job ran plain k.
        privacy_verified: Option<bool>,
        /// Linkage-attack measurement of the release, when one ran.
        attack: Option<AttackSummary>,
        /// End-to-end milliseconds from admission to completion.
        elapsed_ms: u128,
    },
    /// Errored after admission (bad CSV, budget exhaustion, solver error).
    Failed {
        /// Rendered error message.
        error: String,
        /// End-to-end milliseconds from admission to failure.
        elapsed_ms: u128,
    },
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Completed { .. } => "completed",
            JobState::Failed { .. } => "failed",
        }
    }
}

/// One job's record.
#[derive(Debug)]
pub struct JobRecord {
    /// The job's id.
    pub id: JobId,
    /// The anonymity parameter it runs under.
    pub k: usize,
    /// When the job was admitted.
    pub submitted: Instant,
    /// Current lifecycle state.
    pub state: JobState,
}

impl JobRecord {
    /// Renders the job as the stable-shape JSON the status endpoint
    /// serves. Keys appear in a fixed order; state-specific keys are
    /// present exactly when that state holds.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.number("id", u128::from(self.id))
            .number("k", self.k as u128)
            .string("state", self.state.name());
        match &self.state {
            JobState::Queued => {}
            JobState::Running { done, units } => {
                let mut progress = JsonObject::new();
                progress
                    .number("done", *done as u128)
                    .number("units", *units as u128);
                obj.raw("progress", &progress.finish());
            }
            JobState::Completed {
                report,
                k_anonymous,
                privacy_verified,
                attack,
                elapsed_ms,
            } => {
                obj.boolean("k_anonymous", *k_anonymous);
                if let Some(verified) = privacy_verified {
                    obj.boolean("privacy_verified", *verified);
                }
                if let Some(attack) = attack {
                    let mut inner = JsonObject::new();
                    inner
                        .number("attacked", attack.attacked as u128)
                        .number("unique_matches", attack.unique_matches as u128)
                        .raw(
                            "expected_success",
                            &format!("{:.6}", attack.expected_success),
                        );
                    obj.raw("attack", &inner.finish());
                }
                obj.number("elapsed_ms", *elapsed_ms)
                    .raw("report", &report.to_json());
            }
            JobState::Failed { error, elapsed_ms } => {
                obj.string("error", error).number("elapsed_ms", *elapsed_ms);
            }
        }
        obj.finish()
    }
}

/// Concurrent map of every job the server has admitted.
#[derive(Debug, Default)]
pub struct JobStore {
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    next_id: AtomicU64,
}

impl JobStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        JobStore::default()
    }

    /// Admits a new job in `Queued` state and returns its id.
    pub fn create(&self, k: usize) -> JobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let record = JobRecord {
            id,
            k,
            submitted: Instant::now(),
            state: JobState::Queued,
        };
        self.jobs.lock().expect("job store lock").insert(id, record);
        id
    }

    fn update(&self, id: JobId, f: impl FnOnce(&mut JobRecord)) {
        if let Some(record) = self.jobs.lock().expect("job store lock").get_mut(&id) {
            f(record);
        }
    }

    /// Marks the job running (a worker claimed it).
    pub fn set_running(&self, id: JobId) {
        self.update(id, |r| {
            r.state = JobState::Running { done: 0, units: 0 };
        });
    }

    /// Publishes pipeline progress for a running job.
    pub fn set_progress(&self, id: JobId, done: usize, units: usize) {
        self.update(id, |r| {
            if matches!(r.state, JobState::Running { .. }) {
                r.state = JobState::Running { done, units };
            }
        });
    }

    /// Marks the job completed with its report, the verification
    /// verdicts, and the attack measurement (when one ran).
    pub fn complete(
        &self,
        id: JobId,
        report: PipelineReport,
        k_anonymous: bool,
        privacy_verified: Option<bool>,
        attack: Option<AttackSummary>,
    ) {
        self.update(id, |r| {
            r.state = JobState::Completed {
                report,
                k_anonymous,
                privacy_verified,
                attack,
                elapsed_ms: r.submitted.elapsed().as_millis(),
            };
        });
    }

    /// Marks the job failed with a rendered error.
    pub fn fail(&self, id: JobId, error: String) {
        self.update(id, |r| {
            r.state = JobState::Failed {
                error,
                elapsed_ms: r.submitted.elapsed().as_millis(),
            };
        });
    }

    /// Removes a record, undoing [`JobStore::create`] when admission
    /// fails after the id was allocated (the refused job must leave no
    /// trace).
    pub fn remove(&self, id: JobId) {
        self.jobs.lock().expect("job store lock").remove(&id);
    }

    /// Renders the job's status JSON, or `None` for an unknown id.
    #[must_use]
    pub fn render(&self, id: JobId) -> Option<String> {
        self.jobs
            .lock()
            .expect("job store lock")
            .get(&id)
            .map(JobRecord::to_json)
    }

    /// True when the job exists and has reached a terminal state.
    #[must_use]
    pub fn is_finished(&self, id: JobId) -> bool {
        self.jobs
            .lock()
            .expect("job store lock")
            .get(&id)
            .is_some_and(|r| {
                matches!(
                    r.state,
                    JobState::Completed { .. } | JobState::Failed { .. }
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_renders_state_specific_keys() {
        let store = JobStore::new();
        let id = store.create(3);
        assert_eq!(id, 1);
        let queued = store.render(id).unwrap();
        assert!(queued.starts_with("{\"id\":1,\"k\":3,\"state\":\"queued\"}"));

        store.set_running(id);
        store.set_progress(id, 2, 5);
        let running = store.render(id).unwrap();
        assert!(running.contains("\"state\":\"running\""));
        assert!(running.contains("\"progress\":{\"done\":2,\"units\":5}"));

        store.fail(id, "budget \"wall-clock\" exceeded".into());
        let failed = store.render(id).unwrap();
        assert!(failed.contains("\"state\":\"failed\""));
        assert!(failed.contains("\\\"wall-clock\\\""));
        assert!(failed.contains("\"elapsed_ms\":"));
        assert!(store.is_finished(id));

        // Progress updates after a terminal state are ignored.
        store.set_progress(id, 9, 9);
        assert!(!store.render(id).unwrap().contains("\"progress\""));

        assert!(store.render(99).is_none());
        assert!(!store.is_finished(99));
    }

    #[test]
    fn completed_job_renders_privacy_and_attack_sections() {
        let report = || PipelineReport {
            n_rows: 4,
            n_cols: 2,
            k: 2,
            shard_size: 64,
            strategy: "hash",
            workers: 1,
            shards: Vec::new(),
            residue_rows: 0,
            total_cost: 2,
            elapsed: std::time::Duration::from_millis(5),
            generalization: None,
            privacy: None,
        };
        let store = JobStore::new();

        let private = store.create(2);
        store.complete(
            private,
            report(),
            true,
            Some(true),
            Some(AttackSummary {
                attacked: 4,
                unique_matches: 0,
                expected_success: 0.5,
            }),
        );
        let json = store.render(private).unwrap();
        assert!(json.contains("\"k_anonymous\":true"));
        assert!(json.contains("\"privacy_verified\":true"));
        assert!(json.contains(
            "\"attack\":{\"attacked\":4,\"unique_matches\":0,\"expected_success\":0.500000}"
        ));

        // A plain-k job renders neither of the new keys.
        let plain = store.create(2);
        store.complete(plain, report(), true, None, None);
        let json = store.render(plain).unwrap();
        assert!(!json.contains("privacy_verified"));
        assert!(!json.contains("\"attack\""));
    }

    #[test]
    fn ids_are_unique_under_contention() {
        let store = JobStore::new();
        let ids: Vec<JobId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| (0..50).map(|_| store.create(2)).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }
}
