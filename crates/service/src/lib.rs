//! `kanon-service`: a multi-tenant anonymization server with admission
//! control and live observability — std-only, no async runtime, no HTTP
//! framework.
//!
//! The solvers in this workspace answer one instance at a time under one
//! [`kanon_core::govern::Budget`]. A shared deployment has a different
//! problem: many tenants submitting tables concurrently, each expecting
//! an explicit yes-or-no *now* rather than an unbounded wait, and an
//! operator who needs to see queue pressure and degradation as it
//! happens. This crate is that serving layer:
//!
//! - **Admission control** ([`server`]) — a submission either gets a job
//!   id (`202`) or a `429` with `Retry-After`, decided without blocking:
//!   jobs lease their memory cap from a global
//!   [`kanon_core::BudgetPool`] and take a slot in a bounded
//!   [`queue::JobQueue`]. Overload degrades service *latency* for nobody
//!   — it shrinks admission instead.
//! - **Execution** — a `std::thread::scope` worker pool drives each job
//!   through [`kanon_pipeline`] under its leased budget; per-job
//!   pipelines are single-threaded, so one tenant's giant table cannot
//!   crowd out the rest.
//! - **Observability** ([`metrics`]) — Prometheus text at `/metrics`
//!   whose counters reconcile exactly: after a drain, accepted equals
//!   completed plus failed, a property `kanon bench-serve`
//!   ([`mod@bench`]) asserts end-to-end.
//!
//! - **Durable tables** ([`tables`]) — when started with a data
//!   directory, the server mounts one
//!   [`kanon_pipeline::delta::DeltaStore`] per tenant table behind
//!   `/v1/tables/{name}`: crash-safe batch appends whose WAL doubles as
//!   the job log, startup recovery that replays every table (quarantining
//!   corrupt ones instead of dying), and streamed releases served from a
//!   cache readers never block writers for.
//!
//! Endpoints: `POST /v1/anonymize` (CSV body or `path=`; query `k`,
//! `shard_size`, `deadline_ms`, `max_memory_mb`, `strategy`, `quasi`),
//! `GET /v1/jobs/{id}`, `PUT`/`GET`/`DELETE /v1/tables/{name}`,
//! `POST /v1/tables/{name}/ops`, `GET /v1/tables/{name}/release`,
//! `GET /healthz`, `GET /readyz`, `GET /metrics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod config;
pub mod error;
pub mod http;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod router;
pub mod server;
pub mod tables;

pub use bench::{run_bench, BenchConfig, BenchReport};
pub use config::ServiceConfig;
pub use error::{Error, Result};
pub use server::{Server, ServiceState};
