//! The server proper: accept loop, connection handlers, job workers, and
//! the admission decision that ties the queue and the memory pool
//! together.
//!
//! Threading model: one owner thread runs a `std::thread::scope`
//! containing the acceptor (the scope's main flow), `http_threads`
//! connection handlers fed over a bounded channel, and `workers` job
//! solvers feeding from the [`JobQueue`]. Scoped threads mean shutdown is
//! structural — the owner thread cannot return while any handler or
//! worker is alive, so a joined [`Server`] has provably no stragglers.
//!
//! Admission is two gates, both non-blocking: a [`BudgetPool`] lease for
//! the job's memory cap, then a bounded queue slot. Either refusal
//! answers `429` with `Retry-After` *before* the job exists anywhere, so
//! a rejected submission leaves no record, no lease, and no queue entry.

use std::io::{BufReader, Read};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kanon_core::BudgetPool;
use kanon_pipeline::json::JsonObject;
use kanon_pipeline::{run_csv_private_with_progress, run_csv_with_progress, CsvRun};
use kanon_pipeline::{PipelineConfig, Progress};
use kanon_privacy::PrivacyModel;
use kanon_relation::linkage_attack;

use crate::config::ServiceConfig;
use crate::error::Result;
use crate::http::{read_request, write_response, Reject, Request, Response};
use crate::job::{AttackSummary, JobId, JobStore};
use crate::metrics::Metrics;
use crate::queue::{JobQueue, PushError};
use crate::router::{route, Route, SubmitParams};
use crate::tables::{self, TableRegistry};

/// Where a job's CSV comes from.
#[derive(Debug)]
enum JobSource {
    /// The request body, held in memory.
    Inline(Vec<u8>),
    /// A server-side file path (out-of-core submissions).
    Path(String),
}

/// An admitted job waiting for a worker. Dropping it releases its pool
/// lease (and cancels its budget), so a job can never leak reserved
/// memory, whatever path it exits through.
pub struct QueuedJob {
    id: JobId,
    params: SubmitParams,
    source: JobSource,
    lease: kanon_core::BudgetLease,
}

/// Shared state every thread in the server sees.
pub struct ServiceState {
    /// The configuration the server started with.
    pub config: ServiceConfig,
    /// Live counters served at `/metrics`.
    pub metrics: Metrics,
    /// Every admitted job's record, served at `/v1/jobs/{id}`.
    pub jobs: JobStore,
    /// The bounded admission queue.
    pub queue: JobQueue<QueuedJob>,
    /// The global memory pool jobs lease from.
    pub pool: BudgetPool,
    /// Durable tenant tables, when the server was started with a data
    /// directory (`None` disables the `/v1/tables` endpoints).
    pub tables: Option<TableRegistry>,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, drains queued jobs, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    owner: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the thread pool, and returns once the server accepts
    /// connections.
    ///
    /// # Errors
    /// [`crate::Error::Config`] for an invalid configuration,
    /// [`crate::Error::Io`] when the listen address cannot be bound.
    pub fn start(config: ServiceConfig) -> Result<Server> {
        config.validate()?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let tables = match &config.data_dir {
            Some(dir) => Some(TableRegistry::open(dir)?),
            None => None,
        };
        let state = Arc::new(ServiceState {
            metrics: Metrics::new(),
            jobs: JobStore::new(),
            queue: JobQueue::new(config.queue_depth),
            pool: BudgetPool::new(config.pool_memory_bytes),
            tables,
            config,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let owner = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve(&listener, &state, &stop))
        };
        Ok(Server {
            addr,
            state,
            stop,
            owner: Some(owner),
        })
    }

    /// The bound listen address (resolves port `0` requests).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's shared state — metrics and job records — for
    /// in-process inspection by tests and the load generator.
    #[must_use]
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Stops accepting, drains queued jobs, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(owner) = self.owner.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway connection wakes it
        // so it can observe the stop flag.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        let _ = owner.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The owner thread's body: everything lives inside one scope, so
/// returning from here means every handler and worker has exited.
fn serve(listener: &TcpListener, state: &Arc<ServiceState>, stop: &AtomicBool) {
    std::thread::scope(|scope| {
        // Recovery replays every table's WAL concurrently with serving:
        // the listener is already accepting, and tables answer 503 with
        // Retry-After until their replay lands (or quarantines them).
        if let Some(tables) = &state.tables {
            if tables.recovering() {
                scope.spawn(|| tables.recover(state));
            }
        }

        for _ in 0..state.config.workers {
            scope.spawn(|| {
                while let Some(job) = state.queue.pop() {
                    run_job(state, job);
                }
            });
        }

        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(state.config.http_threads * 2);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for _ in 0..state.config.http_threads {
            let conn_rx = Arc::clone(&conn_rx);
            scope.spawn(move || loop {
                let next = conn_rx.lock().expect("conn channel lock").recv();
                match next {
                    Ok(stream) => handle_connection(state, &stream),
                    Err(_) => break,
                }
            });
        }

        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
        }
        // Dropping the sender stops the handlers; closing the queue lets
        // the workers drain what was admitted, then exit.
        drop(conn_tx);
        state.queue.close();
    });
}

/// Handles exactly one request on `stream` and closes it.
fn handle_connection(state: &ServiceState, stream: &TcpStream) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    let mut reader = BufReader::new(stream);
    let parsed = read_request(
        &mut reader,
        state.config.max_head_bytes,
        state.config.max_body_bytes,
    );
    let response = match parsed {
        // Transport failure (client vanished, socket timeout): nothing to
        // answer, nothing to record.
        Err(_) => return,
        Ok(Err(reject)) => reject_response(&reject),
        Ok(Ok(request)) => dispatch(state, request),
    };
    let mut writer = stream;
    let _ = write_response(&mut writer, &response);
    state
        .metrics
        .record_response(response.status, started.elapsed());
}

fn reject_response(reject: &Reject) -> Response {
    let mut obj = JsonObject::new();
    obj.string("error", &reject.reason);
    Response::json(reject.status, obj.finish())
}

fn dispatch(state: &ServiceState, request: Request) -> Response {
    match route(&request) {
        Err(reject) => reject_response(&reject),
        Ok(Route::Health) => health_response(state),
        Ok(Route::Ready) => ready_response(state),
        Ok(Route::Metrics) => Response::text(
            200,
            state
                .metrics
                .render(state.queue.depth(), state.pool.total(), state.pool.leased()),
        ),
        Ok(Route::JobStatus(id)) => match state.jobs.render(id) {
            Some(json) => Response::json(200, json),
            None => reject_response(&Reject {
                status: 404,
                reason: format!("unknown job {id}"),
            }),
        },
        Ok(Route::Submit(params)) => admit(state, params, request.body),
        Ok(Route::TableCreate(name, params)) => {
            tables::handle_create(state, &name, &params, &request.body)
        }
        Ok(Route::TableOps(name, params)) => {
            tables::handle_ops(state, &name, &params, &request.body)
        }
        Ok(Route::TableRelease(name)) => tables::handle_release(state, &name),
        Ok(Route::TableStatus(name)) => tables::handle_status(state, &name),
        Ok(Route::TableDelete(name)) => tables::handle_delete(state, &name),
    }
}

/// Liveness: always `200` while the process serves requests, but the
/// status string flips to `"degraded"` (and the quarantined tables are
/// named) when recovery is still replaying or any table refused its WAL.
fn health_response(state: &ServiceState) -> Response {
    let (body, _) = health_body(state);
    Response::json(200, body)
}

/// Readiness: `503` while recovery is replaying or any table is
/// quarantined, so load balancers stop routing before clients see the
/// per-table `503`s; `200 ok` otherwise.
fn ready_response(state: &ServiceState) -> Response {
    let (body, degraded) = health_body(state);
    if degraded {
        let mut response = Response::json(503, body);
        response
            .extra_headers
            .push(("Retry-After".to_string(), "1".to_string()));
        return response;
    }
    Response::json(200, body)
}

fn health_body(state: &ServiceState) -> (String, bool) {
    let mut obj = JsonObject::new();
    let mut degraded = false;
    if let Some(tables) = &state.tables {
        let recovering = tables.recovering();
        let quarantined = tables.quarantined_names();
        degraded = recovering || !quarantined.is_empty();
        obj.boolean("recovering", recovering);
        let listed: Vec<String> = quarantined.iter().map(|n| format!("\"{n}\"")).collect();
        obj.raw("quarantined", &format!("[{}]", listed.join(",")));
        obj.number("tables", tables.len() as u128);
    }
    obj.string("status", if degraded { "degraded" } else { "ok" })
        .number("queue_depth", state.queue.depth() as u128)
        .number("workers", state.config.workers as u128)
        .number("pool_available_bytes", u128::from(state.pool.available()));
    (obj.finish(), degraded)
}

/// The admission decision: validate, lease memory, take a queue slot.
fn admit(state: &ServiceState, params: SubmitParams, body: Vec<u8>) -> Response {
    let k = params.k;
    let shard_size = params
        .shard_size
        .unwrap_or_else(|| PipelineConfig::default().shard_size);
    let band_floor = 2 * k - 1;
    if shard_size < band_floor {
        return reject_response(&Reject {
            status: 400,
            reason: format!(
                "shard_size {shard_size} is below 2k-1 = {band_floor}; no shard could \
                 hold a (k, 2k-1) band group"
            ),
        });
    }
    let source = match &params.path {
        Some(path) => JobSource::Path(path.clone()),
        None if body.is_empty() => {
            return reject_response(&Reject {
                status: 400,
                reason: "empty body (send CSV, or pass path= for a server-side file)".into(),
            })
        }
        None => JobSource::Inline(body),
    };
    let memory_bytes = match params.max_memory_mb {
        Some(mb) => mb.saturating_mul(1024 * 1024),
        None => state.config.default_job_memory_bytes,
    };
    if memory_bytes > state.pool.total() {
        return reject_response(&Reject {
            status: 400,
            reason: format!(
                "max_memory_mb asks for {memory_bytes} bytes but the whole pool is \
                 {} bytes; this job could never be admitted",
                state.pool.total()
            ),
        });
    }
    let deadline = params
        .deadline_ms
        .map(Duration::from_millis)
        .or(state.config.default_deadline);

    // Gate 1: lease the job's memory cap from the global pool.
    let lease = match state.pool.try_lease(memory_bytes, deadline) {
        Ok(lease) => lease,
        Err(_) => {
            state.metrics.record_admission(false);
            return too_busy("memory pool exhausted");
        }
    };
    // Gate 2: take a queue slot. The record is created first because the
    // queued job carries its id; a refused push removes it again, so a
    // 429 leaves no trace.
    let id = state.jobs.create(k);
    let job = QueuedJob {
        id,
        params,
        source,
        lease,
    };
    match state.queue.try_push(job) {
        Ok(()) => {
            state.metrics.record_admission(true);
            let mut obj = JsonObject::new();
            obj.number("id", u128::from(id)).string("state", "queued");
            let mut response = Response::json(202, obj.finish());
            response
                .extra_headers
                .push(("Location".to_string(), format!("/v1/jobs/{id}")));
            response
        }
        Err(PushError::Full(job) | PushError::Closed(job)) => {
            state.jobs.remove(job.id);
            drop(job); // releases the lease
            state.metrics.record_admission(false);
            too_busy("job queue full")
        }
    }
}

fn too_busy(reason: &str) -> Response {
    let mut obj = JsonObject::new();
    obj.string("error", reason);
    let mut response = Response::json(429, obj.finish());
    response
        .extra_headers
        .push(("Retry-After".to_string(), "1".to_string()));
    response
}

/// Pipeline worker threads each job may use: the machine's cores divided
/// evenly across the service's job slots, never below one. With the
/// historical default of as many job slots as cores this stays 1 (one
/// core per job); a service run with fewer slots than cores hands each
/// job its fair multi-core share instead of pinning it to one thread.
fn pipeline_workers_per_job(job_slots: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (cores / job_slots.max(1)).max(1)
}

/// Executes one admitted job on a worker thread.
fn run_job(state: &ServiceState, job: QueuedJob) {
    let QueuedJob {
        id,
        params,
        source,
        lease,
    } = job;
    state.jobs.set_running(id);
    let config = PipelineConfig {
        shard_size: params
            .shard_size
            .unwrap_or_else(|| PipelineConfig::default().shard_size),
        strategy: params.strategy.unwrap_or_default(),
        // Split the machine's cores across the job slots so concurrent
        // jobs cannot oversubscribe the box, while a lone job on a
        // multi-core machine still gets real pipeline parallelism.
        workers: Some(pipeline_workers_per_job(state.config.workers)),
        budget: lease.budget().clone(),
        ..PipelineConfig::default()
    };
    let on_progress = |event: Progress| match event {
        Progress::Planned { units, .. } => state.jobs.set_progress(id, 0, units),
        Progress::UnitSolved { done, units, .. } => state.jobs.set_progress(id, done, units),
        Progress::Merging => {}
    };
    let outcome = match source {
        JobSource::Inline(bytes) => run_source(bytes.as_slice(), &params, &config, &on_progress),
        JobSource::Path(path) => match std::fs::File::open(&path) {
            Ok(file) => run_source(
                BufReader::new(LimitedRead {
                    inner: file,
                    left: state.config.max_body_bytes,
                }),
                &params,
                &config,
                &on_progress,
            ),
            Err(e) => Err(kanon_pipeline::Error::Relation(kanon_relation::Error::Io(
                e.to_string(),
            ))),
        },
    };
    match outcome {
        Ok(run) => {
            let k_anonymous = run.anonymization.table.is_k_anonymous(params.k);
            let privacy_verified = run.report.privacy.as_ref().map(|p| p.verified);
            let attack = measure_attack(&run);
            state.metrics.record_completed(&run.report);
            state
                .jobs
                .complete(id, run.report, k_anonymous, privacy_verified, attack);
        }
        Err(e) => {
            state.metrics.record_failed();
            state.jobs.fail(id, e.to_string());
        }
    }
    drop(lease);
}

/// Runs one CSV source through the plain pipeline, or the privacy-aware
/// path when the submission asked for a model beyond k or named a
/// sensitive column (which must stay out of the quasi-identifier even
/// under plain k).
fn run_source<R: Read>(
    reader: R,
    params: &SubmitParams,
    config: &PipelineConfig,
    on_progress: &(dyn Fn(Progress) + Sync),
) -> kanon_pipeline::Result<CsvRun> {
    // The router validated the spec string at admission; re-parsing here
    // cannot fail for routed traffic, but in-process callers get the
    // structured error instead of a panic.
    let model = match params.privacy.as_deref() {
        Some(spec) => PrivacyModel::parse(spec).map_err(kanon_pipeline::Error::Privacy)?,
        None => PrivacyModel::KOnly,
    };
    let quasi = params.quasi.as_deref();
    if model.requires_sensitive() || params.sensitive.is_some() {
        run_csv_private_with_progress(
            reader,
            params.k,
            quasi,
            params.sensitive.as_deref(),
            model,
            config,
            on_progress,
        )
    } else {
        run_csv_with_progress(reader, params.k, quasi, config, on_progress)
    }
}

/// Rows the post-completion linkage attack samples. The attack joins the
/// sample against the distinct released keys, so the cap keeps it a
/// bounded epilogue on huge jobs rather than a second job's worth of work.
const ATTACK_SAMPLE_CAP: usize = 20_000;

/// Measures the release the job just produced: its own original rows (up
/// to [`ATTACK_SAMPLE_CAP`]) play the attacker's external table, joined on
/// every quasi-identifier column, so the job status answers "what would a
/// linking attacker get back out of this release?". Returns `None` if the
/// replay fails in any way — the measurement is advisory and must never
/// turn a completed job into a failed one.
fn measure_attack(run: &CsvRun) -> Option<AttackSummary> {
    let (released, external) = kanon_pipeline::attack_tables(run, ATTACK_SAMPLE_CAP).ok()?;
    let names: Vec<&str> = run
        .quasi
        .iter()
        .map(|&j| run.codec.header()[j].as_str())
        .collect();
    let pairs: Vec<(&str, &str)> = names.iter().map(|&n| (n, n)).collect();
    let report = linkage_attack(&released, &external, &pairs).ok()?;
    Some(AttackSummary {
        attacked: report.attacked,
        unique_matches: report.unique_matches,
        expected_success: report.expected_success,
    })
}

/// Caps how much of a server-side file a job may read, mirroring the
/// inline body limit so `path=` is not a bigger hammer than an upload.
struct LimitedRead<R> {
    inner: R,
    left: usize,
}

impl<R: Read> Read for LimitedRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.left == 0 {
            // Distinguish "exactly at the limit" (EOF follows: fine) from
            // "file keeps going" (reject).
            let mut probe = [0u8; 1];
            return match self.inner.read(&mut probe)? {
                0 => Ok(0),
                _ => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "server-side file exceeds the body size limit",
                )),
            };
        }
        let cap = buf.len().min(self.left);
        let n = self.inner.read(&mut buf[..cap])?;
        self.left -= n;
        Ok(n)
    }
}
