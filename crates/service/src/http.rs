//! A deliberately small HTTP/1.1 implementation over `std::io` streams:
//! just enough protocol for the service's four endpoints, with hard limits
//! on head and body size so a hostile client cannot balloon memory.
//!
//! Unsupported protocol features are rejected, not ignored: chunked
//! transfer encoding gets `400` (the service requires `Content-Length` so
//! admission can bound body size *before* reading it), and every response
//! closes the connection (`Connection: close`), which keeps the handler
//! loop free of keep-alive state.

use std::io::{self, BufRead, Write};

/// A parsed request: method, target (path + query, still encoded), lowered
/// header names, and the full body.
#[derive(Debug)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target: path plus optional `?query`, percent-encoded.
    pub target: String,
    /// Headers with names lowercased; values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A protocol-level rejection the server answers with an error status
/// before closing the connection.
#[derive(Debug, PartialEq, Eq)]
pub struct Reject {
    /// HTTP status to answer with (`400`, `413`, ...).
    pub status: u16,
    /// Human-readable reason, sent in the response body.
    pub reason: String,
}

impl Reject {
    fn bad_request(reason: impl Into<String>) -> Self {
        Reject {
            status: 400,
            reason: reason.into(),
        }
    }
}

/// Reads one request head byte-by-byte up to `max_head_bytes`, then the
/// body per `Content-Length` up to `max_body_bytes`.
///
/// The outer `Err` is a transport failure (client vanished, socket
/// timeout) where no response can be sent; the inner `Err` is a protocol
/// rejection the caller should answer (`400` for malformed or oversized
/// heads, unsupported transfer encodings, and bad `Content-Length`
/// values; `413` for bodies over the limit).
///
/// # Errors
/// `io::Error` when the underlying stream fails or hits EOF mid-request.
pub fn read_request<R: BufRead>(
    stream: &mut R,
    max_head_bytes: usize,
    max_body_bytes: usize,
) -> io::Result<Result<Request, Reject>> {
    let head = match read_head(stream, max_head_bytes)? {
        Ok(head) => head,
        Err(reject) => return Ok(Err(reject)),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Ok(Err(Reject::bad_request(format!(
                "malformed request line: {request_line:?}"
            ))))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Ok(Err(Reject::bad_request(format!(
            "unsupported protocol version {version:?}"
        ))));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(Err(Reject::bad_request(format!(
                "malformed header line: {line:?}"
            ))));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Ok(Err(Reject::bad_request(
            "transfer-encoding is not supported; send Content-Length",
        )));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Ok(Err(Reject::bad_request(format!(
                    "bad Content-Length: {raw:?}"
                ))))
            }
        },
    };
    if content_length > max_body_bytes {
        return Ok(Err(Reject {
            status: 413,
            reason: format!(
                "body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"
            ),
        }));
    }

    let mut request = request;
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Ok(request))
}

/// Reads up to and including the blank line that ends the head. Returns
/// the head text without the trailing `\r\n\r\n`.
fn read_head<R: BufRead>(
    stream: &mut R,
    max_head_bytes: usize,
) -> io::Result<Result<String, Reject>> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "client closed the connection mid-head",
                ))
            }
            _ => head.push(byte[0]),
        }
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            break;
        }
        if head.len() > max_head_bytes {
            return Ok(Err(Reject::bad_request(format!(
                "request head exceeds the {max_head_bytes}-byte limit"
            ))));
        }
    }
    match String::from_utf8(head) {
        Ok(text) => Ok(Ok(text)),
        Err(_) => Ok(Err(Reject::bad_request("request head is not UTF-8"))),
    }
}

/// A response to serialize. Every response carries `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) appended verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }
}

/// Status reason phrases for the codes the service emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `response` onto `stream` and flushes.
///
/// # Errors
/// `io::Error` when the client has gone away or the socket times out.
pub fn write_response<W: Write>(stream: &mut W, response: &Response) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    )?;
    for (name, value) in &response.extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Splits a request target into its path and decoded `key=value` query
/// pairs. Percent-escapes and `+` are decoded in both keys and values;
/// a malformed escape leaves the original text in place.
#[must_use]
pub fn split_target(target: &str) -> (&str, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut pairs = Vec::new();
    for piece in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = piece.split_once('=').unwrap_or((piece, ""));
        pairs.push((percent_decode(key), percent_decode(value)));
    }
    (path, pairs)
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> io::Result<Result<Request, Reject>> {
        read_request(&mut BufReader::new(raw), 1024, 4096)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/anonymize?k=3 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/anonymize?k=3");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_protocol_garbage() {
        for raw in [
            &b"NOT A REQUEST LINE AT ALL\r\n\r\n"[..],
            &b"GET noslash HTTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/9.9\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            let reject = parse(raw).unwrap().unwrap_err();
            assert_eq!(reject.status, 400, "for {:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn oversized_head_is_400_and_oversized_body_is_413() {
        let mut big_head = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        big_head.extend(std::iter::repeat_n(b'a', 2048));
        big_head.extend(b"\r\n\r\n");
        assert_eq!(parse(&big_head).unwrap().unwrap_err().status, 400);

        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert_eq!(parse(big_body).unwrap().unwrap_err().status, 413);
    }

    #[test]
    fn early_disconnect_is_a_transport_error() {
        assert!(parse(b"GET / HT").is_err());
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
    }

    #[test]
    fn response_serialization_includes_close_and_length() {
        let mut out = Vec::new();
        let mut resp = Response::json(202, "{\"id\":1}".to_string());
        resp.extra_headers
            .push(("Retry-After".to_string(), "1".to_string()));
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":1}"));
    }

    #[test]
    fn target_splitting_decodes_queries() {
        let (path, pairs) = split_target("/v1/anonymize?k=3&path=%2Ftmp%2Fa+b.csv&flag");
        assert_eq!(path, "/v1/anonymize");
        assert_eq!(
            pairs,
            vec![
                ("k".to_string(), "3".to_string()),
                ("path".to_string(), "/tmp/a b.csv".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        let (path, pairs) = split_target("/healthz");
        assert_eq!(path, "/healthz");
        assert!(pairs.is_empty());
    }

    #[test]
    fn percent_decoding_tolerates_malformed_escapes() {
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("a%zz"), "a%zz");
        assert_eq!(percent_decode("100%25"), "100%");
    }
}
