//! Durable multi-tenant tables: the [`kanon_pipeline::delta::DeltaStore`]
//! mounted behind HTTP.
//!
//! Each table lives in its own subdirectory of the service's data
//! directory and is owned by a [`TableEntry`] whose `state` mutex is the
//! **single-writer lock**: mutating requests (`PUT`, `POST .../ops`,
//! `DELETE`) take it with `try_lock`, and a concurrent writer is answered
//! `409` + `Retry-After` instead of queueing — admission stays
//! non-blocking, exactly like the job path. Readers never take that lock
//! on the hot path: every successful init/apply refreshes a cached copy of
//! the current release under the writer lock, and `GET .../release`
//! serves the cache through an `RwLock` read guard, so a long re-solve
//! never blocks snapshot readers and a reader never blocks the writer.
//!
//! ## Recovery and quarantine
//!
//! Startup scans the data directory and registers every table as
//! `Loading`, then a recovery thread replays each store's WAL in the
//! background while the server is already accepting traffic. A torn WAL
//! tail is truncated silently (the batch never happened); a CRC failure
//! inside the committed prefix — or any other open failure — moves the
//! table to `Quarantined` instead of killing the server: the table
//! answers `503` with a structured error, `/healthz` reports `degraded`
//! with the quarantined names, and healthy tables keep serving. The only
//! exit from quarantine is `DELETE` (operator decision), because serving
//! bytes the checksums disown would be worse than refusing.
//!
//! ## WAL as the job log
//!
//! A `200` on `POST .../ops` is issued only after the batch's single WAL
//! record is fsynced, and the response carries the batch's sequence
//! number. The WAL therefore *is* the job log: after any crash,
//! `GET /v1/tables/{name}` reports a `seq` equal to exactly the number of
//! acknowledged batches — `accepted == applied` reconciles across
//! restarts with no separate bookkeeping to drift.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, TryLockError};
use std::time::Instant;

use kanon_core::govern::Budget;
use kanon_core::BudgetLease;
use kanon_pipeline::delta::{DeltaConfig, DeltaStore};
use kanon_pipeline::json::JsonObject;

use crate::http::{Reject, Response};
use crate::router::{TableOpsParams, TableParams};
use crate::server::ServiceState;

/// What a table is currently able to do.
enum TableState {
    /// Recovery replay (or initial creation) has not finished yet.
    Loading,
    /// Open and serving. The store owns the directory's single-writer
    /// lock for as long as it lives here.
    Ready(Box<DeltaStore>),
    /// Durable state failed an integrity check; the reason is served with
    /// every `503` until an operator deletes the table.
    Quarantined(String),
}

/// One table's slot in the registry.
pub struct TableEntry {
    name: String,
    /// The single-writer lock. Writers `try_lock`; contention is `409`.
    state: Mutex<TableState>,
    /// Cached bytes of the last released CSV, refreshed after every
    /// successful init/apply. Readers serve this without `state`.
    release: RwLock<Option<Arc<Vec<u8>>>>,
    /// Lock-free mirrors for status under writer contention.
    seq: AtomicU64,
    n_rows: AtomicU64,
    quarantined: AtomicBool,
}

impl TableEntry {
    fn new(name: &str) -> Self {
        TableEntry {
            name: name.to_string(),
            state: Mutex::new(TableState::Loading),
            release: RwLock::new(None),
            seq: AtomicU64::new(0),
            n_rows: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
        }
    }

    /// Updates the lock-free mirrors and release cache from a ready store.
    /// Called with the writer lock held.
    fn publish(&self, store: &mut DeltaStore) -> Result<(), kanon_pipeline::Error> {
        let release = store.release()?;
        let mut bytes = Vec::new();
        release
            .write_csv(&mut bytes)
            .map_err(|e| kanon_pipeline::Error::Store(kanon_store::Error::Io(e)))?;
        *self.release.write().expect("release cache lock") = Some(Arc::new(bytes));
        self.seq.store(store.seq(), Ordering::Relaxed);
        self.n_rows.store(store.n_rows() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn quarantine(
        &self,
        guard: &mut MutexGuard<'_, TableState>,
        reason: String,
        state: &ServiceState,
    ) {
        **guard = TableState::Quarantined(reason);
        self.quarantined.store(true, Ordering::Relaxed);
        *self.release.write().expect("release cache lock") = None;
        state.metrics.table(&self.name, |t| t.quarantined = true);
    }
}

/// The registry of durable tables, mounted when the service is started
/// with a data directory.
pub struct TableRegistry {
    data_dir: PathBuf,
    tables: RwLock<BTreeMap<String, Arc<TableEntry>>>,
    recovering: AtomicBool,
}

impl TableRegistry {
    /// Opens (creating if absent) the registry over `data_dir` and
    /// registers every existing table directory as `Loading`. The actual
    /// WAL replay happens on the recovery thread ([`Self::recover`]) so
    /// binding the listen socket is never delayed by a long replay.
    ///
    /// # Errors
    /// I/O errors scanning or creating the data directory.
    pub fn open(data_dir: impl Into<PathBuf>) -> std::io::Result<TableRegistry> {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)?;
        let mut tables = BTreeMap::new();
        for dir_entry in std::fs::read_dir(&data_dir)? {
            let dir_entry = dir_entry?;
            if !dir_entry.file_type()?.is_dir() {
                continue;
            }
            let Ok(name) = dir_entry.file_name().into_string() else {
                continue;
            };
            if validate_table_name(&name).is_err() {
                continue;
            }
            if dir_entry.path().join("state.snap").exists() {
                tables.insert(name.clone(), Arc::new(TableEntry::new(&name)));
            }
        }
        let recovering = !tables.is_empty();
        Ok(TableRegistry {
            data_dir,
            tables: RwLock::new(tables),
            recovering: AtomicBool::new(recovering),
        })
    }

    /// Replays every registered table's WAL, moving it to `Ready` or
    /// `Quarantined`. Runs on a background thread inside the server's
    /// scope; tables answer `503` + `Retry-After` until their replay
    /// lands. Recovery is charged to the operator (an unlimited budget),
    /// not to a tenant lease: the work restores state tenants already
    /// paid to write.
    pub fn recover(&self, state: &ServiceState) {
        let entries: Vec<Arc<TableEntry>> = self
            .tables
            .read()
            .expect("tables lock")
            .values()
            .cloned()
            .collect();
        for entry in entries {
            let started = Instant::now();
            let opened = DeltaStore::open(self.table_dir(&entry.name), Budget::unlimited());
            let mut guard = entry.state.lock().expect("table state lock");
            match opened {
                Ok(mut store) => match entry.publish(&mut store) {
                    Ok(()) => {
                        let status = store.status();
                        state.metrics.table(&entry.name, |t| {
                            t.wal_bytes = status.wal_bytes;
                            t.recovery_seconds = started.elapsed().as_secs_f64();
                        });
                        *guard = TableState::Ready(Box::new(store));
                    }
                    Err(e) => {
                        entry.quarantine(&mut guard, e.to_string(), state);
                        state.metrics.table(&entry.name, |t| {
                            t.recovery_seconds = started.elapsed().as_secs_f64()
                        });
                    }
                },
                Err(e) => {
                    entry.quarantine(&mut guard, e.to_string(), state);
                    state.metrics.table(&entry.name, |t| {
                        t.recovery_seconds = started.elapsed().as_secs_f64()
                    });
                }
            }
        }
        self.recovering.store(false, Ordering::SeqCst);
    }

    /// True while the startup recovery pass is still replaying WALs.
    #[must_use]
    pub fn recovering(&self) -> bool {
        self.recovering.load(Ordering::SeqCst)
    }

    /// Names of quarantined tables, for `/healthz` and `/readyz`.
    #[must_use]
    pub fn quarantined_names(&self) -> Vec<String> {
        self.tables
            .read()
            .expect("tables lock")
            .values()
            .filter(|e| e.quarantined.load(Ordering::Relaxed))
            .map(|e| e.name.clone())
            .collect()
    }

    /// Registered table count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.read().expect("tables lock").len()
    }

    /// True when no tables are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn table_dir(&self, name: &str) -> PathBuf {
        self.data_dir.join(name)
    }

    fn entry(&self, name: &str) -> Option<Arc<TableEntry>> {
        self.tables.read().expect("tables lock").get(name).cloned()
    }
}

/// Rejects any table name that could escape the data directory or
/// confuse the filesystem: ASCII alphanumerics, `-`, and `_` only, at
/// most 64 bytes.
pub fn validate_table_name(name: &str) -> Result<(), Reject> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
    if ok {
        Ok(())
    } else {
        Err(Reject {
            status: 400,
            reason: format!("bad table name {name:?} (use 1-64 ASCII alphanumerics, '-', '_')"),
        })
    }
}

// ---------------------------------------------------------------------
// HTTP handlers
// ---------------------------------------------------------------------

fn error_json(status: u16, reason: &str) -> Response {
    let mut obj = JsonObject::new();
    obj.string("error", reason);
    Response::json(status, obj.finish())
}

fn retryable(status: u16, reason: &str) -> Response {
    let mut response = error_json(status, reason);
    response
        .extra_headers
        .push(("Retry-After".to_string(), "1".to_string()));
    response
}

/// The `503` a quarantined table answers with: structured, with the
/// integrity failure spelled out so the operator can decide.
fn quarantined_response(name: &str, reason: &str) -> Response {
    let mut obj = JsonObject::new();
    obj.string("error", "table quarantined")
        .string("table", name)
        .string("detail", reason);
    Response::json(503, obj.finish())
}

fn no_registry() -> Response {
    error_json(
        503,
        "table serving is disabled (start the server with --data-dir)",
    )
}

fn unknown_table(name: &str) -> Response {
    error_json(404, &format!("unknown table {name:?}"))
}

/// Leases a tenant budget for one table operation. `Err` is the `429`.
fn lease_for(
    state: &ServiceState,
    max_memory_mb: Option<u64>,
    deadline_ms: Option<u64>,
) -> Result<BudgetLease, Response> {
    let memory_bytes = match max_memory_mb {
        Some(mb) => mb.saturating_mul(1024 * 1024),
        None => state.config.default_job_memory_bytes,
    };
    if memory_bytes > state.pool.total() {
        return Err(error_json(
            400,
            &format!(
                "max_memory_mb asks for {memory_bytes} bytes but the whole pool is {} bytes",
                state.pool.total()
            ),
        ));
    }
    let deadline = deadline_ms
        .map(std::time::Duration::from_millis)
        .or(state.config.default_deadline);
    state
        .pool
        .try_lease(memory_bytes, deadline)
        .map_err(|_| retryable(429, "memory pool exhausted"))
}

/// `PUT /v1/tables/{name}` — initialize a table from the CSV body.
pub fn handle_create(
    state: &ServiceState,
    name: &str,
    params: &TableParams,
    body: &[u8],
) -> Response {
    let Some(registry) = &state.tables else {
        return no_registry();
    };
    if body.is_empty() {
        return error_json(400, "empty body (send the initial table as CSV)");
    }
    // Reserve the name atomically; a lost race is a hard conflict, not a
    // retry — the other creator's table now exists.
    let entry = {
        let mut tables = registry.tables.write().expect("tables lock");
        if tables.contains_key(name) {
            return error_json(409, &format!("table {name:?} already exists"));
        }
        let entry = Arc::new(TableEntry::new(name));
        tables.insert(name.to_string(), Arc::clone(&entry));
        entry
    };
    let mut guard = entry.state.lock().expect("table state lock");

    let cleanup = |registry: &TableRegistry| {
        registry.tables.write().expect("tables lock").remove(name);
        let _ = std::fs::remove_dir_all(registry.table_dir(name));
    };
    let lease = match lease_for(state, params.max_memory_mb, params.deadline_ms) {
        Ok(lease) => lease,
        Err(response) => {
            cleanup(registry);
            return response;
        }
    };
    let config = DeltaConfig {
        k: params.k,
        shard_size: params
            .shard_size
            .unwrap_or_else(|| DeltaConfig::new(params.k).shard_size),
        n_buckets: params.buckets,
        quasi: params.quasi.clone(),
        budget: lease.budget().clone(),
    };
    match DeltaStore::init(registry.table_dir(name), body, &config) {
        Ok(mut store) => {
            // The lease dies with this request; the store must not keep a
            // budget that cancellation would poison.
            store.set_budget(Budget::unlimited());
            if let Err(e) = entry.publish(&mut store) {
                drop(store);
                cleanup(registry);
                return error_json(500, &format!("init release failed: {e}"));
            }
            let status = store.status();
            state.metrics.table(name, |t| {
                t.wal_bytes = status.wal_bytes;
            });
            *guard = TableState::Ready(Box::new(store));
            let mut obj = JsonObject::new();
            obj.string("table", name)
                .string("state", "ready")
                .raw("status", &status.to_json());
            let mut response = Response::json(201, obj.finish());
            response
                .extra_headers
                .push(("Location".to_string(), format!("/v1/tables/{name}")));
            response
        }
        Err(e) => {
            cleanup(registry);
            match &e {
                kanon_pipeline::Error::Store(_) => error_json(500, &e.to_string()),
                // Bad CSV, bad k, bad quasi columns: the client's fault.
                _ => error_json(400, &e.to_string()),
            }
        }
    }
}

/// `POST /v1/tables/{name}/ops` — apply one atomic batch of delta ops.
pub fn handle_ops(
    state: &ServiceState,
    name: &str,
    params: &TableOpsParams,
    body: &[u8],
) -> Response {
    let Some(registry) = &state.tables else {
        return no_registry();
    };
    let Some(entry) = registry.entry(name) else {
        return unknown_table(name);
    };
    let mut guard = match entry.state.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::WouldBlock) => {
            state.metrics.table(name, |t| t.write_conflicts += 1);
            return retryable(409, &format!("table {name:?} has a writer in flight"));
        }
        Err(TryLockError::Poisoned(_)) => {
            return error_json(500, "table state poisoned by a panicked writer")
        }
    };
    match &mut *guard {
        TableState::Loading => retryable(503, &format!("table {name:?} is recovering")),
        TableState::Quarantined(reason) => quarantined_response(name, reason),
        TableState::Ready(store) => {
            let lease = match lease_for(state, params.max_memory_mb, params.deadline_ms) {
                Ok(lease) => lease,
                Err(response) => return response,
            };
            // All work this request does — re-solves, replay buffers, and
            // any WAL rotation `apply` triggers — bills this lease.
            store.set_budget(lease.budget().clone());
            let ops = match store.parse_ops(body) {
                Ok(ops) => ops,
                Err(e) => {
                    store.set_budget(Budget::unlimited());
                    return error_json(400, &e.to_string());
                }
            };
            let applied = store.apply(&ops);
            let response = match applied {
                Ok(report) => match entry.publish(store) {
                    Ok(()) => {
                        state.metrics.table(name, |t| {
                            t.batches_applied += 1;
                            t.ops_applied +=
                                (report.inserted + report.deleted + report.updated) as u64;
                            t.resolved_units += report.resolved_units as u64;
                            t.wal_bytes = report.wal_bytes;
                        });
                        Response::json(200, report.to_json())
                    }
                    Err(e) => {
                        // The batch is durable (the WAL append succeeded)
                        // but the merged release could not be built; drop
                        // the stale cache rather than serve old bytes.
                        *entry.release.write().expect("release cache lock") = None;
                        entry.seq.store(store.seq(), Ordering::Relaxed);
                        error_json(
                            500,
                            &format!("batch {} persisted but release failed: {e}", report.seq),
                        )
                    }
                },
                Err(e) if e.is_corruption() => {
                    let reason = e.to_string();
                    entry.quarantine(&mut guard, reason.clone(), state);
                    return quarantined_response(name, &reason);
                }
                Err(e @ kanon_pipeline::Error::Delta(_)) => error_json(400, &e.to_string()),
                Err(e) => error_json(500, &e.to_string()),
            };
            // The lease dies with this request; never leave the store
            // holding a budget its cancellation would poison.
            if let TableState::Ready(store) = &mut *guard {
                store.set_budget(Budget::unlimited());
            }
            response
        }
    }
}

/// `GET /v1/tables/{name}/release` — the current anonymized CSV.
pub fn handle_release(state: &ServiceState, name: &str) -> Response {
    let Some(registry) = &state.tables else {
        return no_registry();
    };
    let Some(entry) = registry.entry(name) else {
        return unknown_table(name);
    };
    if entry.quarantined.load(Ordering::Relaxed) {
        // Never serve bytes whose durable backing failed its checksums,
        // even from cache.
        let reason = match &*entry.state.lock().expect("table state lock") {
            TableState::Quarantined(reason) => reason.clone(),
            _ => "quarantined".to_string(),
        };
        return quarantined_response(name, &reason);
    }
    let cached = entry.release.read().expect("release cache lock").clone();
    if let Some(bytes) = cached {
        return Response {
            status: 200,
            content_type: "text/csv; charset=utf-8",
            extra_headers: Vec::new(),
            body: bytes.as_ref().clone(),
        };
    }
    // No cache (recovery finished without a release, or a failed publish
    // invalidated it): compute one, but never behind a live writer.
    let mut guard = match entry.state.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::WouldBlock) => {
            return retryable(
                503,
                &format!("table {name:?} has no cached release yet and a writer is in flight"),
            )
        }
        Err(TryLockError::Poisoned(_)) => {
            return error_json(500, "table state poisoned by a panicked writer")
        }
    };
    match &mut *guard {
        TableState::Loading => retryable(503, &format!("table {name:?} is recovering")),
        TableState::Quarantined(reason) => quarantined_response(name, reason),
        TableState::Ready(store) => {
            let lease = match lease_for(state, None, None) {
                Ok(lease) => lease,
                Err(response) => return response,
            };
            store.set_budget(lease.budget().clone());
            let published = entry.publish(store);
            store.set_budget(Budget::unlimited());
            match published {
                Ok(()) => {
                    let bytes = entry
                        .release
                        .read()
                        .expect("release cache lock")
                        .clone()
                        .expect("publish filled the cache");
                    Response {
                        status: 200,
                        content_type: "text/csv; charset=utf-8",
                        extra_headers: Vec::new(),
                        body: bytes.as_ref().clone(),
                    }
                }
                Err(e) if e.is_corruption() => {
                    let reason = e.to_string();
                    entry.quarantine(&mut guard, reason.clone(), state);
                    quarantined_response(name, &reason)
                }
                Err(e) => error_json(500, &e.to_string()),
            }
        }
    }
}

/// `GET /v1/tables/{name}` — status. Never blocks on the writer lock:
/// under contention it serves the lock-free mirrors.
pub fn handle_status(state: &ServiceState, name: &str) -> Response {
    let Some(registry) = &state.tables else {
        return no_registry();
    };
    let Some(entry) = registry.entry(name) else {
        return unknown_table(name);
    };
    let response = match entry.state.try_lock() {
        Ok(guard) => match &*guard {
            TableState::Loading => retryable(503, &format!("table {name:?} is recovering")),
            TableState::Quarantined(reason) => quarantined_response(name, reason),
            TableState::Ready(store) => {
                let mut obj = JsonObject::new();
                obj.string("table", name)
                    .string("state", "ready")
                    .raw("status", &store.status().to_json());
                Response::json(200, obj.finish())
            }
        },
        Err(TryLockError::WouldBlock) => {
            let mut obj = JsonObject::new();
            obj.string("table", name)
                .string("state", "busy")
                .number("seq", u128::from(entry.seq.load(Ordering::Relaxed)))
                .number("n_rows", u128::from(entry.n_rows.load(Ordering::Relaxed)));
            Response::json(200, obj.finish())
        }
        Err(TryLockError::Poisoned(_)) => {
            error_json(500, "table state poisoned by a panicked writer")
        }
    };
    response
}

/// `DELETE /v1/tables/{name}` — drop the table and its durable state.
/// This is also the operator's way out of quarantine.
pub fn handle_delete(state: &ServiceState, name: &str) -> Response {
    let Some(registry) = &state.tables else {
        return no_registry();
    };
    let Some(entry) = registry.entry(name) else {
        return unknown_table(name);
    };
    let mut guard = match entry.state.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::WouldBlock) => {
            state.metrics.table(name, |t| t.write_conflicts += 1);
            return retryable(409, &format!("table {name:?} has a writer in flight"));
        }
        Err(TryLockError::Poisoned(_)) => {
            return error_json(500, "table state poisoned by a panicked writer")
        }
    };
    if matches!(&*guard, TableState::Loading) {
        return retryable(503, &format!("table {name:?} is recovering"));
    }
    // Drop the store first so its directory lock is released before the
    // directory goes away.
    let previous = std::mem::replace(&mut *guard, TableState::Quarantined("deleted".to_string()));
    drop(previous);
    registry.tables.write().expect("tables lock").remove(name);
    state.metrics.remove_table(name);
    if let Err(e) = remove_table_dir(&registry.table_dir(name)) {
        return error_json(
            500,
            &format!("table removed from serving but its directory could not be deleted: {e}"),
        );
    }
    let mut obj = JsonObject::new();
    obj.string("deleted", name);
    Response::json(200, obj.finish())
}

fn remove_table_dir(dir: &Path) -> std::io::Result<()> {
    match std::fs::remove_dir_all(dir) {
        Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_names_are_strictly_validated() {
        for good in ["t", "orders-2024", "a_b_c", "X9"] {
            assert!(validate_table_name(good).is_ok(), "{good}");
        }
        for bad in ["", ".", "..", "a/b", "a.b", "a b", "naïve", &"x".repeat(65)] {
            assert!(validate_table_name(bad).is_err(), "{bad}");
        }
    }
}
