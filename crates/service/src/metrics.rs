//! Live service counters and their Prometheus text exposition.
//!
//! The registry is append-only atomics (plus two small mutexed maps for
//! labelled families), so recording from connection handlers and job
//! workers never contends beyond a cache line. Scraping renders the
//! classic text format: `# HELP` / `# TYPE` preambles, counters suffixed
//! `_total`, and a fixed-bucket latency histogram — fixed so that two
//! scrapes are always bucket-compatible, no matter what traffic arrived
//! in between.
//!
//! The designed invariant, asserted end-to-end by `kanon bench-serve`:
//! every admitted job ends in exactly one of `completed` or `failed`, so
//! after a drain `accepted_total == completed_total + failed_total`, and
//! `accepted + rejected` equals the submissions the load generator made.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use kanon_pipeline::PipelineReport;

/// Upper bounds (seconds) of the request-latency histogram buckets; the
/// rendered histogram appends the implicit `+Inf` bucket.
const LATENCY_BUCKETS: &[(&str, f64)] = &[
    ("0.001", 0.001),
    ("0.0025", 0.0025),
    ("0.005", 0.005),
    ("0.01", 0.01),
    ("0.025", 0.025),
    ("0.05", 0.05),
    ("0.1", 0.1),
    ("0.25", 0.25),
    ("0.5", 0.5),
    ("1", 1.0),
    ("2.5", 2.5),
    ("5", 5.0),
    ("10", 10.0),
];

/// Per-table counters and gauges for the durable-table subsystem.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStats {
    /// Current WAL size in bytes (gauge; 0 right after a compaction).
    pub wal_bytes: u64,
    /// Ops batches applied since this process started (counter). The
    /// durable truth across restarts is the table's `seq`, which lives in
    /// the WAL — this counter is the in-process view.
    pub batches_applied: u64,
    /// Individual ops (inserts + deletes + updates) applied (counter).
    pub ops_applied: u64,
    /// Dirty units re-solved across refreshes (counter).
    pub resolved_units: u64,
    /// Wall-clock seconds the startup recovery replay took (gauge; 0 for
    /// tables created in this process).
    pub recovery_seconds: f64,
    /// Whether the table is quarantined (gauge).
    pub quarantined: bool,
    /// Writers answered `409` because another writer held the table's
    /// single-writer lock (counter).
    pub write_conflicts: u64,
}

/// The service's metric registry. One instance lives for the server's
/// whole lifetime; counters only ever increase.
#[derive(Debug, Default)]
pub struct Metrics {
    jobs_accepted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_degraded: AtomicU64,
    shards_by_solver: Mutex<BTreeMap<&'static str, u64>>,
    http_responses: Mutex<BTreeMap<u16, u64>>,
    tables: Mutex<BTreeMap<String, TableStats>>,
    latency_counts: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
}

impl Metrics {
    /// A fresh registry with every counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records an admission decision for a submitted job.
    pub fn record_admission(&self, accepted: bool) {
        if accepted {
            self.jobs_accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a job that finished with a report: completion, degradation,
    /// and which solver answered each shard (ladder rungs and the
    /// suppress-and-split fallback).
    pub fn record_completed(&self, report: &PipelineReport) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        if report.degraded_shards() > 0 {
            self.jobs_degraded.fetch_add(1, Ordering::Relaxed);
        }
        let mut by_solver = self.shards_by_solver.lock().expect("metrics lock");
        for shard in &report.shards {
            *by_solver.entry(shard.solved_by.name()).or_insert(0) += 1;
        }
    }

    /// Records a job that ended in an error after admission.
    pub fn record_failed(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one HTTP response and its end-to-end handling latency.
    pub fn record_response(&self, status: u16, latency: Duration) {
        *self
            .http_responses
            .lock()
            .expect("metrics lock")
            .entry(status)
            .or_insert(0) += 1;
        let secs = latency.as_secs_f64();
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|(_, bound)| secs <= *bound)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros.fetch_add(
            u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates (creating on first touch) the stats of one durable table.
    pub fn table(&self, name: &str, update: impl FnOnce(&mut TableStats)) {
        let mut tables = self.tables.lock().expect("metrics lock");
        update(tables.entry(name.to_string()).or_default());
    }

    /// Drops a deleted table's stats so the scrape stops reporting it.
    pub fn remove_table(&self, name: &str) {
        self.tables.lock().expect("metrics lock").remove(name);
    }

    /// A snapshot of one table's stats, if the table is known.
    #[must_use]
    pub fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.tables.lock().expect("metrics lock").get(name).cloned()
    }

    /// Jobs admitted so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.jobs_accepted.load(Ordering::Relaxed)
    }

    /// Jobs rejected at admission so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.jobs_rejected.load(Ordering::Relaxed)
    }

    /// Jobs completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.jobs_completed.load(Ordering::Relaxed)
    }

    /// Jobs failed after admission so far.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.jobs_failed.load(Ordering::Relaxed)
    }

    /// Completed jobs where at least one shard degraded.
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.jobs_degraded.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition. Gauges that live outside
    /// the registry (queue depth, pool occupancy) are passed in so the
    /// scrape is one consistent snapshot.
    #[must_use]
    pub fn render(&self, queue_depth: usize, pool_total: u64, pool_leased: u64) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "kanon_jobs_accepted_total",
            "Jobs admitted to the queue.",
            self.accepted(),
        );
        counter(
            "kanon_jobs_rejected_total",
            "Jobs rejected at admission (queue full or pool exhausted).",
            self.rejected(),
        );
        counter(
            "kanon_jobs_completed_total",
            "Jobs that produced a k-anonymous result.",
            self.completed(),
        );
        counter(
            "kanon_jobs_failed_total",
            "Jobs that errored after admission.",
            self.failed(),
        );
        counter(
            "kanon_jobs_degraded_total",
            "Completed jobs where at least one shard degraded below its first rung.",
            self.degraded(),
        );

        out.push_str("# HELP kanon_shards_solved_total Shards answered, by solver.\n");
        out.push_str("# TYPE kanon_shards_solved_total counter\n");
        for (solver, count) in self.shards_by_solver.lock().expect("metrics lock").iter() {
            out.push_str(&format!(
                "kanon_shards_solved_total{{solver=\"{solver}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP kanon_http_responses_total HTTP responses sent, by status code.\n");
        out.push_str("# TYPE kanon_http_responses_total counter\n");
        for (code, count) in self.http_responses.lock().expect("metrics lock").iter() {
            out.push_str(&format!(
                "kanon_http_responses_total{{code=\"{code}\"}} {count}\n"
            ));
        }

        {
            let tables = self.tables.lock().expect("metrics lock");
            if !tables.is_empty() {
                let mut family =
                    |name: &str, kind: &str, help: &str, value: &dyn Fn(&TableStats) -> String| {
                        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                        for (table, stats) in tables.iter() {
                            out.push_str(&format!(
                                "{name}{{table=\"{table}\"}} {}\n",
                                value(stats)
                            ));
                        }
                    };
                family(
                    "kanon_table_wal_bytes",
                    "gauge",
                    "Current WAL size of a durable table.",
                    &|t| t.wal_bytes.to_string(),
                );
                family(
                    "kanon_table_batches_applied_total",
                    "counter",
                    "Ops batches applied to a durable table (this process).",
                    &|t| t.batches_applied.to_string(),
                );
                family(
                    "kanon_table_ops_applied_total",
                    "counter",
                    "Individual ops applied to a durable table (this process).",
                    &|t| t.ops_applied.to_string(),
                );
                family(
                    "kanon_table_resolved_units_total",
                    "counter",
                    "Dirty units re-solved across refreshes (this process).",
                    &|t| t.resolved_units.to_string(),
                );
                family(
                    "kanon_table_recovery_seconds",
                    "gauge",
                    "Wall-clock duration of the startup WAL replay.",
                    &|t| format!("{:.6}", t.recovery_seconds),
                );
                family(
                    "kanon_table_quarantined",
                    "gauge",
                    "1 when the table is quarantined after an integrity failure.",
                    &|t| u8::from(t.quarantined).to_string(),
                );
                family(
                    "kanon_table_write_conflicts_total",
                    "counter",
                    "Writers answered 409 because the single-writer lock was held.",
                    &|t| t.write_conflicts.to_string(),
                );
            }
        }

        out.push_str("# HELP kanon_queue_depth Jobs waiting in the admission queue.\n");
        out.push_str("# TYPE kanon_queue_depth gauge\n");
        out.push_str(&format!("kanon_queue_depth {queue_depth}\n"));

        out.push_str("# HELP kanon_pool_memory_bytes Global memory pool occupancy.\n");
        out.push_str("# TYPE kanon_pool_memory_bytes gauge\n");
        out.push_str(&format!(
            "kanon_pool_memory_bytes{{state=\"total\"}} {pool_total}\n"
        ));
        out.push_str(&format!(
            "kanon_pool_memory_bytes{{state=\"leased\"}} {pool_leased}\n"
        ));

        out.push_str(
            "# HELP kanon_request_latency_seconds HTTP request handling latency.\n\
             # TYPE kanon_request_latency_seconds histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, (label, _)) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency_counts[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "kanon_request_latency_seconds_bucket{{le=\"{label}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_counts[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "kanon_request_latency_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        let sum_secs = self.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!(
            "kanon_request_latency_seconds_sum {sum_secs:.6}\n"
        ));
        out.push_str(&format!(
            "kanon_request_latency_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));
        out
    }
}

/// Pulls `name value` (or `name{labels} value`) pairs out of a Prometheus
/// text page. The load generator uses this to reconcile its own tallies
/// against the server's scrape.
#[must_use]
pub fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(value) = value.parse::<f64>() {
                out.insert(name.to_string(), value);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let m = Metrics::new();
        m.record_admission(true);
        m.record_admission(true);
        m.record_admission(false);
        m.record_failed();
        m.record_response(202, Duration::from_millis(3));
        m.record_response(429, Duration::from_secs(20));

        let page = m.render(5, 1024, 512);
        let parsed = parse_exposition(&page);
        assert_eq!(parsed["kanon_jobs_accepted_total"], 2.0);
        assert_eq!(parsed["kanon_jobs_rejected_total"], 1.0);
        assert_eq!(parsed["kanon_jobs_failed_total"], 1.0);
        assert_eq!(parsed["kanon_queue_depth"], 5.0);
        assert_eq!(parsed["kanon_pool_memory_bytes{state=\"total\"}"], 1024.0);
        assert_eq!(parsed["kanon_pool_memory_bytes{state=\"leased\"}"], 512.0);
        assert_eq!(parsed["kanon_http_responses_total{code=\"202\"}"], 1.0);
        assert_eq!(parsed["kanon_http_responses_total{code=\"429\"}"], 1.0);
        // Histogram: 3ms falls in le=0.005; the 20s response only in +Inf.
        assert_eq!(
            parsed["kanon_request_latency_seconds_bucket{le=\"0.005\"}"],
            1.0
        );
        assert_eq!(
            parsed["kanon_request_latency_seconds_bucket{le=\"10\"}"],
            1.0
        );
        assert_eq!(
            parsed["kanon_request_latency_seconds_bucket{le=\"+Inf\"}"],
            2.0
        );
        assert_eq!(parsed["kanon_request_latency_seconds_count"], 2.0);
    }

    #[test]
    fn table_families_render_per_table() {
        let m = Metrics::new();
        m.table("orders", |t| {
            t.wal_bytes = 512;
            t.batches_applied = 3;
            t.ops_applied = 9;
            t.resolved_units = 4;
            t.recovery_seconds = 0.25;
        });
        m.table("people", |t| {
            t.quarantined = true;
            t.write_conflicts = 2;
        });
        let parsed = parse_exposition(&m.render(0, 0, 0));
        assert_eq!(parsed["kanon_table_wal_bytes{table=\"orders\"}"], 512.0);
        assert_eq!(
            parsed["kanon_table_batches_applied_total{table=\"orders\"}"],
            3.0
        );
        assert_eq!(
            parsed["kanon_table_ops_applied_total{table=\"orders\"}"],
            9.0
        );
        assert_eq!(
            parsed["kanon_table_resolved_units_total{table=\"orders\"}"],
            4.0
        );
        assert_eq!(
            parsed["kanon_table_recovery_seconds{table=\"orders\"}"],
            0.25
        );
        assert_eq!(parsed["kanon_table_quarantined{table=\"people\"}"], 1.0);
        assert_eq!(parsed["kanon_table_quarantined{table=\"orders\"}"], 0.0);
        assert_eq!(
            parsed["kanon_table_write_conflicts_total{table=\"people\"}"],
            2.0
        );
        m.remove_table("people");
        let parsed = parse_exposition(&m.render(0, 0, 0));
        assert!(!parsed.contains_key("kanon_table_quarantined{table=\"people\"}"));
        assert_eq!(m.table_stats("orders").unwrap().batches_applied, 3);
        assert!(m.table_stats("people").is_none());
    }

    #[test]
    fn buckets_are_cumulative_and_monotone() {
        let m = Metrics::new();
        for ms in [1u64, 2, 40, 400, 4000] {
            m.record_response(200, Duration::from_millis(ms));
        }
        let parsed = parse_exposition(&m.render(0, 0, 0));
        let mut last = 0.0;
        for (label, _) in LATENCY_BUCKETS {
            let v = parsed[&format!("kanon_request_latency_seconds_bucket{{le=\"{label}\"}}")];
            assert!(v >= last, "bucket {label} shrank");
            last = v;
        }
        assert_eq!(
            parsed["kanon_request_latency_seconds_bucket{le=\"+Inf\"}"],
            5.0
        );
    }
}
