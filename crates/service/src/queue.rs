//! A bounded MPMC job queue with non-blocking admission and blocking
//! consumption: submitters never wait (a full queue is an admission
//! decision, answered `429`), workers park on a condvar until a job or
//! shutdown arrives.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`JobQueue::try_push`] refused an item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is shut down; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded FIFO queue shared between connection handlers (producers) and
/// job workers (consumers).
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An empty queue holding at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`]; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue closes. `None` means
    /// closed *and* drained — workers exit on it.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Items currently waiting (excludes jobs already claimed by workers).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Closes the queue: future pushes fail, and once drained every blocked
    /// and future [`JobQueue::pop`] returns `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_and_capacity() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_drains_then_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        // The queued item is still delivered; only then does pop report
        // closure.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);

        let q2 = Arc::new(JobQueue::<u32>::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        // Give the waiter a moment to park, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn contended_producers_and_consumers_preserve_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let q = JobQueue::new(8);
        let total: usize = 200;
        let pushed = AtomicUsize::new(0);
        let consumed: Vec<usize> = std::thread::scope(|scope| {
            for t in 0..4usize {
                let (q, pushed) = (&q, &pushed);
                scope.spawn(move || {
                    for i in 0..total / 4 {
                        let mut item = t * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                        pushed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        while let Some(item) = q.pop() {
                            seen.push(item);
                        }
                        seen
                    })
                })
                .collect();
            // Close only after every producer has accounted for its items.
            while pushed.load(Ordering::Relaxed) < total {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            q.close();
            consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect()
        });
        let mut consumed = consumed;
        consumed.sort_unstable();
        consumed.dedup();
        assert_eq!(consumed.len(), total);
    }
}
