//! Server configuration: listen address, worker pool sizing, queue depth,
//! and the global memory pool that admission control carves per-job
//! budgets from.

use std::path::PathBuf;
use std::time::Duration;

use crate::error::{Error, Result};

/// Configuration for [`crate::server::Server::start`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Listen address (`host:port`). Port `0` asks the OS for a free port;
    /// the bound address is reported by [`crate::server::Server::addr`].
    pub addr: String,
    /// Job-solver threads. Each runs one job at a time end to end, so this
    /// is the service's concurrency limit for solver work.
    pub workers: usize,
    /// Jobs that may wait in the queue beyond the ones running. Submissions
    /// past this depth are rejected with `429` at admission.
    pub queue_depth: usize,
    /// Global memory pool (bytes). Every accepted job leases its memory cap
    /// from this pool up front; admission rejects with `429` when the pool
    /// cannot cover the request.
    pub pool_memory_bytes: u64,
    /// Connection-handler threads reading and answering HTTP requests.
    pub http_threads: usize,
    /// Largest accepted request body; larger uploads get `413`.
    pub max_body_bytes: usize,
    /// Largest accepted request head (request line + headers); larger gets
    /// `400`.
    pub max_head_bytes: usize,
    /// Per-job memory cap when the request does not pass `max_memory_mb`:
    /// an even worker's share of the pool.
    pub default_job_memory_bytes: u64,
    /// Per-job deadline when the request does not pass `deadline_ms`.
    /// `None` means no deadline.
    pub default_deadline: Option<Duration>,
    /// Socket read/write timeout for request handling, so a stalled client
    /// cannot pin a connection handler forever.
    pub io_timeout: Duration,
    /// Directory holding durable tenant tables (one subdirectory per
    /// table). `None` disables the `/v1/tables` endpoints entirely; the
    /// job endpoints are unaffected either way.
    pub data_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = 4;
        let pool_memory_bytes = 256 * 1024 * 1024;
        ServiceConfig {
            addr: "127.0.0.1:8672".to_string(),
            workers,
            queue_depth: 64,
            pool_memory_bytes,
            http_threads: 4,
            max_body_bytes: 64 * 1024 * 1024,
            max_head_bytes: 8 * 1024,
            default_job_memory_bytes: pool_memory_bytes / workers as u64,
            default_deadline: None,
            io_timeout: Duration::from_secs(10),
            data_dir: None,
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration before the server starts.
    ///
    /// # Errors
    /// [`Error::Config`] on zero workers, queue depth, HTTP threads, pool
    /// bytes, or head/body limits, and when the default per-job memory cap
    /// exceeds the pool (such a job could never be admitted).
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(Error::Config("worker count must be at least 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(Error::Config("queue depth must be at least 1".into()));
        }
        if self.http_threads == 0 {
            return Err(Error::Config("http thread count must be at least 1".into()));
        }
        if self.pool_memory_bytes == 0 {
            return Err(Error::Config("memory pool must be non-empty".into()));
        }
        if self.max_head_bytes == 0 || self.max_body_bytes == 0 {
            return Err(Error::Config("head/body limits must be non-zero".into()));
        }
        if self.default_job_memory_bytes == 0 {
            return Err(Error::Config(
                "default per-job memory cap must be non-zero".into(),
            ));
        }
        if self.default_job_memory_bytes > self.pool_memory_bytes {
            return Err(Error::Config(format!(
                "default per-job memory cap ({} bytes) exceeds the pool \
                 ({} bytes); no job could ever be admitted",
                self.default_job_memory_bytes, self.pool_memory_bytes
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServiceConfig::default().validate().is_ok());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for broken in [
            ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                queue_depth: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                http_threads: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                pool_memory_bytes: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                max_head_bytes: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                default_job_memory_bytes: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                default_job_memory_bytes: u64::MAX,
                ..ServiceConfig::default()
            },
        ] {
            assert!(broken.validate().is_err());
        }
    }
}
