//! Theorem 3.1: perfect matching ≤ₚ optimal k-anonymity (entry suppression).
//!
//! Given a simple k-uniform hypergraph `H = (U, E)` with `n = |U|` vertices
//! and `m = |E|` edges, build one record per vertex over the alphabet
//! `Σ = {0, 1, …, n}`:
//!
//! ```text
//! v_i[j] = 0        if u_i ∈ e_j
//! v_i[j] = i + 1    otherwise
//! ```
//!
//! Two records can only agree in a coordinate where both are 0, i.e. on a
//! shared edge — the non-incidence fillers are pairwise distinct by row
//! (this is where the large alphabet is spent; the transcription's
//! "1 otherwise" cannot be literal, since the proof immediately asserts
//! "any two v_i vectors can match only in coordinates that are 0").
//!
//! **Decision equivalence** (for the hypergraph's uniformity `k ≥ 3`):
//! `H` has a perfect matching **iff** `OPT(V) ≤ n·(m−1)` — iff every record
//! can keep exactly one coordinate, namely the 0 of its matching edge.

use kanon_core::error::{Error as CoreError, Result as CoreResult};
use kanon_core::suppression::AnonymizedTable;
use kanon_core::suppression::Cell;
use kanon_core::{Dataset, Partition, Suppressor};
use kanon_hypergraph::Hypergraph;

/// The Theorem 3.1 instance produced from a hypergraph.
///
/// ```
/// use kanon_hypergraph::Hypergraph;
/// use kanon_reductions::EntryReduction;
/// let h = Hypergraph::new(6, vec![vec![0, 1, 2], vec![3, 4, 5], vec![1, 2, 3]]).unwrap();
/// let red = EntryReduction::new(&h, 3).unwrap();
/// assert_eq!(red.dataset().n_rows(), 6);      // one record per vertex
/// assert_eq!(red.dataset().n_cols(), 3);      // one attribute per edge
/// assert_eq!(red.threshold(), 6 * (3 - 1));   // OPT <= n(m-1) iff PM exists
/// ```
#[derive(Clone, Debug)]
pub struct EntryReduction {
    dataset: Dataset,
    k: usize,
    n: usize,
    m: usize,
}

impl EntryReduction {
    /// Builds the reduction from a simple `k`-uniform hypergraph.
    ///
    /// # Errors
    /// Propagates uniformity/simplicity violations (as
    /// [`CoreError::InvalidPartition`] wrapping the message) and rejects
    /// `k < 3` (`k = 2` perfect matching is polynomial, and the theorem's
    /// equivalence argument needs `k ≥ 3`) and edgeless/vertexless inputs.
    pub fn new(h: &Hypergraph, k: usize) -> CoreResult<Self> {
        if k < 3 {
            return Err(CoreError::InvalidPartition(format!(
                "Theorem 3.1 requires k >= 3, got {k}"
            )));
        }
        h.check_uniform(k)
            .and_then(|()| h.check_simple())
            .map_err(|e| CoreError::InvalidPartition(e.to_string()))?;
        let n = h.n_vertices();
        let m = h.n_edges();
        if n == 0 || m == 0 {
            return Err(CoreError::EmptyDataset);
        }
        let dataset = Dataset::from_fn(n, m, |i, j| {
            if h.incident(i as u32, j) {
                0
            } else {
                (i + 1) as u32
            }
        });
        Ok(EntryReduction { dataset, k, n, m })
    }

    /// The produced k-anonymity instance.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The privacy parameter (the hypergraph's uniformity).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The decision threshold `ℓ = n·(m−1)`: `OPT ≤ ℓ` iff `H` has a
    /// perfect matching.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.n * (self.m - 1)
    }

    /// Forward direction of the proof: a perfect matching (edge indices)
    /// yields a partition whose rounding costs exactly `n·(m−1)` stars.
    ///
    /// # Errors
    /// [`CoreError::InvalidPartition`] if `matching` is not a perfect
    /// matching of the source hypergraph.
    pub fn partition_from_matching(
        &self,
        h: &Hypergraph,
        matching: &[usize],
    ) -> CoreResult<Partition> {
        if !h.is_perfect_matching(matching) {
            return Err(CoreError::InvalidPartition(
                "provided edge set is not a perfect matching".into(),
            ));
        }
        let blocks: Vec<Vec<u32>> = matching.iter().map(|&e| h.edge(e).to_vec()).collect();
        Partition::new(blocks, self.n, self.k)
    }

    /// The suppressor the proof constructs from a matching: each record
    /// keeps only the coordinate of its matching edge.
    ///
    /// # Errors
    /// Same as [`Self::partition_from_matching`].
    pub fn suppressor_from_matching(
        &self,
        h: &Hypergraph,
        matching: &[usize],
    ) -> CoreResult<Suppressor> {
        if !h.is_perfect_matching(matching) {
            return Err(CoreError::InvalidPartition(
                "provided edge set is not a perfect matching".into(),
            ));
        }
        let mut s = Suppressor::identity(self.n, self.m);
        for &e in matching {
            for &v in h.edge(e) {
                for j in 0..self.m {
                    if j != e {
                        s.suppress(v as usize, j);
                    }
                }
            }
        }
        Ok(s)
    }

    /// Converse direction of the proof: from a k-anonymous released table
    /// with at most `n·(m−1)` stars, extract a perfect matching. Each row
    /// must expose exactly one surviving coordinate, which must be a 0; its
    /// column is the row's matching edge.
    ///
    /// # Errors
    /// [`CoreError::InvalidPartition`] if the table does not have the shape
    /// the proof guarantees (e.g. its cost exceeds the threshold).
    pub fn extract_matching(&self, table: &AnonymizedTable) -> CoreResult<Vec<usize>> {
        if table.n_rows() != self.n || table.n_cols() != self.m {
            return Err(CoreError::InvalidPartition(format!(
                "table shaped {}x{} does not match reduction instance {}x{}",
                table.n_rows(),
                table.n_cols(),
                self.n,
                self.m
            )));
        }
        let mut edges = Vec::with_capacity(self.n / self.k);
        for i in 0..self.n {
            let survivors: Vec<(usize, Cell)> = table
                .row(i)
                .iter()
                .enumerate()
                .filter(|(_, c)| !matches!(c, Cell::Star))
                .map(|(j, &c)| (j, c))
                .collect();
            let [(j, cell)] = survivors.as_slice() else {
                return Err(CoreError::InvalidPartition(format!(
                    "row {i} keeps {} coordinates; a threshold solution keeps exactly 1",
                    survivors.len()
                )));
            };
            if *cell != Cell::Value(0) {
                return Err(CoreError::InvalidPartition(format!(
                    "row {i} keeps a non-zero coordinate; no identical partners exist"
                )));
            }
            edges.push(*j);
        }
        edges.sort_unstable();
        edges.dedup();
        Ok(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::exact;
    use kanon_core::rounding::suppressor_for_partition;
    use kanon_hypergraph::generate::{certified_no_matching, planted_matching};
    use kanon_hypergraph::matching::{find_perfect_matching, MatchingConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_triangles() -> Hypergraph {
        Hypergraph::new(6, vec![vec![0, 1, 2], vec![3, 4, 5], vec![1, 2, 3]]).unwrap()
    }

    #[test]
    fn construction_matches_paper() {
        let h = two_triangles();
        let red = EntryReduction::new(&h, 3).unwrap();
        let ds = red.dataset();
        assert_eq!(ds.n_rows(), 6);
        assert_eq!(ds.n_cols(), 3);
        // Vertex 0 is on edge 0 only.
        assert_eq!(ds.row(0), &[0, 1, 1]);
        // Vertex 3 is on edges 1 and 2.
        assert_eq!(ds.row(3), &[4, 0, 0]);
        assert_eq!(red.threshold(), 6 * 2);
    }

    #[test]
    fn rejects_small_k_and_nonuniform() {
        let h = two_triangles();
        assert!(EntryReduction::new(&h, 2).is_err());
        let bad = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2, 3]]).unwrap();
        assert!(EntryReduction::new(&bad, 3).is_err());
        let dup = Hypergraph::new(3, vec![vec![0, 1, 2], vec![2, 1, 0]]).unwrap();
        assert!(EntryReduction::new(&dup, 3).is_err());
    }

    #[test]
    fn forward_direction_costs_threshold() {
        let h = two_triangles();
        let red = EntryReduction::new(&h, 3).unwrap();
        let matching = vec![0, 1];
        let s = red.suppressor_from_matching(&h, &matching).unwrap();
        assert_eq!(s.cost(), red.threshold());
        let table = s.apply(red.dataset()).unwrap();
        assert!(table.is_k_anonymous(3));
        // The partition route costs the same.
        let p = red.partition_from_matching(&h, &matching).unwrap();
        assert_eq!(p.anonymization_cost(red.dataset()), red.threshold());
    }

    #[test]
    fn forward_rejects_non_matching() {
        let h = two_triangles();
        let red = EntryReduction::new(&h, 3).unwrap();
        assert!(red.suppressor_from_matching(&h, &[0, 2]).is_err());
        assert!(red.partition_from_matching(&h, &[0]).is_err());
    }

    #[test]
    fn converse_direction_extracts_matching() {
        let h = two_triangles();
        let red = EntryReduction::new(&h, 3).unwrap();
        let s = red.suppressor_from_matching(&h, &[0, 1]).unwrap();
        let table = s.apply(red.dataset()).unwrap();
        let extracted = red.extract_matching(&table).unwrap();
        assert!(h.is_perfect_matching(&extracted));
        assert_eq!(extracted, vec![0, 1]);
    }

    #[test]
    fn extract_rejects_wrong_shapes() {
        let h = two_triangles();
        let red = EntryReduction::new(&h, 3).unwrap();
        // Identity suppressor: every row keeps 3 coordinates.
        let table = Suppressor::identity(6, 3).apply(red.dataset()).unwrap();
        assert!(red.extract_matching(&table).is_err());
    }

    /// End-to-end both directions on generated instances, with the exact
    /// solver in the middle — the executable statement of Theorem 3.1.
    #[test]
    fn decision_equivalence_yes_instances() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (h, _) = planted_matching(&mut rng, 9, 3, 3).unwrap();
            let red = EntryReduction::new(&h, 3).unwrap();
            let opt = exact::optimal(red.dataset(), 3).unwrap();
            assert!(
                opt.cost <= red.threshold(),
                "seed {seed}: planted matching but OPT = {} > threshold {}",
                opt.cost,
                red.threshold()
            );
            // And the optimal anonymization yields a matching back.
            let s = suppressor_for_partition(red.dataset(), &opt.partition).unwrap();
            let table = s.apply(red.dataset()).unwrap();
            let extracted = red.extract_matching(&table).unwrap();
            assert!(h.is_perfect_matching(&extracted), "seed {seed}");
        }
    }

    #[test]
    fn decision_equivalence_no_instances() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let h = certified_no_matching(&mut rng, 9, 3, 1, 500).unwrap();
            let red = EntryReduction::new(&h, 3).unwrap();
            let opt = exact::optimal(red.dataset(), 3).unwrap();
            assert!(
                opt.cost > red.threshold(),
                "seed {seed}: no matching but OPT = {} <= threshold {}",
                opt.cost,
                red.threshold()
            );
        }
    }

    #[test]
    fn solver_matching_survives_roundtrip() {
        let mut rng = StdRng::seed_from_u64(77);
        let (h, _) = planted_matching(&mut rng, 12, 3, 6).unwrap();
        let red = EntryReduction::new(&h, 3).unwrap();
        let m = find_perfect_matching(&h, &MatchingConfig::default())
            .unwrap()
            .unwrap();
        let s = red.suppressor_from_matching(&h, &m).unwrap();
        let table = s.apply(red.dataset()).unwrap();
        let back = red.extract_matching(&table).unwrap();
        let mut m_sorted = m;
        m_sorted.sort_unstable();
        assert_eq!(back, m_sorted);
    }
}
