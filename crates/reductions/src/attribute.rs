//! Theorem 3.2: perfect matching ≤ₚ k-ANONYMITY-ON-ATTRIBUTES, binary Σ.
//!
//! Given a simple k-uniform hypergraph `H` with `n` vertices and `m` edges,
//! build the *incidence* table: `v_i[j] = 1` iff `u_i ∈ e_j`, else 0.
//! Suppressing attribute `j` corresponds to deleting hyperedge `e_j`.
//!
//! Key facts from the proof (k > 2):
//!
//! * each column `j` contains exactly `k` ones, so if `j` is kept, the rows
//!   with `v[j] = 1` must form exactly one k-group — meaning no kept column
//!   may share a vertex with another kept column;
//! * hence kept columns are pairwise disjoint edges, so at most `n/k` can
//!   be kept, i.e. at least `m − n/k` attributes are suppressed in **any**
//!   k-anonymization;
//! * exactly `m − n/k` are suppressed iff the kept columns are `n/k`
//!   disjoint edges covering every vertex — a perfect matching.

use kanon_core::bitset::BitSet;
use kanon_core::error::{Error as CoreError, Result as CoreResult};
use kanon_core::Dataset;
use kanon_hypergraph::Hypergraph;

/// The Theorem 3.2 instance produced from a hypergraph.
#[derive(Clone, Debug)]
pub struct AttributeReduction {
    dataset: Dataset,
    k: usize,
    n: usize,
    m: usize,
}

impl AttributeReduction {
    /// Builds the reduction from a simple `k`-uniform hypergraph.
    ///
    /// # Errors
    /// Rejects `k <= 2` (the theorem needs `k > 2`), non-uniform or
    /// non-simple hypergraphs, and empty inputs.
    pub fn new(h: &Hypergraph, k: usize) -> CoreResult<Self> {
        if k <= 2 {
            return Err(CoreError::InvalidPartition(format!(
                "Theorem 3.2 requires k > 2, got {k}"
            )));
        }
        h.check_uniform(k)
            .and_then(|()| h.check_simple())
            .map_err(|e| CoreError::InvalidPartition(e.to_string()))?;
        let n = h.n_vertices();
        let m = h.n_edges();
        if n == 0 || m == 0 {
            return Err(CoreError::EmptyDataset);
        }
        let dataset = Dataset::from_fn(n, m, |i, j| u32::from(h.incident(i as u32, j)));
        Ok(AttributeReduction { dataset, k, n, m })
    }

    /// The produced (binary) attribute-suppression instance.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The privacy parameter.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The decision threshold: `H` has a perfect matching iff the minimum
    /// number of suppressed attributes equals `m − n/k`. Returns `None`
    /// when `m < n/k` or `k ∤ n` (then no perfect matching can exist and no
    /// kept-set of that size either).
    #[must_use]
    pub fn threshold(&self) -> Option<usize> {
        if self.n % self.k != 0 {
            return None;
        }
        let need = self.n / self.k;
        self.m.checked_sub(need)
    }

    /// Forward direction: a perfect matching yields a kept-set of exactly
    /// `n/k` attributes (the matching's edges) that is k-anonymous.
    ///
    /// # Errors
    /// [`CoreError::InvalidPartition`] if `matching` is not a perfect
    /// matching of the source hypergraph.
    pub fn kept_from_matching(&self, h: &Hypergraph, matching: &[usize]) -> CoreResult<BitSet> {
        if !h.is_perfect_matching(matching) {
            return Err(CoreError::InvalidPartition(
                "provided edge set is not a perfect matching".into(),
            ));
        }
        let mut kept = BitSet::new(self.m);
        for &e in matching {
            kept.insert(e);
        }
        Ok(kept)
    }

    /// Converse direction: a kept-set of size `n/k` that k-anonymizes the
    /// table must be a perfect matching; extract it.
    ///
    /// # Errors
    /// [`CoreError::InvalidPartition`] if the kept-set does not have the
    /// threshold size.
    pub fn extract_matching(&self, kept: &BitSet) -> CoreResult<Vec<usize>> {
        let expected = self
            .threshold()
            .map(|t| self.m - t)
            .ok_or_else(|| CoreError::InvalidPartition("instance has no threshold".into()))?;
        if kept.count() != expected {
            return Err(CoreError::InvalidPartition(format!(
                "kept-set has {} attributes; a threshold solution keeps {expected}",
                kept.count()
            )));
        }
        Ok(kept.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kanon_core::attr::{is_k_anonymous_with_kept, min_suppressed_attributes};
    use kanon_hypergraph::generate::{certified_no_matching, planted_matching};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_triangles() -> Hypergraph {
        Hypergraph::new(6, vec![vec![0, 1, 2], vec![3, 4, 5], vec![1, 2, 3]]).unwrap()
    }

    #[test]
    fn construction_is_incidence_matrix() {
        let h = two_triangles();
        let red = AttributeReduction::new(&h, 3).unwrap();
        let ds = red.dataset();
        assert_eq!(ds.row(0), &[1, 0, 0]);
        assert_eq!(ds.row(3), &[0, 1, 1]);
        assert_eq!(red.threshold(), Some(1)); // m=3, n/k=2
    }

    #[test]
    fn rejects_small_k() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3]]).unwrap();
        assert!(AttributeReduction::new(&h, 2).is_err());
    }

    #[test]
    fn forward_direction_is_k_anonymous() {
        let h = two_triangles();
        let red = AttributeReduction::new(&h, 3).unwrap();
        let kept = red.kept_from_matching(&h, &[0, 1]).unwrap();
        assert_eq!(kept.count(), 2);
        assert!(is_k_anonymous_with_kept(red.dataset(), &kept, 3));
    }

    #[test]
    fn forward_rejects_non_matching() {
        let h = two_triangles();
        let red = AttributeReduction::new(&h, 3).unwrap();
        assert!(red.kept_from_matching(&h, &[0, 2]).is_err());
    }

    #[test]
    fn decision_equivalence_yes_instances() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (h, _) = planted_matching(&mut rng, 9, 3, 4).unwrap();
            let red = AttributeReduction::new(&h, 3).unwrap();
            let (min_suppressed, kept) = min_suppressed_attributes(red.dataset(), 3, 22).unwrap();
            assert_eq!(
                Some(min_suppressed),
                red.threshold(),
                "seed {seed}: matching exists, so exactly m - n/k suppressions"
            );
            let matching = red.extract_matching(&kept).unwrap();
            assert!(h.is_perfect_matching(&matching), "seed {seed}");
        }
    }

    #[test]
    fn decision_equivalence_no_instances() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(300 + seed);
            let h = certified_no_matching(&mut rng, 9, 3, 2, 500).unwrap();
            let red = AttributeReduction::new(&h, 3).unwrap();
            let (min_suppressed, _) = min_suppressed_attributes(red.dataset(), 3, 22).unwrap();
            let threshold = red.threshold().unwrap();
            assert!(
                min_suppressed > threshold,
                "seed {seed}: no matching, but only {min_suppressed} suppressions (threshold {threshold})"
            );
        }
    }

    #[test]
    fn extract_rejects_oversized_kept_set() {
        let h = two_triangles();
        let red = AttributeReduction::new(&h, 3).unwrap();
        assert!(red.extract_matching(&BitSet::full(3)).is_err());
    }

    #[test]
    fn threshold_none_when_indivisible() {
        let h = Hypergraph::new(7, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let red = AttributeReduction::new(&h, 3).unwrap();
        assert_eq!(red.threshold(), None);
    }
}
