//! # kanon-reductions
//!
//! Executable versions of the paper's two NP-hardness reductions, plus the
//! inverse extractions used in the proofs' converse directions. These make
//! the hardness theorems *testable*: experiments E5/E6 generate hypergraphs
//! with and without perfect matchings, push them through the reductions,
//! solve the resulting k-anonymity instances exactly, and check that the
//! decision answers agree in both directions.
//!
//! * [`entry`] — **Theorem 3.1**: k-DIMENSIONAL PERFECT MATCHING ≤ₚ
//!   k-ANONYMITY (entry suppression, alphabet of size `n + 1`), for `k ≥ 3`.
//!   A perfect matching exists iff the optimal suppression cost is at most
//!   `n·(m − 1)`.
//! * [`attribute`] — **Theorem 3.2**: k-DIMENSIONAL PERFECT MATCHING ≤ₚ
//!   k-ANONYMITY-ON-ATTRIBUTES (binary alphabet), for `k > 2`. A perfect
//!   matching exists iff exactly `m − n/k` attributes suffice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod entry;

pub use attribute::AttributeReduction;
pub use entry::EntryReduction;
