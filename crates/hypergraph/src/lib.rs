//! # kanon-hypergraph
//!
//! k-uniform hypergraphs with an exact perfect-matching solver — the
//! combinatorial substrate for the NP-hardness reductions of Meyerson &
//! Williams (PODS 2004, Theorems 3.1 and 3.2), both of which reduce from
//! **k-DIMENSIONAL PERFECT MATCHING**: given a k-uniform hypergraph
//! `H = (U, E)`, decide whether some `|U|/k` pairwise-disjoint hyperedges
//! cover every vertex exactly once.
//!
//! The crate provides:
//!
//! * [`Hypergraph`] — validated edge lists with uniformity/simplicity checks;
//! * [`matching`] — an exact matching search with memoization on covered
//!   vertex sets (exact for up to 64 vertices, with a node budget), plus a
//!   greedy heuristic;
//! * [`generate`] — seeded instance generators: planted perfect matchings
//!   with noise edges, uniformly random hypergraphs, and certified
//!   no-matching instances (used by experiments E5/E6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod generate;
pub mod graph;
pub mod matching;

pub use error::{Error, Result};
pub use graph::Hypergraph;
pub use matching::{find_perfect_matching, has_perfect_matching, maximum_matching, MatchingConfig};
