//! Seeded instance generators for matching experiments.
//!
//! The hardness experiments (E5/E6) need both YES instances (a planted
//! perfect matching, optionally hidden among noise edges) and NO instances
//! (certified to admit no perfect matching). Everything is driven by a
//! caller-supplied [`rand::Rng`] so experiments are reproducible.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{Error, Result};
use crate::graph::Hypergraph;
use crate::matching::{has_perfect_matching, MatchingConfig};

/// Generates a k-uniform hypergraph on `n` vertices containing a planted
/// perfect matching plus `noise_edges` additional random distinct edges.
///
/// Returns the hypergraph and the indices of the planted matching's edges
/// (the matching edges are shuffled among the noise so position leaks
/// nothing).
///
/// # Errors
/// [`Error::BadParameters`] if `k == 0`, `n` is not a positive multiple of
/// `k`, or the requested number of distinct edges exceeds the number of
/// k-subsets.
pub fn planted_matching(
    rng: &mut impl Rng,
    n: usize,
    k: usize,
    noise_edges: usize,
) -> Result<(Hypergraph, Vec<usize>)> {
    if k == 0 || n == 0 || n % k != 0 {
        return Err(Error::BadParameters(format!(
            "need n a positive multiple of k, got n = {n}, k = {k}"
        )));
    }

    // Plant: shuffle vertices, chop into n/k blocks.
    let mut vertices: Vec<u32> = (0..n as u32).collect();
    vertices.shuffle(rng);
    let planted: Vec<Vec<u32>> = vertices.chunks(k).map(<[u32]>::to_vec).collect();

    // Noise: random distinct k-subsets not colliding with planted edges.
    let mut seen: std::collections::HashSet<Vec<u32>> = planted
        .iter()
        .map(|e| {
            let mut s = e.clone();
            s.sort_unstable();
            s
        })
        .collect();
    let capacity = binomial(n, k);
    if planted.len() + noise_edges > capacity {
        return Err(Error::BadParameters(format!(
            "requested {} distinct edges but only {capacity} {k}-subsets of {n} vertices exist",
            planted.len() + noise_edges
        )));
    }
    let mut noise: Vec<Vec<u32>> = Vec::with_capacity(noise_edges);
    while noise.len() < noise_edges {
        let mut e = sample_k_subset(rng, n, k);
        e.sort_unstable();
        if seen.insert(e.clone()) {
            noise.push(e);
        }
    }

    // Interleave: shuffle the combined edge list, remembering where the
    // planted edges land.
    let mut tagged: Vec<(bool, Vec<u32>)> = planted
        .into_iter()
        .map(|e| (true, e))
        .chain(noise.into_iter().map(|e| (false, e)))
        .collect();
    tagged.shuffle(rng);
    let matching_indices: Vec<usize> = tagged
        .iter()
        .enumerate()
        .filter(|(_, (p, _))| *p)
        .map(|(i, _)| i)
        .collect();
    let edges: Vec<Vec<u32>> = tagged.into_iter().map(|(_, e)| e).collect();
    let h = Hypergraph::new(n, edges)?;
    debug_assert!(h.is_perfect_matching(&matching_indices));
    Ok((h, matching_indices))
}

/// Generates a uniformly random simple k-uniform hypergraph with `m_edges`
/// distinct edges.
///
/// # Errors
/// [`Error::BadParameters`] on impossible parameters.
pub fn random_uniform(
    rng: &mut impl Rng,
    n: usize,
    k: usize,
    m_edges: usize,
) -> Result<Hypergraph> {
    if k == 0 || k > n {
        return Err(Error::BadParameters(format!(
            "need 0 < k <= n, got k = {k}, n = {n}"
        )));
    }
    if m_edges > binomial(n, k) {
        return Err(Error::BadParameters(format!(
            "requested {m_edges} distinct edges but only {} exist",
            binomial(n, k)
        )));
    }
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::with_capacity(m_edges);
    while edges.len() < m_edges {
        let mut e = sample_k_subset(rng, n, k);
        e.sort_unstable();
        if seen.insert(e.clone()) {
            edges.push(e);
        }
    }
    Hypergraph::new(n, edges)
}

/// Generates a k-uniform hypergraph certified to have **no** perfect
/// matching, by rejection sampling sparse random instances against the
/// exact solver. Sparse instances (here `m = n/k + extra`) are usually
/// unmatchable, so few rejections occur.
///
/// # Errors
/// [`Error::BadParameters`] on impossible parameters;
/// [`Error::SolverLimit`] if certification exceeds the solver budget;
/// `BadParameters` again if `max_attempts` sampled instances all matched.
pub fn certified_no_matching(
    rng: &mut impl Rng,
    n: usize,
    k: usize,
    extra_edges: usize,
    max_attempts: usize,
) -> Result<Hypergraph> {
    if k == 0 || n % k != 0 || n == 0 {
        return Err(Error::BadParameters(format!(
            "need n a positive multiple of k, got n = {n}, k = {k}"
        )));
    }
    let m = n / k + extra_edges;
    for _ in 0..max_attempts {
        let h = random_uniform(rng, n, k, m.min(binomial(n, k)))?;
        if !has_perfect_matching(&h, &MatchingConfig::default())? {
            return Ok(h);
        }
    }
    Err(Error::BadParameters(format!(
        "failed to sample a no-matching instance in {max_attempts} attempts; \
         lower extra_edges (currently {extra_edges})"
    )))
}

/// A uniformly random k-subset of `0..n`, unsorted.
fn sample_k_subset(rng: &mut impl Rng, n: usize, k: usize) -> Vec<u32> {
    debug_assert!(k <= n);
    // Floyd's algorithm: O(k) expected draws.
    let mut chosen: Vec<u32> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j as u32);
        if chosen.contains(&t) {
            chosen.push(j as u32);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// `C(n, k)` with saturation to `usize::MAX`.
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for t in 0..k {
        c = c.saturating_mul((n - t) as u128) / (t + 1) as u128;
        if c > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    c as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::find_perfect_matching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_matching_is_a_matching() {
        let mut rng = StdRng::seed_from_u64(7);
        for (n, k, noise) in [(9, 3, 5), (12, 3, 0), (12, 4, 10), (8, 2, 6)] {
            let (h, m) = planted_matching(&mut rng, n, k, noise).unwrap();
            assert!(h.is_perfect_matching(&m), "n={n} k={k}");
            assert_eq!(h.n_edges(), n / k + noise);
            h.check_uniform(k).unwrap();
            h.check_simple().unwrap();
        }
    }

    #[test]
    fn planted_matching_found_by_solver() {
        let mut rng = StdRng::seed_from_u64(11);
        let (h, _) = planted_matching(&mut rng, 15, 3, 20).unwrap();
        assert!(has_perfect_matching(&h, &MatchingConfig::default()).unwrap());
    }

    #[test]
    fn bad_parameters_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(planted_matching(&mut rng, 10, 3, 0).is_err()); // 10 % 3 != 0
        assert!(planted_matching(&mut rng, 0, 3, 0).is_err());
        assert!(planted_matching(&mut rng, 6, 0, 0).is_err());
        assert!(planted_matching(&mut rng, 6, 3, 100).is_err()); // > C(6,3)
        assert!(random_uniform(&mut rng, 4, 5, 1).is_err());
        assert!(random_uniform(&mut rng, 4, 2, 100).is_err());
    }

    #[test]
    fn random_uniform_is_simple_and_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = random_uniform(&mut rng, 10, 3, 30).unwrap();
        assert_eq!(h.n_edges(), 30);
        h.check_uniform(3).unwrap();
        h.check_simple().unwrap();
    }

    #[test]
    fn certified_no_matching_is_certified() {
        let mut rng = StdRng::seed_from_u64(5);
        let h = certified_no_matching(&mut rng, 9, 3, 1, 200).unwrap();
        assert!(!has_perfect_matching(&h, &MatchingConfig::default()).unwrap());
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let gen = || {
            let mut rng = StdRng::seed_from_u64(42);
            planted_matching(&mut rng, 12, 3, 8).unwrap()
        };
        let (h1, m1) = gen();
        let (h2, m2) = gen();
        assert_eq!(h1, h2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(100, 3), 161_700);
    }

    #[test]
    fn sample_k_subset_is_a_subset() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let mut s = sample_k_subset(&mut rng, 10, 4);
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4);
            assert!(s.iter().all(|&v| v < 10));
        }
    }

    #[test]
    fn planted_solver_roundtrip_many_seeds() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (h, _) = planted_matching(&mut rng, 12, 3, 10).unwrap();
            let m = find_perfect_matching(&h, &MatchingConfig::default())
                .unwrap()
                .expect("planted instance must match");
            assert!(h.is_perfect_matching(&m));
        }
    }
}
