//! Exact perfect-matching search for k-uniform hypergraphs.
//!
//! k-DIMENSIONAL PERFECT MATCHING is NP-complete for `k ≥ 3` (3DM is one of
//! Karp's 21 problems), so the solver here is exponential: depth-first
//! search over the lowest uncovered vertex, memoizing covered-vertex
//! bitmasks that are known dead ends. Exact for up to 64 vertices, with a
//! node budget so callers get an error instead of an unbounded stall.
//!
//! A greedy heuristic ([`greedy_matching`]) is included for instance
//! generation and for contrast in benchmarks.

use std::collections::HashSet;

use crate::error::{Error, Result};
use crate::graph::Hypergraph;

/// Limits for the exact search.
#[derive(Clone, Debug)]
pub struct MatchingConfig {
    /// Node budget for the DFS (visited states).
    pub max_nodes: u64,
}

impl Default for MatchingConfig {
    fn default() -> Self {
        MatchingConfig {
            max_nodes: 50_000_000,
        }
    }
}

struct Dfs<'a> {
    edge_masks: &'a [u64],
    /// For each vertex, the edges containing it.
    by_vertex: &'a [Vec<usize>],
    full: u64,
    dead: HashSet<u64>,
    nodes: u64,
    max_nodes: u64,
}

impl Dfs<'_> {
    fn run(&mut self, covered: u64, chosen: &mut Vec<usize>) -> Result<bool> {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            return Err(Error::SolverLimit(format!(
                "node budget {} exhausted",
                self.max_nodes
            )));
        }
        if covered == self.full {
            return Ok(true);
        }
        if self.dead.contains(&covered) {
            return Ok(false);
        }
        let v = (!covered).trailing_zeros() as usize;
        for &e in &self.by_vertex[v] {
            let mask = self.edge_masks[e];
            if mask & covered == 0 {
                chosen.push(e);
                if self.run(covered | mask, chosen)? {
                    return Ok(true);
                }
                chosen.pop();
            }
        }
        self.dead.insert(covered);
        Ok(false)
    }
}

/// Finds a perfect matching (as edge indices) or proves none exists.
///
/// ```
/// use kanon_hypergraph::{Hypergraph, find_perfect_matching, MatchingConfig};
/// // Greedy would take {0,1,2} and get stuck; search backtracks.
/// let h = Hypergraph::new(6, vec![
///     vec![0, 1, 2], vec![0, 1, 3], vec![2, 4, 5],
/// ]).unwrap();
/// let m = find_perfect_matching(&h, &MatchingConfig::default()).unwrap().unwrap();
/// assert_eq!(m, vec![1, 2]);
/// ```
///
/// # Errors
/// * [`Error::SolverLimit`] if the hypergraph has more than 64 vertices or
///   the node budget is exhausted.
pub fn find_perfect_matching(
    h: &Hypergraph,
    config: &MatchingConfig,
) -> Result<Option<Vec<usize>>> {
    let n = h.n_vertices();
    if n > 64 {
        return Err(Error::SolverLimit(format!(
            "exact matching supports at most 64 vertices, got {n}"
        )));
    }
    if n == 0 {
        return Ok(Some(Vec::new()));
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let edge_masks: Vec<u64> = h
        .edges()
        .map(|e| e.iter().fold(0u64, |acc, &v| acc | (1u64 << v)))
        .collect();
    let by_vertex = h.incidence_lists();
    let mut dfs = Dfs {
        edge_masks: &edge_masks,
        by_vertex: &by_vertex,
        full,
        dead: HashSet::new(),
        nodes: 0,
        max_nodes: config.max_nodes,
    };
    let mut chosen = Vec::new();
    if dfs.run(0, &mut chosen)? {
        debug_assert!(h.is_perfect_matching(&chosen));
        Ok(Some(chosen))
    } else {
        Ok(None)
    }
}

/// Decision form of [`find_perfect_matching`].
///
/// # Errors
/// Same as [`find_perfect_matching`].
pub fn has_perfect_matching(h: &Hypergraph, config: &MatchingConfig) -> Result<bool> {
    Ok(find_perfect_matching(h, config)?.is_some())
}

/// Exact **maximum** matching: the largest set of pairwise-disjoint edges,
/// whether or not it covers every vertex. Branch and bound over edges in
/// index order with the bound `chosen + remaining_edges` and
/// `chosen + uncovered/k` (for k-uniform inputs); memoizes dead
/// `(next_edge, covered)` states implicitly through the incumbent.
///
/// # Errors
/// [`Error::SolverLimit`] if the graph has more than 64 vertices or the
/// node budget is exhausted.
pub fn maximum_matching(h: &Hypergraph, config: &MatchingConfig) -> Result<Vec<usize>> {
    let n = h.n_vertices();
    if n > 64 {
        return Err(Error::SolverLimit(format!(
            "exact matching supports at most 64 vertices, got {n}"
        )));
    }
    let edge_masks: Vec<u64> = h
        .edges()
        .map(|e| e.iter().fold(0u64, |acc, &v| acc | (1u64 << v)))
        .collect();
    let min_edge_size = h.edges().map(<[u32]>::len).min().unwrap_or(1).max(1);

    struct Search<'a> {
        edge_masks: &'a [u64],
        n: usize,
        min_edge_size: usize,
        best: Vec<usize>,
        nodes: u64,
        max_nodes: u64,
    }
    impl Search<'_> {
        fn run(&mut self, idx: usize, covered: u64, chosen: &mut Vec<usize>) -> Result<()> {
            self.nodes += 1;
            if self.nodes > self.max_nodes {
                return Err(Error::SolverLimit(format!(
                    "node budget {} exhausted",
                    self.max_nodes
                )));
            }
            if chosen.len() > self.best.len() {
                self.best = chosen.clone();
            }
            if idx == self.edge_masks.len() {
                return Ok(());
            }
            // Bounds: edges left, and vertices left / smallest edge size.
            let by_edges = chosen.len() + (self.edge_masks.len() - idx);
            let uncovered = self.n - covered.count_ones() as usize;
            let by_vertices = chosen.len() + uncovered / self.min_edge_size;
            if by_edges.min(by_vertices) <= self.best.len() {
                return Ok(());
            }
            // Take edge idx if possible.
            if self.edge_masks[idx] & covered == 0 {
                chosen.push(idx);
                self.run(idx + 1, covered | self.edge_masks[idx], chosen)?;
                chosen.pop();
            }
            // Skip it.
            self.run(idx + 1, covered, chosen)
        }
    }
    let mut search = Search {
        edge_masks: &edge_masks,
        n,
        min_edge_size,
        best: Vec::new(),
        nodes: 0,
        max_nodes: config.max_nodes,
    };
    search.run(0, 0, &mut Vec::new())?;
    Ok(search.best)
}

/// Greedy maximal matching: scan edges in order, keep each edge that is
/// disjoint from those already kept. Returns edge indices. Not guaranteed
/// maximum, let alone perfect.
#[must_use]
pub fn greedy_matching(h: &Hypergraph) -> Vec<usize> {
    let mut covered = vec![false; h.n_vertices()];
    let mut chosen = Vec::new();
    for (idx, e) in h.edges().enumerate() {
        if e.iter().all(|&v| !covered[v as usize]) {
            for &v in e {
                covered[v as usize] = true;
            }
            chosen.push(idx);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn h(n: usize, edges: Vec<Vec<u32>>) -> Hypergraph {
        Hypergraph::new(n, edges).unwrap()
    }

    #[test]
    fn finds_obvious_matching() {
        let g = h(6, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        let m = find_perfect_matching(&g, &MatchingConfig::default())
            .unwrap()
            .unwrap();
        assert!(g.is_perfect_matching(&m));
    }

    #[test]
    fn needs_backtracking() {
        // Greedy order takes {0,1,2} first, which blocks the only completion
        // {0,1,3} + {2,4,5}.
        let g = h(6, vec![vec![0, 1, 2], vec![0, 1, 3], vec![2, 4, 5]]);
        let m = find_perfect_matching(&g, &MatchingConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(m, vec![1, 2]);
        // Greedy fails here, demonstrating the need for search.
        let greedy = greedy_matching(&g);
        assert!(!g.is_perfect_matching(&greedy));
    }

    #[test]
    fn detects_no_matching() {
        // Vertex 5 appears in no edge.
        let g = h(6, vec![vec![0, 1, 2], vec![2, 3, 4]]);
        assert!(!has_perfect_matching(&g, &MatchingConfig::default()).unwrap());
        // All edges pairwise overlap.
        let g = h(6, vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0]]);
        assert!(!has_perfect_matching(&g, &MatchingConfig::default()).unwrap());
    }

    #[test]
    fn n_not_divisible_by_k_never_matches() {
        let g = h(5, vec![vec![0, 1, 2], vec![2, 3, 4]]);
        assert!(!has_perfect_matching(&g, &MatchingConfig::default()).unwrap());
    }

    #[test]
    fn empty_graph_trivially_matches() {
        let g = h(0, vec![]);
        assert_eq!(
            find_perfect_matching(&g, &MatchingConfig::default()).unwrap(),
            Some(vec![])
        );
    }

    #[test]
    fn vertex_limit_enforced() {
        let g = h(65, vec![vec![0, 1]]);
        assert!(matches!(
            find_perfect_matching(&g, &MatchingConfig::default()),
            Err(Error::SolverLimit(_))
        ));
    }

    #[test]
    fn node_budget_enforced() {
        // Dense instance with tiny budget.
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    edges.push(vec![a, b, c]);
                }
            }
        }
        let g = h(8, edges);
        let config = MatchingConfig { max_nodes: 2 };
        assert!(matches!(
            find_perfect_matching(&g, &config),
            Err(Error::SolverLimit(_))
        ));
    }

    #[test]
    fn two_uniform_graph_matching() {
        // Ordinary graph perfect matching: a 4-cycle.
        let g = h(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]]);
        let m = find_perfect_matching(&g, &MatchingConfig::default())
            .unwrap()
            .unwrap();
        assert!(g.is_perfect_matching(&m));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn maximum_matching_basics() {
        // Two disjoint edges plus a blocker.
        let g = h(6, vec![vec![0, 1, 2], vec![2, 3, 4], vec![3, 4, 5]]);
        let m = maximum_matching(&g, &MatchingConfig::default()).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m, vec![0, 2]);
        // A perfect matching is also maximum.
        let g2 = h(6, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(
            maximum_matching(&g2, &MatchingConfig::default())
                .unwrap()
                .len(),
            2
        );
        // No edges.
        let g3 = h(4, vec![]);
        assert!(maximum_matching(&g3, &MatchingConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn maximum_matching_beats_greedy_when_order_is_bad() {
        let g = h(6, vec![vec![0, 1, 2], vec![0, 1, 3], vec![2, 4, 5]]);
        assert_eq!(greedy_matching(&g).len(), 1);
        assert_eq!(
            maximum_matching(&g, &MatchingConfig::default())
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn maximum_matching_respects_budget() {
        let mut edges = Vec::new();
        for a in 0..9u32 {
            for b in (a + 1)..9 {
                edges.push(vec![a, b]);
            }
        }
        let g = h(9, edges);
        let tight = MatchingConfig { max_nodes: 3 };
        assert!(matches!(
            maximum_matching(&g, &tight),
            Err(Error::SolverLimit(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// maximum_matching size equals a brute-force maximum, and a
        /// perfect matching exists iff the maximum covers all vertices.
        #[test]
        fn maximum_matching_agrees_with_brute_force(
            edge_picks in proptest::collection::vec(
                proptest::collection::btree_set(0u32..8, 2),
                1..7,
            ),
        ) {
            let edges: Vec<Vec<u32>> = edge_picks
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect();
            let g = Hypergraph::new(8, edges).unwrap();
            let max = maximum_matching(&g, &MatchingConfig::default()).unwrap();
            // Brute force over all edge subsets.
            let m = g.n_edges();
            let mut best = 0usize;
            for mask in 0u32..(1 << m) {
                let sel: Vec<usize> = (0..m).filter(|&e| mask & (1 << e) != 0).collect();
                let mut covered = [false; 8];
                let mut ok = true;
                'outer: for &e in &sel {
                    for &v in g.edge(e) {
                        if covered[v as usize] {
                            ok = false;
                            break 'outer;
                        }
                        covered[v as usize] = true;
                    }
                }
                if ok {
                    best = best.max(sel.len());
                }
            }
            prop_assert_eq!(max.len(), best);
            let pm = find_perfect_matching(&g, &MatchingConfig::default()).unwrap();
            let covers_all = max.iter().map(|&e| g.edge(e).len()).sum::<usize>() == 8;
            prop_assert_eq!(pm.is_some(), covers_all);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// On random 3-uniform hypergraphs over 9 vertices the solver's
        /// answer is always certified: a returned matching verifies, and a
        /// `None` is corroborated by brute force over edge subsets.
        #[test]
        fn solver_agrees_with_brute_force(
            edge_picks in proptest::collection::vec(
                proptest::collection::btree_set(0u32..9, 3),
                1..8,
            ),
        ) {
            let edges: Vec<Vec<u32>> = edge_picks
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect();
            let g = Hypergraph::new(9, edges).unwrap();
            let found = find_perfect_matching(&g, &MatchingConfig::default()).unwrap();
            // Brute force: try all subsets of exactly 3 edges.
            let m = g.n_edges();
            let mut exists = false;
            for mask in 0u32..(1 << m) {
                if mask.count_ones() == 3 {
                    let sel: Vec<usize> =
                        (0..m).filter(|&e| mask & (1 << e) != 0).collect();
                    if g.is_perfect_matching(&sel) {
                        exists = true;
                        break;
                    }
                }
            }
            match found {
                Some(sel) => {
                    prop_assert!(g.is_perfect_matching(&sel));
                    prop_assert!(exists);
                }
                None => prop_assert!(!exists),
            }
        }
    }
}
