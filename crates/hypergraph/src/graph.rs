//! Validated k-uniform hypergraphs.

use crate::error::{Error, Result};

/// A hypergraph on vertices `0..n_vertices` with explicit edge lists.
///
/// Edges are stored sorted ascending, which makes simplicity checking and
/// set operations cheap. Construction validates vertex ranges and rejects
/// repeated vertices within an edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    n_vertices: usize,
    edges: Vec<Vec<u32>>,
}

impl Hypergraph {
    /// Builds a hypergraph, sorting each edge and validating it.
    ///
    /// # Errors
    /// [`Error::VertexOutOfRange`] or [`Error::DuplicateVertexInEdge`].
    pub fn new(n_vertices: usize, edges: Vec<Vec<u32>>) -> Result<Self> {
        let mut sorted_edges = edges;
        for (idx, e) in sorted_edges.iter_mut().enumerate() {
            e.sort_unstable();
            if let Some(w) = e.windows(2).find(|w| w[0] == w[1]) {
                let _ = w;
                return Err(Error::DuplicateVertexInEdge { edge: idx });
            }
            if let Some(&v) = e.iter().find(|&&v| v as usize >= n_vertices) {
                return Err(Error::VertexOutOfRange {
                    edge: idx,
                    vertex: v,
                    n: n_vertices,
                });
            }
        }
        Ok(Hypergraph {
            n_vertices,
            edges: sorted_edges,
        })
    }

    /// Number of vertices (`n = |U|`).
    #[must_use]
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of edges (`m = |E|`).
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Borrow edge `e` (sorted vertex list).
    ///
    /// # Panics
    /// Panics if `e` is out of bounds.
    #[must_use]
    pub fn edge(&self, e: usize) -> &[u32] {
        &self.edges[e]
    }

    /// Iterate over the edges.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = &[u32]> {
        self.edges.iter().map(Vec::as_slice)
    }

    /// Whether vertex `v` lies on edge `e`.
    #[must_use]
    pub fn incident(&self, v: u32, e: usize) -> bool {
        self.edges[e].binary_search(&v).is_ok()
    }

    /// Validates that every edge has exactly `k` vertices.
    ///
    /// # Errors
    /// [`Error::NotUniform`] naming the first offending edge.
    pub fn check_uniform(&self, k: usize) -> Result<()> {
        for (idx, e) in self.edges.iter().enumerate() {
            if e.len() != k {
                return Err(Error::NotUniform {
                    edge: idx,
                    found: e.len(),
                    expected: k,
                });
            }
        }
        Ok(())
    }

    /// Validates that no two edges are identical (both reductions assume a
    /// *simple* hypergraph).
    ///
    /// # Errors
    /// [`Error::NotSimple`] naming an offending pair.
    pub fn check_simple(&self) -> Result<()> {
        let mut indexed: Vec<(usize, &Vec<u32>)> = self.edges.iter().enumerate().collect();
        indexed.sort_by(|a, b| a.1.cmp(b.1));
        for w in indexed.windows(2) {
            if w[0].1 == w[1].1 {
                let (mut a, mut b) = (w[0].0, w[1].0);
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                return Err(Error::NotSimple {
                    first: a,
                    second: b,
                });
            }
        }
        Ok(())
    }

    /// Per-vertex incidence lists: `result[v]` = edges containing `v`.
    #[must_use]
    pub fn incidence_lists(&self) -> Vec<Vec<usize>> {
        let mut lists = vec![Vec::new(); self.n_vertices];
        for (idx, e) in self.edges.iter().enumerate() {
            for &v in e {
                lists[v as usize].push(idx);
            }
        }
        lists
    }

    /// Degree (number of incident edges) of vertex `v`.
    #[must_use]
    pub fn degree(&self, v: u32) -> usize {
        self.edges
            .iter()
            .filter(|e| e.binary_search(&v).is_ok())
            .count()
    }

    /// Whether the edge set `selection` (by index) is a perfect matching:
    /// pairwise disjoint and covering every vertex.
    #[must_use]
    pub fn is_perfect_matching(&self, selection: &[usize]) -> bool {
        let mut covered = vec![false; self.n_vertices];
        for &e in selection {
            let Some(edge) = self.edges.get(e) else {
                return false;
            };
            for &v in edge {
                if covered[v as usize] {
                    return false;
                }
                covered[v as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_cover() -> Hypergraph {
        // 6 vertices, edges {0,1,2}, {3,4,5}, {2,3,4}.
        Hypergraph::new(6, vec![vec![0, 1, 2], vec![3, 4, 5], vec![2, 3, 4]]).unwrap()
    }

    #[test]
    fn construction_sorts_edges() {
        let h = Hypergraph::new(4, vec![vec![3, 1, 0]]).unwrap();
        assert_eq!(h.edge(0), &[0, 1, 3]);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Hypergraph::new(3, vec![vec![0, 5]]).unwrap_err();
        assert!(matches!(err, Error::VertexOutOfRange { vertex: 5, .. }));
    }

    #[test]
    fn rejects_duplicate_vertex() {
        let err = Hypergraph::new(3, vec![vec![1, 1, 2]]).unwrap_err();
        assert!(matches!(err, Error::DuplicateVertexInEdge { edge: 0 }));
    }

    #[test]
    fn uniformity_check() {
        let h = triangle_cover();
        assert!(h.check_uniform(3).is_ok());
        assert!(matches!(
            h.check_uniform(2),
            Err(Error::NotUniform { expected: 2, .. })
        ));
        let mixed = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2, 3]]).unwrap();
        assert!(matches!(
            mixed.check_uniform(2),
            Err(Error::NotUniform { edge: 1, .. })
        ));
    }

    #[test]
    fn simplicity_check() {
        let h = triangle_cover();
        assert!(h.check_simple().is_ok());
        let dup = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3], vec![1, 0]]).unwrap();
        assert!(matches!(
            dup.check_simple(),
            Err(Error::NotSimple {
                first: 0,
                second: 2
            })
        ));
    }

    #[test]
    fn incidence_and_degree() {
        let h = triangle_cover();
        assert!(h.incident(2, 0));
        assert!(h.incident(2, 2));
        assert!(!h.incident(2, 1));
        assert_eq!(h.degree(2), 2);
        assert_eq!(h.degree(0), 1);
        let lists = h.incidence_lists();
        assert_eq!(lists[2], vec![0, 2]);
        assert_eq!(lists[5], vec![1]);
    }

    #[test]
    fn perfect_matching_validation() {
        let h = triangle_cover();
        assert!(h.is_perfect_matching(&[0, 1]));
        assert!(!h.is_perfect_matching(&[0, 2])); // overlap at vertex 2
        assert!(!h.is_perfect_matching(&[0])); // vertices 3-5 uncovered
        assert!(!h.is_perfect_matching(&[0, 9])); // bogus index
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(0, vec![]).unwrap();
        assert_eq!(h.n_vertices(), 0);
        assert_eq!(h.n_edges(), 0);
        assert!(h.is_perfect_matching(&[]));
        assert!(h.check_simple().is_ok());
        assert!(h.check_uniform(3).is_ok());
    }
}
