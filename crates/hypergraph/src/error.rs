//! Error type for hypergraph construction and solving.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from hypergraph validation and the matching solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An edge references a vertex `>= n_vertices`.
    VertexOutOfRange {
        /// Offending edge index.
        edge: usize,
        /// Offending vertex id.
        vertex: u32,
        /// Number of vertices.
        n: usize,
    },
    /// An edge contains a repeated vertex.
    DuplicateVertexInEdge {
        /// Offending edge index.
        edge: usize,
    },
    /// The hypergraph is not k-uniform as required.
    NotUniform {
        /// Offending edge index.
        edge: usize,
        /// Its size.
        found: usize,
        /// Required size.
        expected: usize,
    },
    /// Two edges are identical (the reductions require simple hypergraphs).
    NotSimple {
        /// The two equal edge indices.
        first: usize,
        /// Second of the pair.
        second: usize,
    },
    /// The exact matching solver exceeded its limits.
    SolverLimit(String),
    /// Generator parameters are inconsistent (e.g. `n` not divisible by `k`).
    BadParameters(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::VertexOutOfRange { edge, vertex, n } => {
                write!(f, "edge {edge} references vertex {vertex}, but n = {n}")
            }
            Error::DuplicateVertexInEdge { edge } => {
                write!(f, "edge {edge} contains a repeated vertex")
            }
            Error::NotUniform {
                edge,
                found,
                expected,
            } => write!(
                f,
                "edge {edge} has {found} vertices; expected a {expected}-uniform hypergraph"
            ),
            Error::NotSimple { first, second } => {
                write!(
                    f,
                    "edges {first} and {second} are identical; hypergraph must be simple"
                )
            }
            Error::SolverLimit(msg) => write!(f, "matching solver limit: {msg}"),
            Error::BadParameters(msg) => write!(f, "bad generator parameters: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(Error::VertexOutOfRange {
            edge: 1,
            vertex: 9,
            n: 5
        }
        .to_string()
        .contains("vertex 9"));
        assert!(Error::DuplicateVertexInEdge { edge: 2 }
            .to_string()
            .contains("edge 2"));
        assert!(Error::NotUniform {
            edge: 0,
            found: 2,
            expected: 3
        }
        .to_string()
        .contains("3-uniform"));
        assert!(Error::NotSimple {
            first: 0,
            second: 4
        }
        .to_string()
        .contains("identical"));
        assert!(Error::SolverLimit("x".into()).to_string().contains("x"));
        assert!(Error::BadParameters("y".into()).to_string().contains("y"));
    }
}
