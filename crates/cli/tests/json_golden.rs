//! Golden-file tests pinning the `--json` output shape of `anonymize` and
//! `pipeline`.
//!
//! Timing fields (`elapsed_ms`, `rows_per_sec`) are scrubbed to `0` before
//! comparison; everything else — key order included — must match the files
//! under `tests/golden/` byte for byte. Regenerate a golden by running the
//! test with `UPDATE_GOLDEN=1`.

use kanon_cli::run;

/// Replaces every numeric value following `"key":` with `0` so wall-clock
/// noise cannot fail the comparison.
fn scrub_number(s: &str, key: &str) -> String {
    let marker = format!("\"{key}\":");
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find(&marker) {
        let after = i + marker.len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

fn normalize(s: &str) -> String {
    scrub_number(&scrub_number(s, "elapsed_ms"), "rows_per_sec")
}

fn assert_matches_golden(actual: &str, name: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    let actual = normalize(actual);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, format!("{actual}\n")).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden `{path}`: {e}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual,
        expected.trim_end_matches('\n'),
        "JSON shape drifted from {name}; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

const SMALL: &str = "age,zip\n34,02139\n35,02139\n47,02144\n48,02144\n";

/// Twelve rows over two tiny columns: enough for two hash shards at
/// `--shard-size 5` (with `k = 2` the floor is `2k - 1 = 3`), fully
/// deterministic because both the FNV hash and the solvers are.
const MEDIUM: &str = "a,b\n\
    x,1\ny,1\nx,1\ny,2\nx,2\ny,2\n\
    x,1\ny,1\nx,2\ny,2\nx,1\ny,1\n";

#[test]
fn anonymize_json_shape_is_stable() {
    let dir = std::env::temp_dir().join(format!("kanon-golden-a-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.csv");
    std::fs::write(&input, SMALL).unwrap();
    let outcome = run(&args(&[
        "anonymize",
        "-k",
        "2",
        "--input",
        input.to_str().unwrap(),
        "--algorithm",
        "ladder",
        "--json",
    ]))
    .unwrap();
    assert_matches_golden(&outcome.stdout, "anonymize.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipeline_json_shape_is_stable() {
    let dir = std::env::temp_dir().join(format!("kanon-golden-p-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.csv");
    std::fs::write(&input, MEDIUM).unwrap();
    let outcome = run(&args(&[
        "pipeline",
        "-k",
        "2",
        "--input",
        input.to_str().unwrap(),
        "--quasi",
        "a,b",
        "--shard-size",
        "5",
        "--workers",
        "1",
        "--json",
    ]))
    .unwrap();
    assert_matches_golden(&outcome.stdout, "pipeline.json");
    std::fs::remove_dir_all(&dir).ok();
}

/// Without `--quasi` the pipeline takes the schema-driven auto path; its
/// JSON keeps the `"command":"pipeline"` envelope and adds `"mode"` plus a
/// `"generalization"` block inside the report.
#[test]
fn pipeline_auto_json_shape_is_stable() {
    let dir = std::env::temp_dir().join(format!("kanon-golden-g-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.csv");
    std::fs::write(&input, MEDIUM).unwrap();
    let outcome = run(&args(&[
        "pipeline",
        "-k",
        "2",
        "--input",
        input.to_str().unwrap(),
        "--shard-size",
        "5",
        "--workers",
        "1",
        "--json",
    ]))
    .unwrap();
    assert_matches_golden(&outcome.stdout, "pipeline_auto.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_mode_with_output_file_moves_csv_out_of_stdout() {
    let dir = std::env::temp_dir().join(format!("kanon-golden-f-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.csv");
    let output = dir.join("out.csv");
    std::fs::write(&input, SMALL).unwrap();
    let outcome = run(&args(&[
        "anonymize",
        "-k",
        "2",
        "--input",
        input.to_str().unwrap(),
        "--output",
        output.to_str().unwrap(),
        "--json",
    ]))
    .unwrap();
    assert!(!outcome.stdout.contains("\"csv\""), "{}", outcome.stdout);
    let released = std::fs::read_to_string(&output).unwrap();
    assert!(released.starts_with("age,zip\n"), "{released}");
    std::fs::remove_dir_all(&dir).ok();
}
