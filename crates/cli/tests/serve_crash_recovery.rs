//! Crash-safety of `kanon serve --data-dir`, proven with a real process
//! and `kill -9`: every ops batch the server acknowledged with `200`
//! before the kill must be present — and byte-identical — after an
//! unclean restart. A batch racing the kill may land or not, but the
//! store must come back as some whole prefix, never half a batch.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kanon-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns `kanon serve` and parses the bound address off its stdout.
fn spawn_server(data_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kanon"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--data-dir",
            data_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn kanon serve");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announce line");
    let addr = line
        .trim()
        .strip_prefix("kanon-service listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

/// One HTTP exchange; `(status, body)`.
fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body separator");
    let status = head.split(' ').nth(1).unwrap().parse().unwrap();
    (status, body.to_string())
}

fn extract_number(text: &str, prefix: &str) -> Option<u64> {
    let rest = &text[text.find(prefix)? + prefix.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Polls `/readyz` until recovery is done and nothing is quarantined.
fn await_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http(addr, "GET", "/readyz", &[]);
        if status == 200 {
            return;
        }
        assert!(
            !body.contains("\"quarantined\":[\""),
            "a clean kill must never quarantine: {body}"
        );
        assert!(Instant::now() < deadline, "never ready: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn ops_batch(tag: u64) -> String {
    format!(
        "op,id,a,b\ninsert,,v{},w{}\ninsert,,v{},w{}\n",
        tag % 7,
        tag % 5,
        (tag + 1) % 7,
        (tag + 1) % 5
    )
}

#[test]
fn sigkill_between_acknowledged_batches_loses_nothing() {
    let dir = scratch("between");
    let (mut child, mut addr) = spawn_server(&dir);
    await_ready(addr);

    let seed = "a,b\nv1,w1\nv1,w1\nv2,w2\nv2,w2\nv3,w0\nv3,w0\n";
    let (status, body) = http(
        addr,
        "PUT",
        "/v1/tables/t?k=2&shard_size=4",
        seed.as_bytes(),
    );
    assert_eq!(status, 201, "{body}");

    // Two generations: each acknowledges two more batches, is killed
    // with SIGKILL (no shutdown path runs), and the next generation must
    // report exactly the acknowledged sequence number and identical
    // release bytes.
    let mut acked = 0u64;
    for generation in 0..2 {
        for _ in 0..2 {
            let (status, body) = http(
                addr,
                "POST",
                "/v1/tables/t/ops",
                ops_batch(acked).as_bytes(),
            );
            assert_eq!(status, 200, "gen {generation}: {body}");
            acked += 1;
            assert_eq!(extract_number(&body, "\"seq\":"), Some(acked), "{body}");
        }
        let (status, release_before) = http(addr, "GET", "/v1/tables/t/release", &[]);
        assert_eq!(status, 200);

        child.kill().expect("SIGKILL");
        child.wait().expect("reap");

        let (next_child, next_addr) = spawn_server(&dir);
        child = next_child;
        addr = next_addr;
        await_ready(addr);
        let (status, status_json) = http(addr, "GET", "/v1/tables/t", &[]);
        assert_eq!(status, 200, "gen {generation}: {status_json}");
        assert_eq!(
            extract_number(&status_json, "\"seq\":"),
            Some(acked),
            "gen {generation}: acknowledged batches lost: {status_json}"
        );
        let (status, release_after) = http(addr, "GET", "/v1/tables/t/release", &[]);
        assert_eq!(status, 200);
        assert_eq!(
            release_after, release_before,
            "gen {generation}: release changed across the crash"
        );
    }

    child.kill().ok();
    child.wait().ok();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_batch_recovers_a_whole_prefix() {
    let dir = scratch("midbatch");
    let (mut child, addr) = spawn_server(&dir);
    await_ready(addr);

    let seed = "a,b\nv1,w1\nv1,w1\nv2,w2\nv2,w2\nv3,w0\nv3,w0\n";
    let (status, body) = http(
        addr,
        "PUT",
        "/v1/tables/t?k=2&shard_size=4",
        seed.as_bytes(),
    );
    assert_eq!(status, 201, "{body}");
    let (status, body) = http(addr, "POST", "/v1/tables/t/ops", ops_batch(0).as_bytes());
    assert_eq!(status, 200, "{body}");

    // Race a batch against SIGKILL: the ack may or may not arrive, but
    // recovery must land on a whole prefix — the acknowledged batch plus
    // at most the racing one, never a torn write served as state.
    let racer = std::thread::spawn(move || {
        // Ignore transport errors: the server may die mid-exchange.
        let _ = std::panic::catch_unwind(|| {
            http(addr, "POST", "/v1/tables/t/ops", ops_batch(1).as_bytes())
        });
    });
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    racer.join().expect("racer thread");

    let (mut child, addr) = spawn_server(&dir);
    await_ready(addr);
    let (status, status_json) = http(addr, "GET", "/v1/tables/t", &[]);
    assert_eq!(status, 200, "{status_json}");
    let seq = extract_number(&status_json, "\"seq\":").unwrap();
    assert!(
        seq == 1 || seq == 2,
        "recovered seq {seq} is not a prefix of [acked=1, racing=2]: {status_json}"
    );
    let n_rows = extract_number(&status_json, "\"n_rows\":").unwrap();
    assert_eq!(n_rows, 6 + 2 * seq, "rows must match the recovered prefix");
    // The recovered table is fully usable.
    let (status, body) = http(addr, "POST", "/v1/tables/t/ops", ops_batch(9).as_bytes());
    assert_eq!(status, 200, "{body}");
    assert_eq!(extract_number(&body, "\"seq\":"), Some(seq + 1), "{body}");

    child.kill().ok();
    child.wait().ok();
    let _ = std::fs::remove_dir_all(&dir);
}
