//! Command execution for the `kanon` binary.

use std::io::Read;

use kanon_core::algo;
use kanon_relation::csv;
use kanon_relation::{Schema, Table};
use kanon_workloads::{census_table, CensusParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{usage, Algorithm, Command, SchemaAction};
use crate::{CliError, Outcome};

/// Executes a parsed command.
///
/// # Errors
/// [`CliError::Failed`] on I/O or solver failures; [`CliError::Usage`] on
/// semantic argument problems (e.g. unknown quasi-identifier column).
pub fn execute(cmd: &Command) -> Result<Outcome, CliError> {
    match cmd {
        Command::Help => Ok(Outcome {
            stdout: usage(),
            notes: Vec::new(),
        }),
        Command::Generate {
            rows,
            seed,
            regions,
            workload,
            cols,
            alphabet,
            exponent,
            messy,
            output,
        } => {
            let streams_itself = workload == "zipf" || *messy;
            let mut outcome = if *messy {
                generate_messy(*rows, *seed, *regions, output.as_deref())?
            } else {
                match workload.as_str() {
                    "zipf" => {
                        generate_zipf(*rows, *seed, *cols, *alphabet, exponent, output.as_deref())?
                    }
                    _ => generate(*rows, *seed, *regions)?,
                }
            };
            // The zipf and messy generators stream to the file themselves;
            // census output (small by design) is written here.
            if let Some(path) = output {
                if !streams_itself {
                    std::fs::write(path, &outcome.stdout)
                        .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
                    outcome.stdout = String::new();
                }
                outcome.notes.push(format!("wrote {path}"));
            }
            Ok(outcome)
        }
        Command::Attack {
            released,
            external,
            join,
        } => {
            let released_text = read_input(released)?;
            let external_text = read_input(external)?;
            attack(&released_text, &external_text, join)
        }
        Command::Verify { k, input, quasi } => {
            let text = read_input(input)?;
            verify(&text, *k, quasi.as_deref())
        }
        Command::Anonymize {
            k,
            input,
            output,
            algorithm,
            quasi,
            threads,
            emit_mask,
            deadline_ms,
            max_memory_mb,
            json,
        } => {
            let text = read_input(input)?;
            let (mut outcome, mask, csv_for_file) = anonymize(
                &text,
                *k,
                *algorithm,
                quasi.as_deref(),
                *threads,
                *deadline_ms,
                *max_memory_mb,
                *json,
                output.is_some(),
            )?;
            if let Some(path) = emit_mask {
                std::fs::write(path, mask)
                    .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
                outcome
                    .notes
                    .push(format!("wrote suppression mask to {path}"));
            }
            if let Some(path) = output {
                // In JSON mode stdout carries the report, so the released
                // CSV travels in the side channel; otherwise stdout *is*
                // the CSV and moves to the file wholesale.
                let payload = csv_for_file.as_deref().unwrap_or(outcome.stdout.as_str());
                std::fs::write(path, payload)
                    .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
                outcome.notes.push(format!("wrote {path}"));
                if csv_for_file.is_none() {
                    outcome.stdout = String::new();
                }
            }
            Ok(outcome)
        }
        Command::Pipeline {
            k,
            input,
            output,
            shard_size,
            strategy,
            buckets,
            workers,
            split_unit,
            quasi,
            hierarchies,
            compare,
            privacy,
            sensitive,
            deadline_ms,
            max_memory_mb,
            json,
        } => pipeline(
            *k,
            input,
            output.as_deref(),
            *shard_size,
            *strategy,
            *buckets,
            *workers,
            *split_unit,
            quasi.as_deref(),
            hierarchies.as_deref(),
            *compare,
            privacy.as_deref(),
            sensitive.as_deref(),
            *deadline_ms,
            *max_memory_mb,
            *json,
        ),
        Command::Schema(action) => schema_cmd(action),
        Command::Delta(action) => delta(action),
        Command::Serve {
            addr,
            workers,
            queue_depth,
            pool_memory_mb,
            data_dir,
        } => serve(
            addr,
            *workers,
            *queue_depth,
            *pool_memory_mb,
            data_dir.as_deref(),
        ),
        Command::BenchServe {
            addr,
            requests,
            clients,
            rows,
            k,
            shard_size,
            deadline_ms,
            workers,
            queue_depth,
            seed,
            out,
            table,
        } => bench_serve(
            addr.as_deref(),
            *requests,
            *clients,
            *rows,
            *k,
            *shard_size,
            *deadline_ms,
            *workers,
            *queue_depth,
            *seed,
            out.as_deref(),
            *table,
        ),
    }
}

/// Boots the anonymization service and blocks forever. The bound address
/// is printed before blocking so scripts can wait on it.
fn serve(
    addr: &str,
    workers: usize,
    queue_depth: usize,
    pool_memory_mb: u64,
    data_dir: Option<&str>,
) -> Result<Outcome, CliError> {
    let pool_memory_bytes = pool_memory_mb * 1024 * 1024;
    let config = kanon_service::ServiceConfig {
        addr: addr.to_string(),
        workers,
        queue_depth,
        pool_memory_bytes,
        default_job_memory_bytes: (pool_memory_bytes / workers.max(1) as u64).max(1),
        data_dir: data_dir.map(std::path::PathBuf::from),
        ..kanon_service::ServiceConfig::default()
    };
    let server = kanon_service::Server::start(config)
        .map_err(|e| CliError::Failed(format!("cannot start service: {e}")))?;
    // `execute` normally returns an Outcome to print, but a server has no
    // end state: announce the address on stdout directly and park.
    println!("kanon-service listening on {}", server.addr());
    loop {
        std::thread::park();
    }
}

/// Runs the closed-loop service bench and prints its JSON report. A
/// failed acceptance gate (5xx, lost jobs, counter mismatch) exits
/// nonzero so CI can assert on it directly.
#[allow(clippy::too_many_arguments)]
fn bench_serve(
    addr: Option<&str>,
    requests: usize,
    clients: usize,
    rows: usize,
    k: usize,
    shard_size: usize,
    deadline_ms: Option<u64>,
    workers: usize,
    queue_depth: usize,
    seed: u64,
    out: Option<&str>,
    table: bool,
) -> Result<Outcome, CliError> {
    let config = kanon_service::BenchConfig {
        addr: addr.map(str::to_string),
        requests,
        clients,
        rows,
        k,
        shard_size,
        deadline_ms,
        server_workers: workers,
        queue_depth,
        out_path: out.map(str::to_string),
        seed,
        table_mode: table,
    };
    let report = kanon_service::run_bench(&config)
        .map_err(|e| CliError::Failed(format!("bench-serve failed: {e}")))?;
    let json = report.to_json();
    if !report.ok() {
        return Err(CliError::Failed(format!(
            "bench-serve acceptance gate failed: {json}"
        )));
    }
    let mut notes = Vec::new();
    if let Some(path) = out {
        notes.push(format!("wrote {path}"));
    }
    Ok(Outcome {
        stdout: json,
        notes,
    })
}

/// Parses CSV input, rejecting tables with no data rows up front
/// ([`CliError::EmptyInput`]) so solvers never see a degenerate instance.
fn parse_table(text: &str) -> Result<Table, CliError> {
    csv::parse_non_empty(text).map_err(|e| match e {
        kanon_relation::Error::EmptyTable => CliError::EmptyInput,
        other => CliError::Failed(other.to_string()),
    })
}

fn read_input(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Failed(format!("cannot read stdin: {e}")))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Failed(format!("cannot read `{path}`: {e}")))
    }
}

fn generate(rows: usize, seed: u64, regions: usize) -> Result<Outcome, CliError> {
    if regions == 0 || regions > 900 {
        return Err(CliError::Usage(format!(
            "--regions must be in 1..=900\n\n{}",
            usage()
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let table = census_table(&mut rng, &CensusParams { n: rows, regions });
    Ok(Outcome {
        stdout: csv::to_string(&table),
        notes: vec![format!(
            "generated {rows} census-like records (seed {seed})"
        )],
    })
}

/// Resolves quasi-identifier names to column indices (default: all).
fn quasi_indices(schema: &Schema, quasi: Option<&[String]>) -> Result<Vec<usize>, CliError> {
    match quasi {
        None => Ok((0..schema.arity()).collect()),
        Some(names) => names
            .iter()
            .map(|n| {
                schema
                    .index_of(n)
                    .map_err(|_| CliError::Usage(format!("unknown quasi-identifier column `{n}`")))
            })
            .collect(),
    }
}

fn attack(released_text: &str, external_text: &str, join: &[String]) -> Result<Outcome, CliError> {
    let released = parse_table(released_text)?;
    let external = parse_table(external_text)?;
    let pairs: Vec<(&str, &str)> = join.iter().map(|c| (c.as_str(), c.as_str())).collect();
    let report = kanon_relation::linkage_attack(&released, &external, &pairs)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let stdout = format!(
        "attacked records: {}\nuniquely re-identified: {} ({:.1}%)\nno candidates: {}\nsmallest candidate set: {}\nmean candidate set: {:.2}\n",
        report.attacked,
        report.unique_matches,
        100.0 * report.reidentification_rate(),
        report.no_match,
        report.min_candidates,
        report.mean_candidates,
    );
    Ok(Outcome {
        stdout,
        notes: vec![format!(
            "joined on {} column(s): {}",
            join.len(),
            join.join(",")
        )],
    })
}

fn verify(text: &str, k: usize, quasi: Option<&[String]>) -> Result<Outcome, CliError> {
    let table = parse_table(text)?;
    if k == 0 {
        return Err(CliError::BadK {
            k,
            n: table.n_rows(),
        });
    }
    let cols = quasi_indices(table.schema(), quasi)?;
    let mut counts: std::collections::HashMap<Vec<&str>, usize> = std::collections::HashMap::new();
    for row in table.rows() {
        let key: Vec<&str> = cols.iter().map(|&j| row[j].as_str()).collect();
        *counts.entry(key).or_insert(0) += 1;
    }
    let level = counts.values().copied().min().unwrap_or(0);
    let stars = table
        .rows()
        .flat_map(|r| cols.iter().map(move |&j| &r[j]))
        .filter(|v| v.as_str() == "*")
        .count();
    let report = format!(
        "rows: {}\nquasi-identifier columns: {}\nanonymity level: {}\nsuppressed cells: {}\n",
        table.n_rows(),
        cols.len(),
        level,
        stars
    );
    if table.n_rows() > 0 && level < k {
        // Name the first few offending rows so the failure is actionable:
        // the first row of each under-sized group, in table order.
        let mut seen: std::collections::HashSet<Vec<&str>> = std::collections::HashSet::new();
        let mut offenders: Vec<usize> = Vec::new();
        for (i, row) in table.rows().enumerate() {
            let key: Vec<&str> = cols.iter().map(|&j| row[j].as_str()).collect();
            if counts[&key] < k && seen.insert(key) {
                offenders.push(i);
                if offenders.len() == 5 {
                    break;
                }
            }
        }
        return Err(CliError::Failed(format!(
            "{report}NOT {k}-anonymous (smallest group has {level} rows; \
             first offending rows: {offenders:?})"
        )));
    }
    Ok(Outcome {
        stdout: report,
        notes: vec![format!("{k}-anonymity holds")],
    })
}

/// Translates `--deadline-ms`/`--max-memory-mb` into a [`Budget`]. Without
/// them the budget is unlimited and governed paths behave byte-identically
/// to the ungoverned ones.
fn build_budget(
    deadline_ms: Option<u64>,
    max_memory_mb: Option<u64>,
) -> kanon_core::govern::Budget {
    let mut b = kanon_core::govern::Budget::builder();
    if let Some(ms) = deadline_ms {
        b = b.deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(mb) = max_memory_mb {
        b = b.max_memory_bytes(mb.saturating_mul(1024 * 1024));
    }
    b.build()
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn anonymize(
    text: &str,
    k: usize,
    algorithm: Algorithm,
    quasi: Option<&[String]>,
    threads: usize,
    deadline_ms: Option<u64>,
    max_memory_mb: Option<u64>,
    json: bool,
    to_file: bool,
) -> Result<(Outcome, String, Option<String>), CliError> {
    let table = parse_table(text)?;
    let cols = quasi_indices(table.schema(), quasi)?;
    if k == 0 || k > table.n_rows() {
        return Err(CliError::BadK {
            k,
            n: table.n_rows(),
        });
    }

    // Project onto the quasi-identifier columns and encode.
    let qi_names: Vec<&str> = cols
        .iter()
        .map(|&j| table.schema().names()[j].as_str())
        .collect();
    let qi_schema = Schema::new(qi_names.clone()).map_err(|e| CliError::Failed(e.to_string()))?;
    let mut qi_table = Table::new(qi_schema);
    for row in table.rows() {
        qi_table
            .push_row(cols.iter().map(|&j| row[j].clone()).collect())
            .map_err(|e| CliError::Failed(e.to_string()))?;
    }
    let (ds, _codec) = qi_table.encode();

    let started = std::time::Instant::now();
    let center_config = kanon_core::greedy::CenterConfig {
        threads,
        ..Default::default()
    };
    let budget = build_budget(deadline_ms, max_memory_mb);
    let mut ladder_notes: Vec<String> = Vec::new();
    let mut ladder_report: Option<kanon_baselines::RunReport> = None;
    let result = match algorithm {
        Algorithm::Center => algo::try_center_greedy_governed(&ds, k, &center_config, &budget),
        Algorithm::Exhaustive => {
            algo::try_exhaustive_greedy_governed(&ds, k, &Default::default(), &budget)
        }
        Algorithm::Ladder => {
            let config = kanon_baselines::LadderConfig {
                budget: budget.clone(),
                center: center_config.clone(),
                ..Default::default()
            };
            kanon_baselines::run_ladder(&ds, k, &config).map(|(anon, report)| {
                for attempt in &report.attempts {
                    if let kanon_baselines::RungOutcome::Failed { reason } = &attempt.outcome {
                        ladder_notes.push(format!(
                            "rung {} abandoned after {:.2?}: {reason}",
                            attempt.rung, attempt.elapsed
                        ));
                    }
                }
                ladder_notes.push(format!(
                    "ladder answered on rung {} (guarantee: {})",
                    report.rung, report.guarantee
                ));
                ladder_report = Some(report);
                anon
            })
        }
        Algorithm::Forest => {
            kanon_baselines::forest::forest(&ds, k, &Default::default()).and_then(|partition| {
                let suppressor = kanon_core::rounding::suppressor_for_partition(&ds, &partition)?;
                let (table, cost) =
                    kanon_core::suppression::verify_k_anonymity(&ds, &suppressor, k)?;
                Ok(kanon_core::Anonymization {
                    partition,
                    suppressor,
                    table,
                    cost,
                    algorithm: kanon_core::Algorithm::External("k-forest"),
                })
            })
        }
        Algorithm::Exact => algo::exact_optimal(&ds, k),
    }
    .map_err(|e| {
        CliError::Failed(format!(
            "anonymization failed: {e}\nhint: `center` handles the largest instances; \
             --deadline-ms runs the degradation ladder"
        ))
    })?;
    let elapsed = started.elapsed();

    // Reassemble the full table, starring suppressed quasi cells.
    let mut out = Table::new(table.schema().clone());
    for (i, row) in table.rows().enumerate() {
        let mut new_row: Vec<String> = row.to_vec();
        for (qi_pos, &j) in cols.iter().enumerate() {
            if result.suppressor.is_suppressed(i, qi_pos) {
                new_row[j] = "*".to_string();
            }
        }
        out.push_row(new_row)
            .map_err(|e| CliError::Failed(e.to_string()))?;
    }

    let algo_name = match algorithm {
        Algorithm::Center => "center greedy (Thm 4.2)",
        Algorithm::Exhaustive => "exhaustive greedy (Thm 4.1)",
        Algorithm::Forest => "k-forest (follow-up literature)",
        Algorithm::Exact => "exact optimum",
        Algorithm::Ladder => "degradation ladder",
    };
    let mut notes = vec![
        format!("algorithm: {algo_name}"),
        format!(
            "suppressed {} of {} quasi-identifier cells ({:.1}%)",
            result.cost,
            ds.n_cells(),
            100.0 * result.suppression_rate()
        ),
        format!("groups: {}", result.partition.n_blocks()),
        format!("time: {elapsed:.2?}"),
    ];
    notes.extend(ladder_notes);
    let released = csv::to_string(&out);
    let (stdout, csv_for_file) = if json {
        let short_name = match algorithm {
            Algorithm::Center => "center",
            Algorithm::Exhaustive => "exhaustive",
            Algorithm::Forest => "forest",
            Algorithm::Exact => "exact",
            Algorithm::Ladder => "ladder",
        };
        let mut obj = crate::json::JsonObject::new();
        obj.string("command", "anonymize")
            .number("k", k as u128)
            .string("algorithm", short_name)
            .number("n_rows", ds.n_rows() as u128)
            .number("quasi_cols", ds.n_cols() as u128)
            .number("groups", result.partition.n_blocks() as u128)
            .number("cost", result.cost as u128)
            .number("cells", ds.n_cells() as u128)
            .raw(
                "suppression_rate",
                &format!("{:.4}", result.suppression_rate()),
            )
            .number("elapsed_ms", elapsed.as_millis());
        if let Some(report) = &ladder_report {
            let mut attempts = String::from("[");
            for (i, a) in report.attempts.iter().enumerate() {
                if i > 0 {
                    attempts.push(',');
                }
                let mut att = crate::json::JsonObject::new();
                att.string("rung", a.rung.name())
                    .number("elapsed_ms", a.elapsed.as_millis());
                match &a.outcome {
                    kanon_baselines::RungOutcome::Succeeded { cost } => {
                        att.string("outcome", "succeeded")
                            .number("cost", *cost as u128);
                    }
                    kanon_baselines::RungOutcome::Failed { reason } => {
                        att.string("outcome", "failed").string("reason", reason);
                    }
                }
                attempts.push_str(&att.finish());
            }
            attempts.push(']');
            let mut ladder = crate::json::JsonObject::new();
            ladder
                .string("rung", report.rung.name())
                .string("guarantee", report.guarantee)
                .boolean("degraded", report.degraded())
                .raw("attempts", &attempts);
            obj.raw("ladder", &ladder.finish());
        }
        if to_file {
            (obj.finish(), Some(released))
        } else {
            obj.string("csv", &released);
            (obj.finish(), None)
        }
    } else {
        (released, None)
    };
    Ok((
        Outcome { stdout, notes },
        result.suppressor.to_mask_string(),
        csv_for_file,
    ))
}

/// Runs the sharded out-of-core engine: streams the input CSV (never
/// holding the raw text in memory when reading a file), solves shards
/// under the budget, and writes the released CSV to `output` (streamed) or
/// stdout. Without `--quasi` the run takes the schema-driven auto path:
/// infer the schema, pick a quasi-identifier, try the generalization rung.
#[allow(clippy::too_many_arguments)]
fn pipeline(
    k: usize,
    input: &str,
    output: Option<&str>,
    shard_size: usize,
    strategy: kanon_pipeline::ShardStrategy,
    buckets: Option<usize>,
    workers: Option<usize>,
    split_unit: Option<usize>,
    quasi: Option<&[String]>,
    hierarchies: Option<&str>,
    compare: bool,
    privacy: Option<&str>,
    sensitive: Option<&str>,
    deadline_ms: Option<u64>,
    max_memory_mb: Option<u64>,
    json: bool,
) -> Result<Outcome, CliError> {
    // Already validated at arg-parse time; re-parsed here because the
    // model's f64 parameters cannot ride in the `Eq` Command enum.
    let privacy = match privacy {
        None => kanon_privacy::PrivacyModel::KOnly,
        Some(spec) => {
            kanon_privacy::PrivacyModel::parse(spec).map_err(|e| CliError::Usage(e.to_string()))?
        }
    };
    let config = kanon_pipeline::PipelineConfig {
        shard_size,
        strategy,
        n_buckets: buckets,
        workers,
        split_unit,
        budget: build_budget(deadline_ms, max_memory_mb),
        ..Default::default()
    };
    // A privacy model beyond k (or an explicit sensitive column) routes to
    // the suppression path with the sensitive column carved out; without
    // either, no --quasi means the schema-driven auto path.
    let private = privacy.requires_sensitive() || sensitive.is_some();
    if !private {
        let Some(quasi) = quasi else {
            return pipeline_auto(k, input, output, &config, hierarchies, compare, json);
        };
        if hierarchies.is_some() || compare {
            return Err(CliError::Usage(format!(
                "--hierarchies and --compare belong to the schema-driven auto \
                 path; drop --quasi to use them\n\n{}",
                usage()
            )));
        }
        let quasi = Some(quasi);
        let run = if input == "-" {
            kanon_pipeline::run_csv(std::io::stdin().lock(), k, quasi, &config)
        } else {
            let file = std::fs::File::open(input)
                .map_err(|e| CliError::Failed(format!("cannot read `{input}`: {e}")))?;
            kanon_pipeline::run_csv(std::io::BufReader::new(file), k, quasi, &config)
        }
        .map_err(|e| map_pipeline_error(e, k))?;
        return render_pipeline_run(run, output, json);
    }
    if hierarchies.is_some() || compare {
        return Err(CliError::Usage(format!(
            "--hierarchies and --compare belong to the schema-driven auto \
             path; they cannot combine with --privacy/--sensitive\n\n{}",
            usage()
        )));
    }
    let run = if input == "-" {
        kanon_pipeline::run_csv_private(
            std::io::stdin().lock(),
            k,
            quasi,
            sensitive,
            privacy,
            &config,
        )
    } else {
        let file = std::fs::File::open(input)
            .map_err(|e| CliError::Failed(format!("cannot read `{input}`: {e}")))?;
        kanon_pipeline::run_csv_private(
            std::io::BufReader::new(file),
            k,
            quasi,
            sensitive,
            privacy,
            &config,
        )
    }
    .map_err(|e| map_pipeline_error(e, k))?;
    render_pipeline_run(run, output, json)
}

/// Renders a finished pipeline run — notes, released CSV, optional JSON —
/// shared by the plain and privacy-constrained paths.
fn render_pipeline_run(
    run: kanon_pipeline::CsvRun,
    output: Option<&str>,
    json: bool,
) -> Result<Outcome, CliError> {
    let mut notes = vec![
        format!(
            "pipeline: {} rows in {} shard(s) (+{} residue rows), strategy {}, {} worker(s)",
            run.report.n_rows,
            run.report.n_shards(),
            run.report.residue_rows,
            run.report.strategy,
            run.report.workers,
        ),
        format!(
            "suppressed {} of {} quasi-identifier cells ({:.1}%)",
            run.report.total_cost,
            run.anonymization.table.n_rows() * run.anonymization.table.n_cols(),
            100.0 * run.anonymization.suppression_rate(),
        ),
        format!(
            "degraded shards: {} of {}",
            run.report.degraded_shards(),
            run.report.shards.len(),
        ),
        format!(
            "throughput: {:.0} rows/s in {:.2?}",
            run.report.rows_per_sec(),
            run.report.elapsed,
        ),
    ];
    if let Some(p) = &run.report.privacy {
        notes.push(format!(
            "privacy: {} on `{}` {} ({} violating block(s) before, {} merge(s), cost {} -> {})",
            p.spec,
            p.sensitive,
            if p.verified {
                "verified"
            } else {
                "NOT verified"
            },
            p.violations_before,
            p.merges,
            p.cost_before,
            p.cost_after,
        ));
    }

    let stdout = if let Some(path) = output {
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
        kanon_pipeline::write_release(
            &run.dataset,
            &run.codec,
            &run.quasi,
            &run.anonymization.suppressor,
            std::io::BufWriter::new(file),
        )
        .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
        notes.push(format!("wrote {path}"));
        if json {
            pipeline_json(&run, None)
        } else {
            String::new()
        }
    } else {
        let mut buf = Vec::new();
        kanon_pipeline::write_release(
            &run.dataset,
            &run.codec,
            &run.quasi,
            &run.anonymization.suppressor,
            &mut buf,
        )
        .map_err(|e| CliError::Failed(format!("cannot render release: {e}")))?;
        let released = String::from_utf8(buf)
            .map_err(|e| CliError::Failed(format!("cannot render release: {e}")))?;
        if json {
            pipeline_json(&run, Some(&released))
        } else {
            released
        }
    };
    Ok(Outcome { stdout, notes })
}

/// The `pipeline --json` stdout object: the engine's report plus (when no
/// `--output` captures it) the released CSV.
fn pipeline_json(run: &kanon_pipeline::CsvRun, csv: Option<&str>) -> String {
    let mut obj = crate::json::JsonObject::new();
    obj.string("command", "pipeline")
        .raw("report", &run.report.to_json());
    if let Some(csv) = csv {
        obj.string("csv", csv);
    }
    obj.finish()
}

/// The schema-driven auto path: probe the delimiter, infer the schema and
/// quasi-identifier, try the generalization rung, degrade to suppression.
fn pipeline_auto(
    k: usize,
    input: &str,
    output: Option<&str>,
    config: &kanon_pipeline::PipelineConfig,
    hierarchies: Option<&str>,
    compare: bool,
    json: bool,
) -> Result<Outcome, CliError> {
    let overrides = hierarchies.map(read_input).transpose()?;
    let auto = kanon_pipeline::AutoConfig { overrides, compare };
    let run = if input == "-" {
        kanon_pipeline::run_csv_auto(std::io::stdin().lock(), k, config, &auto)
    } else {
        let file = std::fs::File::open(input)
            .map_err(|e| CliError::Failed(format!("cannot read `{input}`: {e}")))?;
        kanon_pipeline::run_csv_auto(std::io::BufReader::new(file), k, config, &auto)
    }
    .map_err(|e| map_pipeline_error(e, k))?;

    let quasi_names: Vec<&str> = run
        .quasi
        .iter()
        .map(|&j| run.codec.header()[j].as_str())
        .collect();
    let mut notes = vec![format!(
        "schema: delimiter `{}`, {} column(s), quasi-identifier: {}",
        char::from(run.schema.delimiter),
        run.schema.columns.len(),
        quasi_names.join(","),
    )];
    match &run.outcome {
        kanon_pipeline::AutoOutcome::Generalized(g) => {
            let gen = run
                .report
                .generalization
                .as_ref()
                .expect("generalized runs carry a generalization report");
            notes.push(format!(
                "generalization rung answered at levels {:?} of heights {:?} \
                 (precision loss {:.4})",
                gen.levels, gen.heights, g.precision_loss,
            ));
            if let Some(supp) = gen.suppression_loss {
                notes.push(format!(
                    "information loss: generalization {:.4} vs suppression {:.4}",
                    run.report.information_loss(),
                    supp,
                ));
            }
        }
        kanon_pipeline::AutoOutcome::Suppressed {
            anonymization,
            reason,
        } => {
            notes.push(format!("generalization rung declined: {reason}"));
            notes.push(format!(
                "suppressed {} of {} quasi-identifier cells ({:.1}%)",
                anonymization.cost,
                anonymization.table.n_rows() * anonymization.table.n_cols(),
                100.0 * anonymization.suppression_rate(),
            ));
        }
    }

    let stdout = if let Some(path) = output {
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
        run.write_release(std::io::BufWriter::new(file))
            .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
        notes.push(format!("wrote {path}"));
        if json {
            auto_json(&run, None)
        } else {
            String::new()
        }
    } else {
        let mut buf = Vec::new();
        run.write_release(&mut buf)
            .map_err(|e| CliError::Failed(format!("cannot render release: {e}")))?;
        let released = String::from_utf8(buf)
            .map_err(|e| CliError::Failed(format!("cannot render release: {e}")))?;
        if json {
            auto_json(&run, Some(&released))
        } else {
            released
        }
    };
    Ok(Outcome { stdout, notes })
}

/// The auto path's `--json` object: same `"command":"pipeline"` envelope as
/// the explicit-quasi path, plus which rung released.
fn auto_json(run: &kanon_pipeline::AutoRun, csv: Option<&str>) -> String {
    let mode = match run.outcome {
        kanon_pipeline::AutoOutcome::Generalized(_) => "generalization",
        kanon_pipeline::AutoOutcome::Suppressed { .. } => "suppression",
    };
    let mut obj = crate::json::JsonObject::new();
    obj.string("command", "pipeline")
        .string("mode", mode)
        .raw("report", &run.report.to_json());
    if let Some(csv) = csv {
        obj.string("csv", csv);
    }
    obj.finish()
}

/// Runs a `kanon schema` action: probe, infer, or verify.
fn schema_cmd(action: &SchemaAction) -> Result<Outcome, CliError> {
    // The toolchain works on a bounded byte sample, so even `probe` on a
    // multi-gigabyte file reads at most SAMPLE_BYTES.
    let sample_of = |path: &str| -> Result<(Vec<u8>, bool), CliError> {
        let sample = if path == "-" {
            kanon_schema::read_sample(&mut std::io::stdin().lock())
        } else {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::Failed(format!("cannot read `{path}`: {e}")))?;
            kanon_schema::read_sample(&mut std::io::BufReader::new(file))
        }
        .map_err(|e| CliError::Failed(format!("cannot read `{path}`: {e}")))?;
        let truncated = sample.len() == kanon_schema::probe::SAMPLE_BYTES;
        Ok((sample, truncated))
    };
    let infer = |path: &str| -> Result<kanon_schema::InferredSchema, CliError> {
        let (sample, truncated) = sample_of(path)?;
        kanon_schema::infer_bytes(&sample, truncated, kanon_schema::infer::DEFAULT_SAMPLE_ROWS)
            .map_err(|e| CliError::Failed(format!("schema inference failed: {e}")))
    };
    match action {
        SchemaAction::Probe { input } => {
            let (sample, truncated) = sample_of(input)?;
            let probe = kanon_schema::probe_bytes(&sample, truncated)
                .map_err(|e| CliError::Failed(format!("probe failed: {e}")))?;
            let stdout = format!(
                "delimiter: {}\nfields per record: {}\nlines sampled: {}\n\
                 consistency: {:.3}\nquoted fields: {}\n",
                probe.delimiter_name(),
                probe.n_fields,
                probe.lines_sampled,
                probe.consistency,
                if probe.quoted { "yes" } else { "no" },
            );
            Ok(Outcome {
                stdout,
                notes: Vec::new(),
            })
        }
        SchemaAction::Infer { input, output } => {
            let schema = infer(input)?;
            let text = kanon_schema::render_schema_file(&schema);
            let suggestion = schema.quasi_suggestion();
            let mut notes = vec![format!(
                "inferred {} column(s) from {} sampled row(s) ({} ragged)",
                schema.columns.len(),
                schema.rows_sampled,
                schema.ragged_rows,
            )];
            notes.push(if suggestion.is_empty() {
                "no quasi-identifier suggestion (no column carries signal)".to_string()
            } else {
                format!(
                    "suggested quasi-identifier (ranked): {}",
                    suggestion.join(",")
                )
            });
            let screening = schema.sensitive_screening();
            notes.push(if screening.is_empty() {
                "no sensitive-column candidate (no repeating column supports l >= 2)".to_string()
            } else {
                format!(
                    "sensitive-column candidates (ranked, distinct l / entropy l): {}",
                    screening
                        .iter()
                        .map(|c| format!(
                            "{} ({} / {:.1})",
                            c.name, c.max_distinct_l, c.effective_l
                        ))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            });
            match output {
                Some(path) => {
                    std::fs::write(path, &text)
                        .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
                    notes.push(format!("wrote {path}"));
                    Ok(Outcome {
                        stdout: String::new(),
                        notes,
                    })
                }
                None => Ok(Outcome {
                    stdout: text,
                    notes,
                }),
            }
        }
        SchemaAction::Verify { schema, input } => {
            let stored_text = read_input(schema)?;
            let stored = kanon_schema::parse_schema_file(&stored_text)
                .map_err(|e| CliError::Failed(format!("bad schema file `{schema}`: {e}")))?;
            let current = infer(input)?;
            match kanon_schema::verify(&stored.schema, &current) {
                Ok(kanon_schema::VerifyReport::Exact) => Ok(Outcome {
                    stdout: "schema verified: exact match\n".to_string(),
                    notes: Vec::new(),
                }),
                Ok(kanon_schema::VerifyReport::StatsChanged(changes)) => Ok(Outcome {
                    stdout: format!(
                        "schema verified: structure unchanged, {} stat(s) moved\n{}\n",
                        changes.len(),
                        changes.join("\n"),
                    ),
                    notes: Vec::new(),
                }),
                // Drift exits nonzero so CI and cron jobs can gate on it.
                Err(kanon_schema::Error::Drift(reasons)) => Err(CliError::Failed(format!(
                    "schema drift detected:\n{}",
                    reasons.join("\n"),
                ))),
                Err(e) => Err(CliError::Failed(format!("verify failed: {e}"))),
            }
        }
    }
}

/// Maps pipeline-layer errors onto CLI exit classes; shared by the
/// `pipeline` and `delta` commands.
fn map_pipeline_error(e: kanon_pipeline::Error, k: usize) -> CliError {
    match e {
        kanon_pipeline::Error::Relation(kanon_relation::Error::EmptyTable) => CliError::EmptyInput,
        kanon_pipeline::Error::Relation(kanon_relation::Error::UnknownAttribute(name)) => {
            CliError::Usage(format!("unknown quasi-identifier column `{name}`"))
        }
        kanon_pipeline::Error::Core(kanon_core::Error::KZero) => CliError::BadK { k, n: 0 },
        kanon_pipeline::Error::Core(kanon_core::Error::KExceedsRows { k, n }) => {
            CliError::BadK { k, n }
        }
        kanon_pipeline::Error::Config(msg) => CliError::Usage(msg),
        kanon_pipeline::Error::Delta(msg) => CliError::Failed(format!("delta rejected: {msg}")),
        e @ kanon_pipeline::Error::UnknownColumn { .. } => CliError::Usage(e.to_string()),
        kanon_pipeline::Error::Privacy(e) => match e {
            // Both are user declarations to fix, not run failures.
            kanon_privacy::Error::SensitiveIsQuasi { .. } | kanon_privacy::Error::Spec(_) => {
                CliError::Usage(e.to_string())
            }
            other => CliError::Failed(format!("privacy constraint failed: {other}")),
        },
        kanon_pipeline::Error::Schema(kanon_schema::Error::Override(msg)) => {
            CliError::Usage(format!("bad --hierarchies override: {msg}"))
        }
        kanon_pipeline::Error::Schema(e) => {
            CliError::Failed(format!("schema inference failed: {e}"))
        }
        other => CliError::Failed(format!("pipeline failed: {other}")),
    }
}

/// Runs a `kanon delta` action against the durable store.
fn delta(action: &crate::args::DeltaAction) -> Result<Outcome, CliError> {
    use crate::args::DeltaAction;
    use kanon_pipeline::DeltaStore;

    let open = |dir: &str, deadline_ms: Option<u64>, max_memory_mb: Option<u64>| {
        DeltaStore::open(dir, build_budget(deadline_ms, max_memory_mb))
            .map_err(|e| map_pipeline_error(e, 0))
    };
    let write_output = |path: &str, csv: &str| -> Result<(), CliError> {
        std::fs::write(path, csv)
            .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))
    };

    match action {
        DeltaAction::Init {
            dir,
            k,
            input,
            shard_size,
            buckets,
            quasi,
            deadline_ms,
            max_memory_mb,
            json,
        } => {
            let config = kanon_pipeline::DeltaConfig {
                k: *k,
                shard_size: *shard_size,
                n_buckets: *buckets,
                quasi: quasi.clone(),
                budget: build_budget(*deadline_ms, *max_memory_mb),
            };
            let store = if input == "-" {
                DeltaStore::init(dir, std::io::stdin().lock(), &config)
            } else {
                let file = std::fs::File::open(input)
                    .map_err(|e| CliError::Failed(format!("cannot read `{input}`: {e}")))?;
                DeltaStore::init(dir, std::io::BufReader::new(file), &config)
            }
            .map_err(|e| map_pipeline_error(e, *k))?;
            let status = store.status();
            let notes = vec![format!(
                "initialized delta store at {dir}: {} rows, k={}, {} bucket(s), shard size {}",
                status.n_rows, status.k, status.n_buckets, status.shard_size,
            )];
            let stdout = if *json {
                status.to_json()
            } else {
                String::new()
            };
            Ok(Outcome { stdout, notes })
        }
        DeltaAction::Apply {
            dir,
            ops,
            output,
            deadline_ms,
            max_memory_mb,
            json,
        } => {
            let mut store = open(dir, *deadline_ms, *max_memory_mb)?;
            let parsed = if ops == "-" {
                store.parse_ops(std::io::stdin().lock())
            } else {
                let file = std::fs::File::open(ops)
                    .map_err(|e| CliError::Failed(format!("cannot read `{ops}`: {e}")))?;
                store.parse_ops(std::io::BufReader::new(file))
            }
            .map_err(|e| map_pipeline_error(e, store.k()))?;
            let k = store.k();
            let report = store.apply(&parsed).map_err(|e| map_pipeline_error(e, k))?;
            let mut notes = vec![
                format!(
                    "batch {}: +{} -{} ~{} → {} rows",
                    report.seq, report.inserted, report.deleted, report.updated, report.n_rows,
                ),
                format!(
                    "re-solved {} unit(s) / {} row(s) of {} ({:.1}%), total cost {}",
                    report.resolved_units,
                    report.resolved_rows,
                    report.n_rows,
                    100.0 * report.resolved_rows as f64 / report.n_rows.max(1) as f64,
                    report.total_cost,
                ),
            ];
            if let Some(path) = output {
                let release = store.release().map_err(|e| map_pipeline_error(e, k))?;
                write_output(path, &release.to_csv_string())?;
                notes.push(format!("wrote {path}"));
            }
            let stdout = if *json {
                report.to_json()
            } else {
                String::new()
            };
            Ok(Outcome { stdout, notes })
        }
        DeltaAction::Status { dir, json } => {
            let store = open(dir, None, None)?;
            let status = store.status();
            let stdout = if *json {
                status.to_json()
            } else {
                let cost = status
                    .total_cost
                    .map_or_else(|| "unknown (dirty)".to_string(), |c| c.to_string());
                format!(
                    "{} rows, k={}, seq {}, {} bucket(s), {} cached / {} dirty unit(s), \
                     wal {} B, total cost {cost}",
                    status.n_rows,
                    status.k,
                    status.seq,
                    status.n_buckets,
                    status.cached_units,
                    status.dirty_units,
                    status.wal_bytes,
                )
            };
            Ok(Outcome {
                stdout,
                notes: Vec::new(),
            })
        }
        DeltaAction::Release {
            dir,
            output,
            deadline_ms,
            max_memory_mb,
        } => {
            let mut store = open(dir, *deadline_ms, *max_memory_mb)?;
            let k = store.k();
            let release = store.release().map_err(|e| map_pipeline_error(e, k))?;
            let csv = release.to_csv_string();
            match output {
                Some(path) => {
                    write_output(path, &csv)?;
                    Ok(Outcome {
                        stdout: String::new(),
                        notes: vec![format!("wrote {path}")],
                    })
                }
                None => Ok(Outcome {
                    stdout: csv,
                    notes: Vec::new(),
                }),
            }
        }
    }
}

/// Streams a zipf-skewed categorical CSV; with `--output` the rows go
/// straight to the file (O(1) memory however large `--rows` is).
fn generate_zipf(
    rows: usize,
    seed: u64,
    cols: usize,
    alphabet: u32,
    exponent: &str,
    output: Option<&str>,
) -> Result<Outcome, CliError> {
    let exponent: f64 = exponent
        .parse()
        .map_err(|_| CliError::Usage(format!("--exponent needs a number\n\n{}", usage())))?;
    if exponent < 0.0 || cols == 0 || alphabet == 0 {
        return Err(CliError::Usage(format!(
            "--exponent must be >= 0, --cols and --alphabet >= 1\n\n{}",
            usage()
        )));
    }
    let params = kanon_workloads::ZipfParams {
        n: rows,
        m: cols,
        alphabet,
        exponent,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let note = format!(
        "generated {rows} zipf rows ({cols} cols, alphabet {alphabet}, exponent {exponent}, seed {seed})"
    );
    match output {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
            let mut w = std::io::BufWriter::new(file);
            kanon_workloads::write_zipf_csv(&mut rng, &params, &mut w)
                .and_then(|()| std::io::Write::flush(&mut w))
                .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
            Ok(Outcome {
                stdout: String::new(),
                notes: vec![note],
            })
        }
        None => {
            let mut buf = Vec::new();
            kanon_workloads::write_zipf_csv(&mut rng, &params, &mut buf)
                .map_err(|e| CliError::Failed(format!("cannot render workload: {e}")))?;
            let stdout = String::from_utf8(buf)
                .map_err(|e| CliError::Failed(format!("cannot render workload: {e}")))?;
            Ok(Outcome {
                stdout,
                notes: vec![note],
            })
        }
    }
}

/// Streams the messy schema-inference workload: `;`-delimited, mixed
/// types, null markers, quoted fields. With `--output` the rows go
/// straight to the file.
fn generate_messy(
    rows: usize,
    seed: u64,
    regions: usize,
    output: Option<&str>,
) -> Result<Outcome, CliError> {
    if regions == 0 || regions > 900 {
        return Err(CliError::Usage(format!(
            "--regions must be in 1..=900 for the messy workload\n\n{}",
            usage()
        )));
    }
    let params = kanon_workloads::MessyParams {
        n: rows,
        regions,
        ..kanon_workloads::MessyParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let note = format!("generated {rows} messy rows ({regions} region(s), seed {seed})");
    match output {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
            let mut w = std::io::BufWriter::new(file);
            kanon_workloads::write_messy_csv(&mut rng, &params, &mut w)
                .and_then(|()| std::io::Write::flush(&mut w))
                .map_err(|e| CliError::Failed(format!("cannot write `{path}`: {e}")))?;
            Ok(Outcome {
                stdout: String::new(),
                notes: vec![note],
            })
        }
        None => {
            let mut buf = Vec::new();
            kanon_workloads::write_messy_csv(&mut rng, &params, &mut buf)
                .map_err(|e| CliError::Failed(format!("cannot render workload: {e}")))?;
            let stdout = String::from_utf8(buf)
                .map_err(|e| CliError::Failed(format!("cannot render workload: {e}")))?;
            Ok(Outcome {
                stdout,
                notes: vec![note],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-`--json` calling convention most tests want: CSV stdout, no
    /// side-channel file payload.
    fn anonymize_plain(
        text: &str,
        k: usize,
        algorithm: Algorithm,
        quasi: Option<&[String]>,
        threads: usize,
        deadline_ms: Option<u64>,
        max_memory_mb: Option<u64>,
    ) -> Result<(Outcome, String), CliError> {
        anonymize(
            text,
            k,
            algorithm,
            quasi,
            threads,
            deadline_ms,
            max_memory_mb,
            false,
            false,
        )
        .map(|(o, m, _)| (o, m))
    }

    const SAMPLE: &str = "first,last,age,race\n\
        Harry,Stone,34,Afr-Am\n\
        John,Reyser,36,Cauc\n\
        Beatrice,Stone,47,Afr-Am\n\
        John,Ramos,22,Hisp\n";

    #[test]
    fn anonymize_then_verify_roundtrip() {
        let (out, mask) =
            anonymize_plain(SAMPLE, 2, Algorithm::Exact, None, 1, None, None).unwrap();
        assert!(mask.lines().count() == 4);
        assert!(out.stdout.contains('*'));
        let verified = verify(&out.stdout, 2, None).unwrap();
        assert!(verified.stdout.contains("anonymity level: 2"));
    }

    #[test]
    fn quasi_columns_keep_sensitive_data() {
        let quasi: Vec<String> = vec!["first".into(), "last".into(), "age".into()];
        let (out, _) =
            anonymize_plain(SAMPLE, 2, Algorithm::Center, Some(&quasi), 1, None, None).unwrap();
        // Race column survives untouched.
        for race in ["Afr-Am", "Cauc", "Hisp"] {
            assert!(out.stdout.contains(race), "{}", out.stdout);
        }
        let verified = verify(&out.stdout, 2, Some(&quasi)).unwrap();
        assert!(verified.stdout.contains("anonymity level:"));
    }

    #[test]
    fn verify_rejects_raw_table() {
        let err = verify(SAMPLE, 2, None).unwrap_err();
        assert!(matches!(err, CliError::Failed(_)));
        assert!(err.to_string().contains("NOT 2-anonymous"));
        // The diagnostic names the offending rows (all four are unique).
        assert!(
            err.to_string()
                .contains("first offending rows: [0, 1, 2, 3]"),
            "{err}"
        );
    }

    #[test]
    fn emit_mask_roundtrips_through_execute() {
        let dir = std::env::temp_dir().join(format!("kanon-mask-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let mask_path = dir.join("mask.txt");
        std::fs::write(&input, SAMPLE).unwrap();
        let outcome = execute(&Command::Anonymize {
            k: 2,
            input: input.to_string_lossy().into_owned(),
            output: None,
            algorithm: Algorithm::Exact,
            quasi: None,
            threads: 1,
            emit_mask: Some(mask_path.to_string_lossy().into_owned()),
            deadline_ms: None,
            max_memory_mb: None,
            json: false,
        })
        .unwrap();
        assert!(outcome.notes.iter().any(|n| n.contains("suppression mask")));
        let mask_text = std::fs::read_to_string(&mask_path).unwrap();
        let mask = kanon_core::Suppressor::from_mask_string(&mask_text).unwrap();
        assert_eq!(mask.n_rows(), 4);
        // Re-applying the stored mask to the original data reproduces a
        // 2-anonymous release with the same star count.
        let table = csv::parse(SAMPLE).unwrap();
        let (ds, _) = {
            let mut qi = Table::new(table.schema().clone());
            for row in table.rows() {
                qi.push_row(row.to_vec()).unwrap();
            }
            qi.encode()
        };
        let released = mask.apply(&ds).unwrap();
        assert!(released.is_k_anonymous(2));
        assert_eq!(released.suppressed_cells(), mask.cost());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_quasi_column_is_usage_error() {
        let quasi: Vec<String> = vec!["bogus".into()];
        let err =
            anonymize_plain(SAMPLE, 2, Algorithm::Center, Some(&quasi), 1, None, None).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn too_few_rows_is_bad_k() {
        let err = anonymize_plain("a\nx\n", 3, Algorithm::Center, None, 1, None, None).unwrap_err();
        assert_eq!(err, CliError::BadK { k: 3, n: 1 });
        assert!(err.to_string().contains("k = 3 is infeasible"));
    }

    #[test]
    fn empty_table_is_rejected_everywhere() {
        let header_only = "a,b\n";
        let err =
            anonymize_plain(header_only, 2, Algorithm::Center, None, 1, None, None).unwrap_err();
        assert_eq!(err, CliError::EmptyInput);
        assert_eq!(
            verify(header_only, 2, None).unwrap_err(),
            CliError::EmptyInput
        );
        assert_eq!(
            attack(header_only, "a,b\n1,2\n", &["a".into()]).unwrap_err(),
            CliError::EmptyInput
        );
    }

    #[test]
    fn ladder_with_unlimited_budget_matches_exhaustive() {
        let (ladder_out, _) =
            anonymize_plain(SAMPLE, 2, Algorithm::Ladder, None, 1, None, None).unwrap();
        let (direct_out, _) =
            anonymize_plain(SAMPLE, 2, Algorithm::Exhaustive, None, 1, None, None).unwrap();
        assert_eq!(ladder_out.stdout, direct_out.stdout);
        assert!(ladder_out
            .notes
            .iter()
            .any(|n| n.contains("rung full-greedy-cover")));
    }

    #[test]
    fn governed_center_with_roomy_deadline_succeeds() {
        let (out, _) =
            anonymize_plain(SAMPLE, 2, Algorithm::Center, None, 1, Some(60_000), None).unwrap();
        assert!(verify(&out.stdout, 2, None).is_ok());
    }

    #[test]
    fn tiny_memory_budget_fails_deterministically() {
        // 600 rows: the center greedy's planned allocations (distance cache
        // ~0.7 MiB plus n²-sized order tables ~1.4 MiB) cannot fit in the
        // smallest spellable cap of 1 MiB, so the governed run must fail
        // with a structured budget error — no timing involved.
        let data = generate(600, 11, 5).unwrap().stdout;
        let err = anonymize_plain(&data, 3, Algorithm::Center, None, 1, None, Some(1)).unwrap_err();
        assert!(
            err.to_string().contains("budget exceeded") && err.to_string().contains("memory"),
            "{err}"
        );
    }

    #[test]
    fn generate_emits_parseable_csv() {
        let out = generate(25, 7, 4).unwrap();
        let parsed = csv::parse(&out.stdout).unwrap();
        assert_eq!(parsed.n_rows(), 25);
        assert_eq!(parsed.arity(), 8);
        assert!(generate(1, 0, 0).is_err());
    }

    #[test]
    fn generated_data_anonymizes_end_to_end() {
        let data = generate(40, 3, 3).unwrap().stdout;
        let quasi: Vec<String> = vec!["age".into(), "sex".into(), "race".into(), "zip".into()];
        let (out, _) =
            anonymize_plain(&data, 3, Algorithm::Center, Some(&quasi), 2, None, None).unwrap();
        assert!(verify(&out.stdout, 3, Some(&quasi)).is_ok());
    }

    #[test]
    fn execute_help_and_generate() {
        let help = execute(&Command::Help).unwrap();
        assert!(help.stdout.contains("USAGE"));
        let gen = execute(&Command::Generate {
            rows: 5,
            seed: 1,
            regions: 2,
            workload: "census".into(),
            cols: 8,
            alphabet: 50,
            exponent: "1.0".into(),
            messy: false,
            output: None,
        })
        .unwrap();
        assert!(gen.stdout.starts_with("age,sex"));
    }

    #[test]
    fn attack_reports_unique_linkage() {
        let released = "age,zip\n34,02139\n47,02144\n";
        let external = "name,age,zip\nHarry,34,02139\nBea,47,02144\n";
        let out = attack(released, external, &["age".into(), "zip".into()]).unwrap();
        assert!(
            out.stdout.contains("uniquely re-identified: 2 (100.0%)"),
            "{}",
            out.stdout
        );
        // Anonymized release: both rows identical.
        let anon = "age,zip\n30-39,021**\n30-39,021**\n";
        let out = attack(anon, external, &["age".into(), "zip".into()]).unwrap();
        assert!(
            out.stdout.contains("uniquely re-identified: 0"),
            "{}",
            out.stdout
        );
        // Bad join column.
        assert!(attack(released, external, &["bogus".into()]).is_err());
    }

    #[test]
    fn missing_file_fails_cleanly() {
        let err = read_input("/definitely/not/here.csv").unwrap_err();
        assert!(matches!(err, CliError::Failed(_)));
    }
}
