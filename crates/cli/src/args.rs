//! Hand-rolled argument parsing (no external parser dependency).

use crate::CliError;

/// Which solver `anonymize` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Theorem 4.2 center greedy (default; strongly polynomial).
    #[default]
    Center,
    /// Theorem 4.1 exhaustive greedy (small instances only).
    Exhaustive,
    /// The k-forest construction from the follow-up literature.
    Forest,
    /// Exact optimum (tiny instances only).
    Exact,
    /// Degradation ladder: exhaustive → center → agglomerative, best
    /// guarantee the budget affords (auto-selected when a budget flag is
    /// given without an explicit `--algorithm`).
    Ladder,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `kanon anonymize`.
    Anonymize {
        /// Privacy parameter.
        k: usize,
        /// Input CSV path (`-` reads stdin).
        input: String,
        /// Output CSV path (`None` = stdout).
        output: Option<String>,
        /// Solver.
        algorithm: Algorithm,
        /// Quasi-identifier column names (`None` = all columns).
        quasi: Option<Vec<String>>,
        /// Worker threads for the center greedy (1 = sequential).
        threads: usize,
        /// Optional path for the 0/1 suppression-mask audit artifact.
        emit_mask: Option<String>,
        /// Wall-clock budget in milliseconds (`None` = unlimited).
        deadline_ms: Option<u64>,
        /// Planned-allocation memory budget in MiB (`None` = unlimited).
        max_memory_mb: Option<u64>,
        /// Emit a machine-readable JSON report instead of notes + CSV.
        json: bool,
    },
    /// `kanon pipeline`: the sharded out-of-core engine for large tables.
    Pipeline {
        /// Privacy parameter.
        k: usize,
        /// Input CSV path (`-` reads stdin).
        input: String,
        /// Output CSV path (`None` = stdout).
        output: Option<String>,
        /// Target rows per shard.
        shard_size: usize,
        /// Row-to-shard assignment strategy.
        strategy: kanon_pipeline::ShardStrategy,
        /// Pinned hash-bucket count (`None` = derived from the table).
        buckets: Option<usize>,
        /// Worker threads (`None` = auto).
        workers: Option<usize>,
        /// Work-stealing sub-unit row threshold (`None` = whole shards).
        split_unit: Option<usize>,
        /// Quasi-identifier column names. `None` selects the schema-driven
        /// auto path: infer the schema, rank a quasi-identifier, and try
        /// the generalization rung before degrading to suppression.
        quasi: Option<Vec<String>>,
        /// Hierarchy-override JSON file for the auto path (`None` derives
        /// every hierarchy from the inferred schema).
        hierarchies: Option<String>,
        /// On the auto path, also run the suppression pipeline and report
        /// both information losses side by side.
        compare: bool,
        /// Privacy model beyond k-anonymity, as a validated spec string
        /// (`l=2`, `entropy-l=2.5`, `t=0.2`, `emd-t=0.15`; `None` = plain
        /// `k`). Parsed once here for the early usage error, re-parsed at
        /// run time ([`kanon_privacy::PrivacyModel`] holds an `f64`, so it
        /// cannot ride in this `Eq` enum).
        privacy: Option<String>,
        /// Sensitive column held to the privacy model; kept out of the
        /// quasi-identifier (and the shard hash) on the solve path.
        sensitive: Option<String>,
        /// Wall-clock budget in milliseconds (`None` = unlimited).
        deadline_ms: Option<u64>,
        /// Planned-allocation memory budget in MiB (`None` = unlimited).
        max_memory_mb: Option<u64>,
        /// Emit a machine-readable JSON report instead of notes + CSV.
        json: bool,
    },
    /// `kanon delta`: incremental anonymization over a durable store.
    Delta(DeltaAction),
    /// `kanon schema`: probe/infer/verify for messy CSVs.
    Schema(SchemaAction),
    /// `kanon verify`.
    Verify {
        /// Privacy parameter to check.
        k: usize,
        /// Input CSV path (`-` reads stdin).
        input: String,
        /// Quasi-identifier column names (`None` = all columns).
        quasi: Option<Vec<String>>,
    },
    /// `kanon attack`: linkage attack a released CSV with external data.
    Attack {
        /// Released CSV path (stars/bands allowed).
        released: String,
        /// External (attacker) CSV path with raw values.
        external: String,
        /// Join columns, same names on both sides.
        join: Vec<String>,
    },
    /// `kanon generate` (synthetic sample data).
    Generate {
        /// Number of records.
        rows: usize,
        /// RNG seed.
        seed: u64,
        /// Zip-code regions (census workload only).
        regions: usize,
        /// Workload family: `census` (typed microdata) or `zipf` (skewed
        /// categorical, streamed — suited to very large `--rows`).
        workload: String,
        /// Columns (zipf workload only).
        cols: usize,
        /// Distinct values per column (zipf workload only).
        alphabet: u32,
        /// Skew exponent, parsed as f64 at execution (zipf workload only).
        exponent: String,
        /// Messy mode: semicolon delimiter, mixed column types, injected
        /// null markers — exercise for the schema toolchain.
        messy: bool,
        /// Output CSV path (`None` = stdout). The zipf workload streams
        /// row-by-row when writing to a file.
        output: Option<String>,
    },
    /// `kanon serve`: the long-running anonymization server.
    Serve {
        /// Listen address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Job-solver worker threads.
        workers: usize,
        /// Bounded queue depth beyond the running jobs.
        queue_depth: usize,
        /// Global memory pool in MiB that per-job budgets lease from.
        pool_memory_mb: u64,
        /// Directory for durable tenant tables (`None` disables the
        /// `/v1/tables` endpoints).
        data_dir: Option<String>,
    },
    /// `kanon bench-serve`: closed-loop load generator + acceptance check.
    BenchServe {
        /// Target server (`None` self-hosts one in-process).
        addr: Option<String>,
        /// Total jobs to submit.
        requests: usize,
        /// Concurrent closed-loop clients.
        clients: usize,
        /// Rows per generated zipf CSV job.
        rows: usize,
        /// Privacy parameter for every job.
        k: usize,
        /// Shard size passed with every job.
        shard_size: usize,
        /// Optional per-job deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Workers for the self-hosted server.
        workers: usize,
        /// Queue depth for the self-hosted server.
        queue_depth: usize,
        /// RNG seed for the generated table.
        seed: u64,
        /// Where to write the JSON bench report.
        out: Option<String>,
        /// Bench the durable-table path (concurrent ops batches through
        /// the single-writer lock) instead of the job loop.
        table: bool,
    },
    /// `kanon help`.
    Help,
}

/// The `kanon schema` sub-actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaAction {
    /// `kanon schema probe`: structural detection only (delimiter,
    /// quoting, field count, record consistency).
    Probe {
        /// Input CSV path (`-` reads stdin).
        input: String,
    },
    /// `kanon schema infer`: full inference, rendering the versioned
    /// `.schema` file.
    Infer {
        /// Input CSV path (`-` reads stdin).
        input: String,
        /// `.schema` output path (`None` = stdout).
        output: Option<String>,
    },
    /// `kanon schema verify`: re-infer and diff against a stored `.schema`
    /// file; exits nonzero on drift.
    Verify {
        /// Stored `.schema` file path.
        schema: String,
        /// Input CSV path (`-` reads stdin).
        input: String,
    },
}

/// The `kanon delta` sub-actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaAction {
    /// `kanon delta init`: create a store from a CSV table.
    Init {
        /// Store directory.
        dir: String,
        /// Privacy parameter, fixed for the store's lifetime.
        k: usize,
        /// Input CSV path (`-` reads stdin).
        input: String,
        /// Target rows per shard.
        shard_size: usize,
        /// Pinned hash-bucket count (`None` = derived from the table).
        buckets: Option<usize>,
        /// Quasi-identifier column names (`None` = all columns).
        quasi: Option<Vec<String>>,
        /// Wall-clock budget in milliseconds (`None` = unlimited).
        deadline_ms: Option<u64>,
        /// Planned-allocation memory budget in MiB (`None` = unlimited).
        max_memory_mb: Option<u64>,
        /// Emit a machine-readable JSON report instead of notes.
        json: bool,
    },
    /// `kanon delta apply`: apply an ops CSV as one atomic batch.
    Apply {
        /// Store directory.
        dir: String,
        /// Ops CSV path (`-` reads stdin).
        ops: String,
        /// Released-CSV output path (`None` = no release written).
        output: Option<String>,
        /// Wall-clock budget in milliseconds (`None` = unlimited).
        deadline_ms: Option<u64>,
        /// Planned-allocation memory budget in MiB (`None` = unlimited).
        max_memory_mb: Option<u64>,
        /// Emit a machine-readable JSON report instead of notes.
        json: bool,
    },
    /// `kanon delta status`: report store health without solving.
    Status {
        /// Store directory.
        dir: String,
        /// Emit a machine-readable JSON report instead of notes.
        json: bool,
    },
    /// `kanon delta release`: write the current released CSV.
    Release {
        /// Store directory.
        dir: String,
        /// Released-CSV output path (`None` = stdout).
        output: Option<String>,
        /// Wall-clock budget in milliseconds (`None` = unlimited).
        deadline_ms: Option<u64>,
        /// Planned-allocation memory budget in MiB (`None` = unlimited).
        max_memory_mb: Option<u64>,
    },
}

/// The usage text.
#[must_use]
pub fn usage() -> String {
    "kanon — optimal k-anonymity by entry suppression (Meyerson-Williams, PODS 2004)

USAGE:
    kanon anonymize -k <K> --input <FILE|-> [--output <FILE>]
                    [--algorithm center|exhaustive|forest|exact|ladder]
                    [--quasi col1,col2,...] [--threads N]
                    [--emit-mask <FILE>] [--json]
                    [--deadline-ms MS] [--max-memory-mb MB]
    kanon pipeline  -k <K> --input <FILE|-> [--output <FILE>]
                    [--shard-size N] [--strategy hash|sorted] [--buckets N]
                    [--workers N] [--split-unit N]
                    [--quasi col1,col2,...] [--hierarchies <FILE>]
                    [--privacy k|l=N|entropy-l=X|t=X|emd-t=X]
                    [--sensitive COL]
                    [--compare] [--json]
                    [--deadline-ms MS] [--max-memory-mb MB]
    kanon schema probe  --input <FILE|->
    kanon schema infer  --input <FILE|-> [--output <FILE.schema>]
    kanon schema verify --schema <FILE.schema> --input <FILE|->
    kanon delta init    --dir <DIR> -k <K> --input <FILE|->
                    [--shard-size N] [--buckets N] [--quasi col1,col2,...]
                    [--deadline-ms MS] [--max-memory-mb MB] [--json]
    kanon delta apply   --dir <DIR> --ops <FILE|-> [--output <FILE>]
                    [--deadline-ms MS] [--max-memory-mb MB] [--json]
    kanon delta status  --dir <DIR> [--json]
    kanon delta release --dir <DIR> [--output <FILE>]
                    [--deadline-ms MS] [--max-memory-mb MB]
    kanon verify    -k <K> --input <FILE|-> [--quasi col1,col2,...]
    kanon attack    --released <FILE> --external <FILE> --join col1,col2,...
    kanon generate  [--rows N] [--seed S] [--output <FILE>]
                    [--workload census|zipf] [--regions R] [--messy]
                    [--cols M] [--alphabet A] [--exponent E]
    kanon serve     [--addr HOST:PORT] [--workers N] [--queue-depth N]
                    [--pool-memory-mb MB] [--data-dir DIR]
    kanon bench-serve [--addr HOST:PORT] [--requests N] [--clients N]
                    [--rows N] [-k K] [--shard-size N] [--deadline-ms MS]
                    [--workers N] [--queue-depth N] [--seed S] [--out FILE]
                    [--table]
    kanon help

COMMANDS:
    anonymize   Suppress a minimum of entries so every record matches
                k-1 others on the quasi-identifier columns.
    pipeline    Shard the table, solve each shard under a slice of the
                budget, and merge — scales to millions of rows (solver
                memory is bounded by --shard-size, not the table).
                Worker count precedence: --workers, then the
                RAYON_NUM_THREADS environment variable, then all available
                CPU cores. --split-unit N cuts shards larger than N rows
                into independently stolen sub-units (N >= 2k-1; same
                output at every worker count, at a possible cost penalty
                versus solving each shard whole).
                Without --quasi the run takes the schema-driven auto path:
                the delimiter and column types are inferred, a ranked
                quasi-identifier is chosen, and full-domain generalization
                (auto-derived hierarchies; override with --hierarchies
                JSON) is tried first, degrading to sharded suppression
                when the lattice cannot reach k in budget. --compare also
                runs suppression and reports both information losses.
                --privacy holds the release to a model beyond k on the
                --sensitive column (l=N distinct l-diversity,
                entropy-l=X, t=X variational t-closeness, emd-t=X ordered
                EMD); the sensitive column stays out of the
                quasi-identifier and the release is re-verified after the
                post-merge repair.
    schema      The probe -> infer -> verify toolchain for messy CSVs.
                `probe` reports delimiter/quoting/field-count structure;
                `infer` renders the versioned .schema file (column types,
                null rates, quasi-identifier ranking, snapshot hash);
                `verify` re-infers and diffs against a stored .schema,
                exiting nonzero on drift.
    delta       Incremental anonymization over a durable store (WAL +
                snapshot). `init` ingests and solves a table once;
                `apply` replays an ops CSV (header `op,id,<columns...>`,
                ops insert/delete/update) as one atomic batch, re-solving
                only the buckets it touched; `status` reports store
                health; `release` writes the current anonymized CSV —
                byte-identical to a fresh `pipeline` run on the same
                table with the store's pinned --buckets.
    verify      Check that a released CSV (with * for suppressed cells)
                is k-anonymous; reports the actual anonymity level.
    attack      Play the adversary: join a released CSV against external
                data and report how many records are uniquely linkable.
    generate    Emit a synthetic CSV for experimentation: census-like
                typed microdata, or zipf-skewed categorical data that
                streams to --output for very large --rows. --messy roughs
                the census workload up for the schema toolchain:
                semicolon delimiter, mixed types, injected null markers.
    serve       Run the anonymization server: POST /v1/anonymize submits
                a job (202 + id, or 429 + Retry-After when the queue or
                memory pool is full), GET /v1/jobs/<id> polls it, and
                GET /metrics exposes Prometheus counters. With --data-dir
                it also serves durable tables at /v1/tables/<name>
                (PUT creates from CSV, POST <name>/ops appends an atomic
                batch, GET <name>/release streams the anonymized CSV);
                on restart every table's WAL is replayed — corrupt
                tables are quarantined (503 + degraded /healthz), not
                fatal.
    bench-serve Drive a server with a closed-loop zipf workload and
                verify the acceptance bar: zero 5xx, every job
                k-anonymous, /metrics counters reconciling exactly.
                Without --addr it self-hosts a server in-process. With
                --table it benches the durable-table path instead:
                concurrent writers race ops batches through the
                single-writer lock, honoring every Retry-After, and the
                final table seq must equal the acknowledged batches.

BUDGETS:
    --deadline-ms and --max-memory-mb bound the solver's wall-clock time and
    planned allocations. Given without --algorithm they select the `ladder`
    runner, which tries exhaustive greedy, then center greedy, then the
    agglomerative heuristic — answering with the best approximation
    guarantee the budget affords. With `center` or `exhaustive` the chosen
    solver runs governed and fails cleanly when the budget trips; `forest`
    and `exact` do not support budgets.

ENVIRONMENT:
    RAYON_NUM_THREADS   Default worker/thread count when --workers or
                        --threads is not given.
    KANON_FORCE_KERNEL  Distance-kernel override: `scalar`, `swar`, or
                        `simd` (a ceiling — falls back to swar when the
                        CPU lacks AVX2/NEON). Unset picks the best
                        kernel the CPU supports at startup.
"
    .to_string()
}

fn parse_k(value: Option<&String>) -> Result<usize, CliError> {
    value
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&k| k >= 1)
        .ok_or_else(|| CliError::Usage(format!("-k needs a positive integer\n\n{}", usage())))
}

/// Parses argv (program name excluded).
///
/// # Errors
/// [`CliError::Usage`] with usage text on any problem.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let mut it = argv.iter();
    let Some(cmd) = it.next() else {
        return Err(CliError::Usage(usage()));
    };
    let rest: Vec<&String> = it.collect();
    let flag = |name: &str| -> Option<&String> {
        rest.iter()
            .position(|a| *a == name)
            .and_then(|i| rest.get(i + 1).copied())
    };
    let unexpected = |allowed: &[&str], switches: &[&str]| -> Result<(), CliError> {
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i].as_str();
            if switches.contains(&a) {
                i += 1; // valueless flag
            } else if allowed.contains(&a) {
                i += 2; // flag + value
            } else {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{a}`\n\n{}",
                    usage()
                )));
            }
        }
        Ok(())
    };
    let has_switch = |name: &str| rest.iter().any(|a| *a == name);
    let quasi = |raw: Option<&String>| -> Option<Vec<String>> {
        raw.map(|s| {
            s.split(',')
                .map(str::trim)
                .map(ToString::to_string)
                .collect()
        })
    };

    match cmd.as_str() {
        "anonymize" => {
            unexpected(
                &[
                    "-k",
                    "--input",
                    "--output",
                    "--algorithm",
                    "--quasi",
                    "--threads",
                    "--emit-mask",
                    "--deadline-ms",
                    "--max-memory-mb",
                ],
                &["--json"],
            )?;
            let k = parse_k(flag("-k"))?;
            let input = flag("--input")
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("--input is required\n\n{}", usage())))?;
            let budget_flag = |name: &str| -> Result<Option<u64>, CliError> {
                match flag(name) {
                    None => Ok(None),
                    Some(v) => v
                        .parse::<u64>()
                        .ok()
                        .filter(|&x| x >= 1)
                        .map(Some)
                        .ok_or_else(|| {
                            CliError::Usage(format!(
                                "{name} needs a positive integer\n\n{}",
                                usage()
                            ))
                        }),
                }
            };
            let deadline_ms = budget_flag("--deadline-ms")?;
            let max_memory_mb = budget_flag("--max-memory-mb")?;
            let budgeted = deadline_ms.is_some() || max_memory_mb.is_some();
            let algorithm = match flag("--algorithm").map(String::as_str) {
                // A budget without an explicit algorithm selects the
                // degradation ladder: best guarantee the budget affords.
                None if budgeted => Algorithm::Ladder,
                None | Some("center") => Algorithm::Center,
                Some("exhaustive") => Algorithm::Exhaustive,
                Some("forest") => Algorithm::Forest,
                Some("exact") => Algorithm::Exact,
                Some("ladder") => Algorithm::Ladder,
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "unknown algorithm `{other}` (center | exhaustive | forest | exact | ladder)\n\n{}",
                        usage()
                    )))
                }
            };
            if budgeted && matches!(algorithm, Algorithm::Forest | Algorithm::Exact) {
                return Err(CliError::Usage(format!(
                    "--deadline-ms/--max-memory-mb are not supported with `forest` or `exact`; \
                     use center, exhaustive, or ladder\n\n{}",
                    usage()
                )));
            }
            let threads = match flag("--threads") {
                None => 1,
                Some(v) => v.parse::<usize>().ok().filter(|&t| t >= 1).ok_or_else(|| {
                    CliError::Usage(format!("--threads needs a positive integer\n\n{}", usage()))
                })?,
            };
            Ok(Command::Anonymize {
                k,
                input,
                output: flag("--output").cloned(),
                algorithm,
                quasi: quasi(flag("--quasi")),
                threads,
                emit_mask: flag("--emit-mask").cloned(),
                deadline_ms,
                max_memory_mb,
                json: has_switch("--json"),
            })
        }
        "pipeline" => {
            unexpected(
                &[
                    "-k",
                    "--input",
                    "--output",
                    "--shard-size",
                    "--strategy",
                    "--buckets",
                    "--workers",
                    "--split-unit",
                    "--quasi",
                    "--hierarchies",
                    "--privacy",
                    "--sensitive",
                    "--deadline-ms",
                    "--max-memory-mb",
                ],
                &["--json", "--compare"],
            )?;
            let k = parse_k(flag("-k"))?;
            let input = flag("--input")
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("--input is required\n\n{}", usage())))?;
            let positive = |name: &str| -> Result<Option<usize>, CliError> {
                match flag(name) {
                    None => Ok(None),
                    Some(v) => v
                        .parse::<usize>()
                        .ok()
                        .filter(|&x| x >= 1)
                        .map(Some)
                        .ok_or_else(|| {
                            CliError::Usage(format!(
                                "{name} needs a positive integer\n\n{}",
                                usage()
                            ))
                        }),
                }
            };
            let budget_flag = |name: &str| -> Result<Option<u64>, CliError> {
                Ok(positive(name)?.map(|x| x as u64))
            };
            let strategy = match flag("--strategy") {
                None => kanon_pipeline::ShardStrategy::default(),
                Some(name) => kanon_pipeline::ShardStrategy::from_name(name)
                    .map_err(|e| CliError::Usage(format!("{e}\n\n{}", usage())))?,
            };
            let privacy = match flag("--privacy") {
                None => None,
                Some(spec) => {
                    kanon_privacy::PrivacyModel::parse(spec)
                        .map_err(|e| CliError::Usage(format!("{e}\n\n{}", usage())))?;
                    Some(spec.clone())
                }
            };
            Ok(Command::Pipeline {
                k,
                input,
                output: flag("--output").cloned(),
                shard_size: positive("--shard-size")?.unwrap_or(512),
                strategy,
                buckets: positive("--buckets")?,
                workers: positive("--workers")?,
                split_unit: positive("--split-unit")?,
                quasi: quasi(flag("--quasi")),
                hierarchies: flag("--hierarchies").cloned(),
                compare: has_switch("--compare"),
                privacy,
                sensitive: flag("--sensitive").cloned(),
                deadline_ms: budget_flag("--deadline-ms")?,
                max_memory_mb: budget_flag("--max-memory-mb")?,
                json: has_switch("--json"),
            })
        }
        "schema" => {
            let Some(action) = rest.first().map(|s| s.as_str()) else {
                return Err(CliError::Usage(format!(
                    "schema needs an action (probe | infer | verify)\n\n{}",
                    usage()
                )));
            };
            let rest = &rest[1..];
            let flag = |name: &str| -> Option<&String> {
                rest.iter()
                    .position(|a| **a == name)
                    .and_then(|i| rest.get(i + 1).copied())
            };
            let unexpected = |allowed: &[&str]| -> Result<(), CliError> {
                let mut i = 0;
                while i < rest.len() {
                    let a = rest[i].as_str();
                    if allowed.contains(&a) {
                        i += 2;
                    } else {
                        return Err(CliError::Usage(format!(
                            "unexpected argument `{a}`\n\n{}",
                            usage()
                        )));
                    }
                }
                Ok(())
            };
            let input = || -> Result<String, CliError> {
                flag("--input")
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("--input is required\n\n{}", usage())))
            };
            match action {
                "probe" => {
                    unexpected(&["--input"])?;
                    Ok(Command::Schema(SchemaAction::Probe { input: input()? }))
                }
                "infer" => {
                    unexpected(&["--input", "--output"])?;
                    Ok(Command::Schema(SchemaAction::Infer {
                        input: input()?,
                        output: flag("--output").cloned(),
                    }))
                }
                "verify" => {
                    unexpected(&["--schema", "--input"])?;
                    let schema = flag("--schema").cloned().ok_or_else(|| {
                        CliError::Usage(format!("--schema is required\n\n{}", usage()))
                    })?;
                    Ok(Command::Schema(SchemaAction::Verify {
                        schema,
                        input: input()?,
                    }))
                }
                other => Err(CliError::Usage(format!(
                    "unknown schema action `{other}` (probe | infer | verify)\n\n{}",
                    usage()
                ))),
            }
        }
        "delta" => {
            let Some(action) = rest.first().map(|s| s.as_str()) else {
                return Err(CliError::Usage(format!(
                    "delta needs an action (init | apply | status | release)\n\n{}",
                    usage()
                )));
            };
            // Local flag helpers over the args *after* the action word.
            let rest = &rest[1..];
            let flag = |name: &str| -> Option<&String> {
                rest.iter()
                    .position(|a| **a == name)
                    .and_then(|i| rest.get(i + 1).copied())
            };
            let has_switch = |name: &str| rest.iter().any(|a| **a == name);
            let unexpected = |allowed: &[&str], switches: &[&str]| -> Result<(), CliError> {
                let mut i = 0;
                while i < rest.len() {
                    let a = rest[i].as_str();
                    if switches.contains(&a) {
                        i += 1;
                    } else if allowed.contains(&a) {
                        i += 2;
                    } else {
                        return Err(CliError::Usage(format!(
                            "unexpected argument `{a}`\n\n{}",
                            usage()
                        )));
                    }
                }
                Ok(())
            };
            let positive = |name: &str| -> Result<Option<usize>, CliError> {
                match flag(name) {
                    None => Ok(None),
                    Some(v) => v
                        .parse::<usize>()
                        .ok()
                        .filter(|&x| x >= 1)
                        .map(Some)
                        .ok_or_else(|| {
                            CliError::Usage(format!(
                                "{name} needs a positive integer\n\n{}",
                                usage()
                            ))
                        }),
                }
            };
            let budget_flag = |name: &str| -> Result<Option<u64>, CliError> {
                Ok(positive(name)?.map(|x| x as u64))
            };
            let dir = || -> Result<String, CliError> {
                flag("--dir")
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("--dir is required\n\n{}", usage())))
            };
            match action {
                "init" => {
                    unexpected(
                        &[
                            "--dir",
                            "-k",
                            "--input",
                            "--shard-size",
                            "--buckets",
                            "--quasi",
                            "--deadline-ms",
                            "--max-memory-mb",
                        ],
                        &["--json"],
                    )?;
                    let k = parse_k(flag("-k"))?;
                    let input = flag("--input").cloned().ok_or_else(|| {
                        CliError::Usage(format!("--input is required\n\n{}", usage()))
                    })?;
                    Ok(Command::Delta(DeltaAction::Init {
                        dir: dir()?,
                        k,
                        input,
                        shard_size: positive("--shard-size")?.unwrap_or(512),
                        buckets: positive("--buckets")?,
                        quasi: quasi(flag("--quasi")),
                        deadline_ms: budget_flag("--deadline-ms")?,
                        max_memory_mb: budget_flag("--max-memory-mb")?,
                        json: has_switch("--json"),
                    }))
                }
                "apply" => {
                    unexpected(
                        &[
                            "--dir",
                            "--ops",
                            "--output",
                            "--deadline-ms",
                            "--max-memory-mb",
                        ],
                        &["--json"],
                    )?;
                    let ops = flag("--ops").cloned().ok_or_else(|| {
                        CliError::Usage(format!("--ops is required\n\n{}", usage()))
                    })?;
                    Ok(Command::Delta(DeltaAction::Apply {
                        dir: dir()?,
                        ops,
                        output: flag("--output").cloned(),
                        deadline_ms: budget_flag("--deadline-ms")?,
                        max_memory_mb: budget_flag("--max-memory-mb")?,
                        json: has_switch("--json"),
                    }))
                }
                "status" => {
                    unexpected(&["--dir"], &["--json"])?;
                    Ok(Command::Delta(DeltaAction::Status {
                        dir: dir()?,
                        json: has_switch("--json"),
                    }))
                }
                "release" => {
                    unexpected(
                        &["--dir", "--output", "--deadline-ms", "--max-memory-mb"],
                        &[],
                    )?;
                    Ok(Command::Delta(DeltaAction::Release {
                        dir: dir()?,
                        output: flag("--output").cloned(),
                        deadline_ms: budget_flag("--deadline-ms")?,
                        max_memory_mb: budget_flag("--max-memory-mb")?,
                    }))
                }
                other => Err(CliError::Usage(format!(
                    "unknown delta action `{other}` (init | apply | status | release)\n\n{}",
                    usage()
                ))),
            }
        }
        "verify" => {
            unexpected(&["-k", "--input", "--quasi"], &[])?;
            let k = parse_k(flag("-k"))?;
            let input = flag("--input")
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("--input is required\n\n{}", usage())))?;
            Ok(Command::Verify {
                k,
                input,
                quasi: quasi(flag("--quasi")),
            })
        }
        "attack" => {
            unexpected(&["--released", "--external", "--join"], &[])?;
            let released = flag("--released")
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("--released is required\n\n{}", usage())))?;
            let external = flag("--external")
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("--external is required\n\n{}", usage())))?;
            let join = quasi(flag("--join"))
                .ok_or_else(|| CliError::Usage(format!("--join is required\n\n{}", usage())))?;
            Ok(Command::Attack {
                released,
                external,
                join,
            })
        }
        "generate" => {
            unexpected(
                &[
                    "--rows",
                    "--seed",
                    "--regions",
                    "--workload",
                    "--cols",
                    "--alphabet",
                    "--exponent",
                    "--output",
                ],
                &["--messy"],
            )?;
            let parse_or = |name: &str, default: u64| -> Result<u64, CliError> {
                match flag(name) {
                    None => Ok(default),
                    Some(v) => v.parse::<u64>().map_err(|_| {
                        CliError::Usage(format!("{name} needs an integer\n\n{}", usage()))
                    }),
                }
            };
            let workload = flag("--workload")
                .cloned()
                .unwrap_or_else(|| "census".into());
            if !matches!(workload.as_str(), "census" | "zipf") {
                return Err(CliError::Usage(format!(
                    "unknown workload `{workload}` (census | zipf)\n\n{}",
                    usage()
                )));
            }
            Ok(Command::Generate {
                rows: parse_or("--rows", 100)? as usize,
                seed: parse_or("--seed", 0)?,
                regions: parse_or("--regions", 8)? as usize,
                workload,
                cols: parse_or("--cols", 8)? as usize,
                alphabet: parse_or("--alphabet", 50)? as u32,
                exponent: flag("--exponent").cloned().unwrap_or_else(|| "1.0".into()),
                messy: has_switch("--messy"),
                output: flag("--output").cloned(),
            })
        }
        "serve" => {
            unexpected(
                &[
                    "--addr",
                    "--workers",
                    "--queue-depth",
                    "--pool-memory-mb",
                    "--data-dir",
                ],
                &[],
            )?;
            let positive = |name: &str, default: u64| -> Result<u64, CliError> {
                match flag(name) {
                    None => Ok(default),
                    Some(v) => v.parse::<u64>().ok().filter(|&x| x >= 1).ok_or_else(|| {
                        CliError::Usage(format!("{name} needs a positive integer\n\n{}", usage()))
                    }),
                }
            };
            Ok(Command::Serve {
                addr: flag("--addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:8672".into()),
                workers: positive("--workers", 4)? as usize,
                queue_depth: positive("--queue-depth", 64)? as usize,
                pool_memory_mb: positive("--pool-memory-mb", 256)?,
                data_dir: flag("--data-dir").cloned(),
            })
        }
        "bench-serve" => {
            unexpected(
                &[
                    "--addr",
                    "--requests",
                    "--clients",
                    "--rows",
                    "-k",
                    "--shard-size",
                    "--deadline-ms",
                    "--workers",
                    "--queue-depth",
                    "--seed",
                    "--out",
                ],
                &["--table"],
            )?;
            let positive = |name: &str, default: u64| -> Result<u64, CliError> {
                match flag(name) {
                    None => Ok(default),
                    Some(v) => v.parse::<u64>().ok().filter(|&x| x >= 1).ok_or_else(|| {
                        CliError::Usage(format!("{name} needs a positive integer\n\n{}", usage()))
                    }),
                }
            };
            Ok(Command::BenchServe {
                addr: flag("--addr").cloned(),
                requests: positive("--requests", 64)? as usize,
                clients: positive("--clients", 8)? as usize,
                rows: positive("--rows", 50_000)? as usize,
                k: positive("-k", 5)? as usize,
                shard_size: positive("--shard-size", 512)? as usize,
                deadline_ms: flag("--deadline-ms")
                    .map(|v| {
                        v.parse::<u64>().ok().filter(|&x| x >= 1).ok_or_else(|| {
                            CliError::Usage(format!(
                                "--deadline-ms needs a positive integer\n\n{}",
                                usage()
                            ))
                        })
                    })
                    .transpose()?,
                workers: positive("--workers", 4)? as usize,
                queue_depth: positive("--queue-depth", 64)? as usize,
                seed: positive("--seed", 42)?,
                out: flag("--out").cloned(),
                table: has_switch("--table"),
            })
        }
        "help" | "-h" | "--help" => Ok(Command::Help),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(ToString::to_string).collect()
    }

    #[test]
    fn parse_anonymize_full() {
        let cmd = parse(&argv(
            "anonymize -k 3 --input a.csv --output b.csv --algorithm exact --quasi age,zip",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Anonymize {
                k: 3,
                input: "a.csv".into(),
                output: Some("b.csv".into()),
                algorithm: Algorithm::Exact,
                quasi: Some(vec!["age".into(), "zip".into()]),
                threads: 1,
                emit_mask: None,
                deadline_ms: None,
                max_memory_mb: None,
                json: false,
            }
        );
    }

    #[test]
    fn parse_defaults() {
        let cmd = parse(&argv("anonymize -k 2 --input -")).unwrap();
        assert_eq!(
            cmd,
            Command::Anonymize {
                k: 2,
                input: "-".into(),
                output: None,
                algorithm: Algorithm::Center,
                quasi: None,
                threads: 1,
                emit_mask: None,
                deadline_ms: None,
                max_memory_mb: None,
                json: false,
            }
        );
        assert_eq!(
            parse(&argv("generate")).unwrap(),
            Command::Generate {
                rows: 100,
                seed: 0,
                regions: 8,
                workload: "census".into(),
                cols: 8,
                alphabet: 50,
                exponent: "1.0".into(),
                messy: false,
                output: None,
            }
        );
    }

    #[test]
    fn parse_pipeline() {
        let cmd = parse(&argv(
            "pipeline -k 5 --input big.csv --output out.csv --shard-size 1024 \
             --strategy sorted --workers 4 --split-unit 256 --quasi age,zip \
             --deadline-ms 30000 --json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Pipeline {
                k: 5,
                input: "big.csv".into(),
                output: Some("out.csv".into()),
                shard_size: 1024,
                strategy: kanon_pipeline::ShardStrategy::Sorted,
                buckets: None,
                workers: Some(4),
                split_unit: Some(256),
                quasi: Some(vec!["age".into(), "zip".into()]),
                hierarchies: None,
                compare: false,
                privacy: None,
                sensitive: None,
                deadline_ms: Some(30_000),
                max_memory_mb: None,
                json: true,
            }
        );
        // Defaults.
        let cmd = parse(&argv("pipeline -k 3 --input -")).unwrap();
        assert_eq!(
            cmd,
            Command::Pipeline {
                k: 3,
                input: "-".into(),
                output: None,
                shard_size: 512,
                strategy: kanon_pipeline::ShardStrategy::HashQuasi,
                buckets: None,
                workers: None,
                split_unit: None,
                quasi: None,
                hierarchies: None,
                compare: false,
                privacy: None,
                sensitive: None,
                deadline_ms: None,
                max_memory_mb: None,
                json: false,
            }
        );
        // The auto path's knobs.
        let cmd = parse(&argv(
            "pipeline -k 3 --input messy.csv --hierarchies h.json --compare",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Pipeline {
                quasi: None,
                hierarchies: Some(ref h),
                compare: true,
                ..
            } if h == "h.json"
        ));
        // The privacy knob.
        let cmd = parse(&argv(
            "pipeline -k 3 --input t.csv --quasi age,zip --privacy l=2 --sensitive diagnosis",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Pipeline {
                privacy: Some(ref p),
                sensitive: Some(ref s),
                ..
            } if p == "l=2" && s == "diagnosis"
        ));
        let cmd = parse(&argv(
            "pipeline -k 3 --input t.csv --privacy emd-t=0.2 --sensitive d",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Pipeline {
                privacy: Some(ref p),
                ..
            } if p == "emd-t=0.2"
        ));
        // Errors.
        for bad in [
            "pipeline --input -",
            "pipeline -k 3",
            "pipeline -k 3 --input - --strategy range",
            "pipeline -k 3 --input - --shard-size 0",
            "pipeline -k 3 --input - --buckets 0",
            "pipeline -k 3 --input - --workers 0",
            "pipeline -k 3 --input - --split-unit 0",
            "pipeline -k 3 --input - --bogus x",
            "pipeline -k 3 --input - --privacy l=1",
            "pipeline -k 3 --input - --privacy bogus",
        ] {
            assert!(
                matches!(parse(&argv(bad)), Err(CliError::Usage(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn parse_generate_zipf() {
        let cmd = parse(&argv(
            "generate --workload zipf --rows 1000 --cols 6 --alphabet 30 \
             --exponent 1.2 --seed 9 --output data.csv",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                rows: 1000,
                seed: 9,
                regions: 8,
                workload: "zipf".into(),
                cols: 6,
                alphabet: 30,
                exponent: "1.2".into(),
                messy: false,
                output: Some("data.csv".into()),
            }
        );
        assert!(matches!(
            parse(&argv("generate --workload weibull")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_generate_messy() {
        let cmd = parse(&argv("generate --messy --rows 500 --seed 3")).unwrap();
        assert!(matches!(
            cmd,
            Command::Generate {
                messy: true,
                rows: 500,
                seed: 3,
                ..
            }
        ));
    }

    #[test]
    fn parse_schema_actions() {
        assert_eq!(
            parse(&argv("schema probe --input messy.csv")).unwrap(),
            Command::Schema(SchemaAction::Probe {
                input: "messy.csv".into(),
            })
        );
        assert_eq!(
            parse(&argv("schema infer --input messy.csv --output t.schema")).unwrap(),
            Command::Schema(SchemaAction::Infer {
                input: "messy.csv".into(),
                output: Some("t.schema".into()),
            })
        );
        assert_eq!(
            parse(&argv("schema verify --schema t.schema --input messy.csv")).unwrap(),
            Command::Schema(SchemaAction::Verify {
                schema: "t.schema".into(),
                input: "messy.csv".into(),
            })
        );
        for bad in [
            "schema",
            "schema guess --input x",
            "schema probe",            // --input missing
            "schema verify --input x", // --schema missing
            "schema infer --input x --bogus y",
        ] {
            assert!(
                matches!(parse(&argv(bad)), Err(CliError::Usage(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(parse(&[]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("bogus")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("anonymize --input x")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("anonymize -k 0 --input x")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("anonymize -k 2")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("anonymize -k 2 --input x --algorithm turbo")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("verify -k 2 --input x --bogus y")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("generate --rows abc")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn budget_flags_select_the_ladder() {
        // A budget flag with no --algorithm promotes the run to the ladder.
        let cmd = parse(&argv("anonymize -k 3 --input - --deadline-ms 500")).unwrap();
        assert!(matches!(
            cmd,
            Command::Anonymize {
                algorithm: Algorithm::Ladder,
                deadline_ms: Some(500),
                max_memory_mb: None,
                ..
            }
        ));
        // An explicit governed algorithm keeps its choice.
        let cmd = parse(&argv(
            "anonymize -k 3 --input - --algorithm center --max-memory-mb 64",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Anonymize {
                algorithm: Algorithm::Center,
                max_memory_mb: Some(64),
                ..
            }
        ));
        // `ladder` is spellable without budget flags (unlimited ladder).
        let cmd = parse(&argv("anonymize -k 3 --input - --algorithm ladder")).unwrap();
        assert!(matches!(
            cmd,
            Command::Anonymize {
                algorithm: Algorithm::Ladder,
                deadline_ms: None,
                ..
            }
        ));
    }

    #[test]
    fn budget_flag_errors() {
        // Ungoverned solvers reject budget flags.
        for algo in ["forest", "exact"] {
            let err = parse(&argv(&format!(
                "anonymize -k 2 --input - --algorithm {algo} --deadline-ms 100"
            )))
            .unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{algo}");
        }
        // Budget values must be positive integers.
        for bad in [
            "anonymize -k 2 --input - --deadline-ms 0",
            "anonymize -k 2 --input - --deadline-ms soon",
            "anonymize -k 2 --input - --max-memory-mb -5",
        ] {
            assert!(
                matches!(parse(&argv(bad)), Err(CliError::Usage(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn parse_attack() {
        let cmd = parse(&argv(
            "attack --released r.csv --external e.csv --join age,zip",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Attack {
                released: "r.csv".into(),
                external: "e.csv".into(),
                join: vec!["age".into(), "zip".into()],
            }
        );
        assert!(matches!(
            parse(&argv("attack --released r.csv")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_serve_and_bench_serve() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:8672".into(),
                workers: 4,
                queue_depth: 64,
                pool_memory_mb: 256,
                data_dir: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --addr 0.0.0.0:9000 --workers 8 --queue-depth 16 --pool-memory-mb 512 \
                 --data-dir /tmp/tables"
            ))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                workers: 8,
                queue_depth: 16,
                pool_memory_mb: 512,
                data_dir: Some("/tmp/tables".into()),
            }
        );
        assert_eq!(
            parse(&argv(
                "bench-serve --requests 32 --clients 4 --rows 1000 -k 3 \
                 --shard-size 64 --deadline-ms 5000 --seed 7 --out bench.json --table"
            ))
            .unwrap(),
            Command::BenchServe {
                addr: None,
                requests: 32,
                clients: 4,
                rows: 1000,
                k: 3,
                shard_size: 64,
                deadline_ms: Some(5000),
                workers: 4,
                queue_depth: 64,
                seed: 7,
                out: Some("bench.json".into()),
                table: true,
            }
        );
        let defaults = parse(&argv("bench-serve")).unwrap();
        assert!(matches!(
            defaults,
            Command::BenchServe {
                addr: None,
                requests: 64,
                rows: 50_000,
                k: 5,
                deadline_ms: None,
                ..
            }
        ));
        for bad in [
            "serve --workers 0",
            "serve --bogus x",
            "bench-serve --requests 0",
            "bench-serve --deadline-ms never",
        ] {
            assert!(
                matches!(parse(&argv(bad)), Err(CliError::Usage(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn pinned_buckets_parse_on_pipeline() {
        let cmd = parse(&argv("pipeline -k 3 --input - --buckets 250")).unwrap();
        assert!(matches!(
            cmd,
            Command::Pipeline {
                buckets: Some(250),
                ..
            }
        ));
    }

    #[test]
    fn parse_delta_actions() {
        assert_eq!(
            parse(&argv(
                "delta init --dir store -k 3 --input t.csv --shard-size 256 \
                 --buckets 100 --quasi age,zip --deadline-ms 5000 --json"
            ))
            .unwrap(),
            Command::Delta(DeltaAction::Init {
                dir: "store".into(),
                k: 3,
                input: "t.csv".into(),
                shard_size: 256,
                buckets: Some(100),
                quasi: Some(vec!["age".into(), "zip".into()]),
                deadline_ms: Some(5000),
                max_memory_mb: None,
                json: true,
            })
        );
        assert_eq!(
            parse(&argv(
                "delta apply --dir store --ops ops.csv --output out.csv"
            ))
            .unwrap(),
            Command::Delta(DeltaAction::Apply {
                dir: "store".into(),
                ops: "ops.csv".into(),
                output: Some("out.csv".into()),
                deadline_ms: None,
                max_memory_mb: None,
                json: false,
            })
        );
        assert_eq!(
            parse(&argv("delta status --dir store --json")).unwrap(),
            Command::Delta(DeltaAction::Status {
                dir: "store".into(),
                json: true,
            })
        );
        assert_eq!(
            parse(&argv("delta release --dir store")).unwrap(),
            Command::Delta(DeltaAction::Release {
                dir: "store".into(),
                output: None,
                deadline_ms: None,
                max_memory_mb: None,
            })
        );
    }

    #[test]
    fn delta_parse_errors() {
        for bad in [
            "delta",
            "delta compact --dir store",
            "delta init -k 3 --input t.csv",        // --dir missing
            "delta init --dir store --input t.csv", // -k missing
            "delta init --dir store -k 3",          // --input missing
            "delta init --dir store -k 3 --input t.csv --buckets 0",
            "delta apply --dir store", // --ops missing
            "delta apply --ops o.csv", // --dir missing
            "delta status --dir store --bogus x",
            "delta release --output out.csv",
        ] {
            assert!(
                matches!(parse(&argv(bad)), Err(CliError::Usage(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn help_variants() {
        for h in ["help", "-h", "--help"] {
            assert_eq!(parse(&argv(h)).unwrap(), Command::Help);
        }
    }
}
