//! The `kanon` binary: see `kanon help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match kanon_cli::run(&argv) {
        Ok(outcome) => {
            print!("{}", outcome.stdout);
            for note in &outcome.notes {
                eprintln!("{note}");
            }
            ExitCode::SUCCESS
        }
        Err(kanon_cli::CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Err(err) => {
            // Failed / EmptyInput / BadK: runtime failures, exit 1.
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}
