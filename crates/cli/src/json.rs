//! JSON rendering for `--json` output. The builder itself lives in
//! [`kanon_pipeline::json`] so the serving layer can share it; this module
//! re-exports it under the CLI's historical path.

pub use kanon_pipeline::json::JsonObject;
