//! # kanon-cli
//!
//! The `kanon` command-line anonymizer: CSV in, k-anonymous CSV out, built
//! on the Meyerson–Williams algorithms in `kanon-core`. The binary is a
//! thin wrapper around [`run`]; all logic lives here so it is unit-testable.
//!
//! ```text
//! kanon anonymize -k 3 --input people.csv [--algorithm center|exhaustive|exact]
//!                 [--quasi age,zip,sex] [--output out.csv] [--json]
//! kanon pipeline  -k 3 --input big.csv [--shard-size 512] [--workers 4]
//!                 [--output out.csv] [--json]
//! kanon verify    -k 3 --input released.csv [--quasi age,zip,sex]
//! kanon generate  --rows 200 [--seed 7] [--regions 8] [--workload census|zipf]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod json;

pub use args::{Algorithm, Command};

/// Parses argv (without the program name) and executes the command.
///
/// Returns the text destined for stdout; side-channel messages (statistics)
/// go through the returned [`Outcome::notes`].
///
/// # Errors
/// A human-readable message destined for stderr (exit code 2 for usage
/// problems, 1 for execution failures — distinguished by [`CliError`]).
pub fn run(argv: &[String]) -> Result<Outcome, CliError> {
    let cmd = args::parse(argv)?;
    commands::execute(&cmd)
}

/// Successful execution: stdout payload plus human-oriented notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Primary output (CSV or report text).
    pub stdout: String,
    /// Statistics and remarks for stderr.
    pub notes: Vec<String>,
}

/// CLI failure, split by exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad arguments (exit 2); includes usage.
    Usage(String),
    /// Runtime failure (exit 1).
    Failed(String),
    /// The input table parsed but has no data rows (exit 1).
    EmptyInput,
    /// The privacy parameter is infeasible for the input size (exit 1).
    BadK {
        /// The requested privacy parameter.
        k: usize,
        /// The input's data-row count.
        n: usize,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Failed(m) => write!(f, "{m}"),
            CliError::EmptyInput => {
                write!(
                    f,
                    "input table has a header but no data rows; nothing to process"
                )
            }
            CliError::BadK { k, n } => write!(
                f,
                "k = {k} is infeasible for an input with {n} data row(s); need 1 <= k <= {n}"
            ),
        }
    }
}

impl std::error::Error for CliError {}
