//! # kanon-schema
//!
//! Schema inference for messy CSVs: the `probe → infer → verify` contract
//! that lets the anonymization pipeline ingest real-shaped files — odd
//! delimiters, mixed types, injected nulls, no hand-picked
//! quasi-identifier list — and still drive the generalization lattice in
//! `kanon-relation`.
//!
//! * [`probe`] — structural delimiter/quoting detection over a byte
//!   sample;
//! * [`infer`] — per-column type voting (int / float / date / categorical
//!   / text), null-rate, cardinality, uniqueness, value entropy, a ranked
//!   quasi-identifier suggestion, and a sensitive-column screening for
//!   l-diversity duty;
//! * [`mod@file`] — the versioned `.schema` file with an FNV snapshot hash so
//!   `verify` detects both hand edits and upstream data drift;
//! * [`mod@derive`] — auto-derivation of [`kanon_relation::Hierarchy`] chains
//!   from profiles (numeric → interval ladders, strings →
//!   prefix/suppress), with user JSON overrides on top.
//!
//! Typical flow:
//!
//! ```
//! use kanon_schema::{infer, file, derive};
//!
//! let csv = b"age;race\n34;Cauc\n47;Hisp\nN/A;Cauc\n22;Hisp\n";
//! let schema = infer::infer_bytes(csv, false, usize::MAX).unwrap();
//! assert_eq!(schema.delimiter, b';');
//! assert_eq!(schema.quasi_suggestion()[0], "age");
//!
//! // Persist, reload, verify.
//! let text = file::render(&schema);
//! let stored = file::parse(&text).unwrap();
//! assert_eq!(file::verify(&stored.schema, &schema).unwrap(), file::VerifyReport::Exact);
//!
//! // One hierarchy per column, ready for the generalization lattice.
//! let hierarchies = derive::derive_hierarchies(&schema, None).unwrap();
//! assert_eq!(hierarchies.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod derive;
pub mod error;
pub mod file;
pub mod infer;
pub mod json;
pub mod probe;

pub use derive::{derive_hierarchies, derive_hierarchy};
pub use error::{Error, Result};
pub use file::{
    parse as parse_schema_file, render as render_schema_file, snapshot_hash, verify, SchemaFile,
    VerifyReport,
};
pub use infer::{
    infer_bytes, infer_reader, ColumnProfile, ColumnType, InferredSchema, SensitiveCandidate,
};
pub use probe::{probe_bytes, read_sample, ProbeReport};
