//! Auto-derivation of generalization hierarchies from inferred profiles.
//!
//! The paper's hierarchies ("age → 20-40", "Reyser → R*") "must be given
//! prior to the input"; this module manufactures them from what inference
//! learned, so a messy CSV with no user-supplied domain knowledge can
//! still ride the generalization lattice:
//!
//! * **int** → [`Hierarchy::LenientIntervals`] on a decimal ladder
//!   (widths 10, 100, …) grown until one band covers the observed range —
//!   junk cells merge to `*` instead of aborting;
//! * **date** → [`Hierarchy::Dates`], the calendar ladder
//!   (`2024-03-17 → 2024-03 → 2024 → *`) — an interval structure a prefix
//!   mask can't express for year-last renderings like `17/03/2024`;
//! * **float / short text** → [`Hierarchy::PrefixMask`] over the
//!   longest observed value (the classic zip-code ladder);
//! * **categorical / long free text** → [`Hierarchy::SuppressOnly`]
//!   (prefixes of prose or enum labels carry no domain meaning).
//!
//! A user-supplied JSON override file replaces the derived hierarchy for
//! named columns — domain knowledge always wins over inference.

use kanon_relation::Hierarchy;

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::infer::{ColumnProfile, ColumnType, InferredSchema};
use crate::json::{self, Value};

/// Longest value, in characters, still worth a prefix ladder; longer
/// columns are treated as free text and suppressed whole. Also bounds the
/// per-column lattice height, keeping the node count tame.
pub const MAX_PREFIX_HEIGHT: usize = 10;

/// Most interval-ladder levels derived for one numeric column.
const MAX_INTERVAL_LEVELS: usize = 6;

/// Derives the hierarchy for one column from its profile.
#[must_use]
pub fn derive_hierarchy(profile: &ColumnProfile) -> Hierarchy {
    match profile.ctype {
        ColumnType::Int => {
            let lo = profile.min_int.unwrap_or(0);
            let hi = profile.max_int.unwrap_or(0);
            // Span of the band that must eventually cover every value so
            // the column can fully merge at the top of the ladder.
            let span = hi.saturating_sub(lo).saturating_add(1).max(1);
            let mut widths: Vec<i64> = vec![10];
            while {
                let w = *widths.last().expect("non-empty");
                // The top band merges everything only when one width-w
                // aligned band covers [lo, hi].
                w < span || lo.div_euclid(w) != hi.div_euclid(w)
            } && widths.len() < MAX_INTERVAL_LEVELS
            {
                let w = *widths.last().expect("non-empty");
                widths.push(w.saturating_mul(10));
            }
            Hierarchy::LenientIntervals { widths }
        }
        ColumnType::Date => Hierarchy::Dates,
        ColumnType::Float | ColumnType::Text => prefix_or_suppress(profile.max_len),
        ColumnType::Categorical => Hierarchy::SuppressOnly,
    }
}

fn prefix_or_suppress(max_len: usize) -> Hierarchy {
    if (1..=MAX_PREFIX_HEIGHT).contains(&max_len) {
        Hierarchy::PrefixMask { height: max_len }
    } else {
        Hierarchy::SuppressOnly
    }
}

/// Derives one hierarchy per column of `schema`, in column order, applying
/// `overrides` (JSON text, see below) on top. Every returned hierarchy is
/// validated.
///
/// Override format — an object keyed by column name:
///
/// ```json
/// {
///   "age":  {"type": "intervals", "widths": [5, 25]},
///   "zip":  {"type": "prefix", "height": 3},
///   "race": {"type": "suppress"},
///   "born": {"type": "dates"},
///   "city": {"type": "explicit", "levels": [{"Boston": "MA"}, {"MA": "*"}]}
/// }
/// ```
///
/// `intervals` overrides build [`Hierarchy::LenientIntervals`] — explicit
/// domain widths should still tolerate the junk cells that motivated the
/// schema toolchain in the first place.
///
/// # Errors
/// [`Error::Override`] for unparseable JSON, unknown column names, or a
/// malformed spec; [`Error::Relation`] when a spec fails hierarchy
/// validation.
pub fn derive_hierarchies(
    schema: &InferredSchema,
    overrides: Option<&str>,
) -> Result<Vec<Hierarchy>> {
    let mut by_name: HashMap<String, Hierarchy> = HashMap::new();
    if let Some(text) = overrides {
        let doc = json::parse(text).map_err(Error::Override)?;
        let entries = doc
            .as_obj()
            .ok_or_else(|| Error::Override("top level must be an object".into()))?;
        for (name, spec) in entries {
            if schema.column(name).is_none() {
                let known: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
                return Err(Error::Override(format!(
                    "unknown column `{name}` (known: {})",
                    known.join(", ")
                )));
            }
            by_name.insert(name.clone(), parse_override(name, spec)?);
        }
    }
    let mut out = Vec::with_capacity(schema.columns.len());
    for c in &schema.columns {
        let h = by_name
            .remove(&c.name)
            .unwrap_or_else(|| derive_hierarchy(c));
        h.validate()?;
        out.push(h);
    }
    Ok(out)
}

fn parse_override(name: &str, spec: &Value) -> Result<Hierarchy> {
    let kind = spec
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| Error::Override(format!("column `{name}`: missing `type`")))?;
    match kind {
        "suppress" => Ok(Hierarchy::SuppressOnly),
        "dates" => Ok(Hierarchy::Dates),
        "prefix" => {
            let height = spec
                .get("height")
                .and_then(Value::as_i64)
                .filter(|&h| h > 0)
                .ok_or_else(|| {
                    Error::Override(format!(
                        "column `{name}`: `prefix` needs a positive `height`"
                    ))
                })?;
            Ok(Hierarchy::PrefixMask {
                height: height as usize,
            })
        }
        "intervals" => {
            let widths: Vec<i64> = spec
                .get("widths")
                .and_then(Value::as_arr)
                .ok_or_else(|| {
                    Error::Override(format!("column `{name}`: `intervals` needs `widths` array"))
                })?
                .iter()
                .map(|w| {
                    w.as_i64().ok_or_else(|| {
                        Error::Override(format!("column `{name}`: widths must be integers"))
                    })
                })
                .collect::<Result<_>>()?;
            Ok(Hierarchy::LenientIntervals { widths })
        }
        "explicit" => {
            let levels = spec
                .get("levels")
                .and_then(Value::as_arr)
                .ok_or_else(|| {
                    Error::Override(format!("column `{name}`: `explicit` needs `levels` array"))
                })?
                .iter()
                .map(|level| {
                    let entries = level.as_obj().ok_or_else(|| {
                        Error::Override(format!("column `{name}`: each level must be an object"))
                    })?;
                    let mut map = HashMap::new();
                    for (child, parent) in entries {
                        let parent = parent.as_str().ok_or_else(|| {
                            Error::Override(format!(
                                "column `{name}`: level values must be strings"
                            ))
                        })?;
                        map.insert(child.clone(), parent.to_string());
                    }
                    Ok(map)
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(Hierarchy::Explicit { levels })
        }
        other => Err(Error::Override(format!(
            "column `{name}`: unknown hierarchy type `{other}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_bytes;

    fn profile(ctype: ColumnType, max_len: usize, range: Option<(i64, i64)>) -> ColumnProfile {
        ColumnProfile {
            name: "c".into(),
            ctype,
            null_rate: 0.0,
            distinct: 5,
            uniqueness: 0.5,
            entropy: 5.0f64.ln(),
            max_len,
            min_int: range.map(|(lo, _)| lo),
            max_int: range.map(|(_, hi)| hi),
        }
    }

    #[test]
    fn int_gets_decimal_ladder_covering_range() {
        let h = derive_hierarchy(&profile(ColumnType::Int, 2, Some((18, 97))));
        let Hierarchy::LenientIntervals { widths } = &h else {
            panic!("want LenientIntervals, got {h:?}");
        };
        assert_eq!(widths, &vec![10, 100]);
        h.validate().unwrap();
        // The top level merges the whole observed range into one band.
        let top = widths.len();
        assert_eq!(
            h.generalize("18", top).unwrap(),
            h.generalize("97", top).unwrap()
        );
    }

    #[test]
    fn int_ladder_spans_wide_and_negative_ranges() {
        let h = derive_hierarchy(&profile(ColumnType::Int, 6, Some((30_000, 90_000))));
        let Hierarchy::LenientIntervals { widths } = &h else {
            panic!()
        };
        assert_eq!(*widths.last().unwrap(), 100_000);
        let top = widths.len();
        assert_eq!(
            h.generalize("30000", top).unwrap(),
            h.generalize("90000", top).unwrap()
        );
        // An all-negative range converges too (bands are euclid-aligned,
        // so a range straddling zero can never merge into one band — the
        // ladder then simply caps and the rung falls back to suppression).
        let h = derive_hierarchy(&profile(ColumnType::Int, 3, Some((-40, -4))));
        let Hierarchy::LenientIntervals { widths } = &h else {
            panic!()
        };
        let top = widths.len();
        assert_eq!(
            h.generalize("-40", top).unwrap(),
            h.generalize("-4", top).unwrap()
        );
        // Cross-zero: ladder caps at its maximum depth instead of looping.
        let h = derive_hierarchy(&profile(ColumnType::Int, 3, Some((-40, 40))));
        let Hierarchy::LenientIntervals { widths } = &h else {
            panic!()
        };
        assert_eq!(widths.len(), 6);
        h.validate().unwrap();
    }

    #[test]
    fn strings_split_between_prefix_and_suppress() {
        assert!(matches!(
            derive_hierarchy(&profile(ColumnType::Text, 6, None)),
            Hierarchy::PrefixMask { height: 6 }
        ));
        assert!(matches!(
            derive_hierarchy(&profile(ColumnType::Text, 40, None)),
            Hierarchy::SuppressOnly
        ));
        // Date columns get the calendar ladder, not a prefix mask.
        let date = derive_hierarchy(&profile(ColumnType::Date, 10, None));
        assert!(matches!(date, Hierarchy::Dates));
        assert_eq!(date.generalize("2024-03-17", 1).unwrap(), "2024-03");
        assert_eq!(date.generalize("2024-03-17", 2).unwrap(), "2024");
        assert!(matches!(
            derive_hierarchy(&profile(ColumnType::Categorical, 6, None)),
            Hierarchy::SuppressOnly
        ));
        // All-null column (max_len 0) suppresses.
        assert!(matches!(
            derive_hierarchy(&profile(ColumnType::Text, 0, None)),
            Hierarchy::SuppressOnly
        ));
    }

    fn messy_schema() -> InferredSchema {
        infer_bytes(
            b"age;race;zip\n34;Cauc;02139\n47;Hisp;02144\nN/A;Cauc;02139\n22;Hisp;02144\n",
            false,
            usize::MAX,
        )
        .unwrap()
    }

    #[test]
    fn derive_all_without_overrides() {
        let schema = messy_schema();
        let hs = derive_hierarchies(&schema, None).unwrap();
        assert_eq!(hs.len(), 3);
        assert!(matches!(hs[0], Hierarchy::LenientIntervals { .. })); // age
        assert!(matches!(hs[1], Hierarchy::SuppressOnly)); // race (categorical)
                                                           // zip parses as int (leading zeros survive i64? "02139" parses to
                                                           // 2139) — yes, zips vote int and get interval ladders too.
        assert!(matches!(hs[2], Hierarchy::LenientIntervals { .. }));
    }

    #[test]
    fn overrides_replace_and_validate() {
        let schema = messy_schema();
        let hs = derive_hierarchies(
            &schema,
            Some(r#"{"zip": {"type": "prefix", "height": 5}, "age": {"type": "intervals", "widths": [5, 25]}}"#),
        )
        .unwrap();
        assert!(matches!(hs[2], Hierarchy::PrefixMask { height: 5 }));
        assert!(matches!(&hs[0], Hierarchy::LenientIntervals { widths } if widths == &vec![5, 25]));
        // Race untouched.
        assert!(matches!(hs[1], Hierarchy::SuppressOnly));
    }

    #[test]
    fn override_errors() {
        let schema = messy_schema();
        // Unknown column names the known ones.
        let err =
            derive_hierarchies(&schema, Some(r#"{"salary": {"type": "suppress"}}"#)).unwrap_err();
        assert!(
            matches!(&err, Error::Override(m) if m.contains("age, race, zip")),
            "{err}"
        );
        // Bad JSON.
        assert!(matches!(
            derive_hierarchies(&schema, Some("{nope")),
            Err(Error::Override(_))
        ));
        // Bad spec shape.
        assert!(matches!(
            derive_hierarchies(&schema, Some(r#"{"age": {"type": "prefix"}}"#)),
            Err(Error::Override(_))
        ));
        assert!(matches!(
            derive_hierarchies(&schema, Some(r#"{"age": {"type": "wavelet"}}"#)),
            Err(Error::Override(_))
        ));
        // Non-nesting widths fail hierarchy validation, not silently pass.
        assert!(matches!(
            derive_hierarchies(
                &schema,
                Some(r#"{"age": {"type": "intervals", "widths": [10, 15]}}"#)
            ),
            Err(Error::Relation(_))
        ));
    }

    #[test]
    fn explicit_override_round_trips() {
        let schema = messy_schema();
        let hs = derive_hierarchies(
            &schema,
            Some(
                r#"{"race": {"type": "explicit", "levels": [{"Cauc": "Euro", "Hisp": "Amer"}, {"Euro": "*", "Amer": "*"}]}}"#,
            ),
        )
        .unwrap();
        assert_eq!(hs[1].generalize("Cauc", 1).unwrap(), "Euro");
        assert_eq!(hs[1].generalize("Hisp", 2).unwrap(), "*");
    }
}
