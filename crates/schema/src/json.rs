//! A minimal recursive-descent JSON parser for hierarchy-override files.
//!
//! The workspace is std-only, so this small reader stands in for a JSON
//! crate. It accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null) and reports errors with a byte offset. Object
//! keys keep their file order — override application is deterministic.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in file order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object's entries, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an `i64`, if this is an integral number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }
}

/// Parses a complete JSON document.
///
/// # Errors
/// A human-readable message with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired —
                            // override files have no business containing
                            // astral-plane escapes split across surrogates.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint at byte {}", self.pos))?,
                            );
                        }
                        other => {
                            return Err(format!(
                                "bad escape `\\{}` at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; input is a &str so byte
                    // boundaries are valid.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_override_shape() {
        let v = parse(
            r#"{
                "age": {"type": "intervals", "widths": [5, 25]},
                "zip": {"type": "prefix", "height": 3},
                "race": {"type": "suppress"}
            }"#,
        )
        .unwrap();
        let age = v.get("age").unwrap();
        assert_eq!(age.get("type").unwrap().as_str(), Some("intervals"));
        let widths: Vec<i64> = age
            .get("widths")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|w| w.as_i64().unwrap())
            .collect();
        assert_eq!(widths, vec![5, 25]);
        assert_eq!(
            v.get("zip").unwrap().get("height").unwrap().as_i64(),
            Some(3)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        assert_eq!(
            parse(r#"[1, [2, {"a": 3}]]"#).unwrap().as_arr().unwrap()[1]
                .as_arr()
                .unwrap()[1]
                .get("a")
                .unwrap()
                .as_i64(),
            Some(3)
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            Value::Str("a\"b\\c\ndA".to_string())
        );
        assert_eq!(
            parse("\"caf\u{e9}\"").unwrap(),
            Value::Str("café".to_string())
        );
    }

    #[test]
    fn object_order_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a": }"#,
            "tru",
            "\"unterminated",
            "1 2",
            r#""bad \q escape""#,
            "[1] trailing",
        ] {
            assert!(parse(text).is_err(), "{text:?}");
        }
    }

    #[test]
    fn as_i64_rejects_fractions() {
        assert_eq!(parse("3.5").unwrap().as_i64(), None);
        assert_eq!(parse("3.0").unwrap().as_i64(), Some(3));
    }
}
