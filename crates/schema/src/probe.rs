//! Delimiter and quoting detection over a raw byte sample.
//!
//! The probe is deliberately structural: it never interprets values, only
//! counts candidate delimiters per line *outside quoted regions* and picks
//! the candidate whose nonzero per-line count is most consistent. This is
//! the `probe` third of the `probe → infer → verify` contract — cheap
//! enough to run on a buffered prefix of a stream before the real
//! ingestion starts.

use crate::error::{Error, Result};

/// Delimiters the probe considers, in preference order for ties.
pub const CANDIDATE_DELIMITERS: [u8; 4] = [b',', b';', b'\t', b'|'];

/// How many bytes of input the convenience helpers sample.
pub const SAMPLE_BYTES: usize = 256 * 1024;

/// What the structural probe concluded about a CSV-shaped input.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeReport {
    /// The winning field delimiter.
    pub delimiter: u8,
    /// Fields per record implied by the winning delimiter (count + 1).
    pub n_fields: usize,
    /// Complete lines examined (an unterminated trailing line is ignored
    /// when the sample was cut mid-record).
    pub lines_sampled: usize,
    /// Lines whose field count matched the majority, as a fraction. 1.0 is
    /// a perfectly regular file.
    pub consistency: f64,
    /// True when any RFC-4180 quoted field was seen in the sample.
    pub quoted: bool,
}

impl ProbeReport {
    /// The delimiter as a printable name (`","`, `";"`, `"\t"`, `"|"`).
    #[must_use]
    pub fn delimiter_name(&self) -> String {
        match self.delimiter {
            b'\t' => "\\t".to_string(),
            d => char::from(d).to_string(),
        }
    }
}

/// Counts `delim` occurrences outside quoted regions per line; returns the
/// per-line counts and whether a quote was ever opened.
fn count_per_line(sample: &[u8], delim: u8, complete_only: bool) -> (Vec<usize>, bool) {
    let mut counts = Vec::new();
    let mut current = 0usize;
    let mut in_quotes = false;
    let mut saw_quote = false;
    let mut line_terminated = true;
    for &b in sample {
        line_terminated = false;
        if in_quotes {
            if b == b'"' {
                // Doubled quotes stay inside the region; a lone quote
                // closes it. The distinction does not matter for counting.
                in_quotes = false;
            }
            continue;
        }
        match b {
            b'"' => {
                in_quotes = true;
                saw_quote = true;
            }
            b'\n' => {
                counts.push(current);
                current = 0;
                line_terminated = true;
            }
            b'\r' => {}
            _ if b == delim => current += 1,
            _ => {}
        }
    }
    // A trailing unterminated line is only trustworthy when the sample is
    // the whole input; mid-stream cuts would skew the vote.
    if !line_terminated && !complete_only {
        counts.push(current);
    }
    (counts, saw_quote)
}

/// Probes `sample` for the field delimiter. `truncated` says the sample
/// was cut from a longer stream (the final partial line is then ignored).
///
/// The winner maximizes, in order: the number of lines agreeing on a
/// nonzero count, the agreed count itself, and candidate preference order.
/// A file with no delimiter at all (single-column CSV) falls back to `,`.
///
/// # Errors
/// [`Error::Unprobeable`] when the sample holds no complete line.
pub fn probe_bytes(sample: &[u8], truncated: bool) -> Result<ProbeReport> {
    let mut best: Option<(usize, usize, u8, usize, bool)> = None;
    let mut lines_sampled = 0usize;
    for &delim in &CANDIDATE_DELIMITERS {
        let (counts, quoted) = count_per_line(sample, delim, truncated);
        if counts.is_empty() {
            continue;
        }
        lines_sampled = counts.len();
        // Majority vote over nonzero per-line counts.
        let mut tally: Vec<(usize, usize)> = Vec::new();
        for &c in &counts {
            if c == 0 {
                continue;
            }
            match tally.iter_mut().find(|(count, _)| *count == c) {
                Some((_, votes)) => *votes += 1,
                None => tally.push((c, 1)),
            }
        }
        let Some(&(count, votes)) = tally.iter().max_by_key(|&&(c, v)| (v, c)) else {
            continue;
        };
        let better = match best {
            None => true,
            Some((best_votes, best_count, ..)) => {
                votes > best_votes || (votes == best_votes && count > best_count)
            }
        };
        if better {
            best = Some((votes, count, delim, counts.len(), quoted));
        }
    }
    if lines_sampled == 0 {
        // No candidate produced a line count: empty sample or one partial
        // line. Distinguish truly empty from "all bytes, no newline".
        return Err(Error::Unprobeable(if sample.is_empty() {
            "empty input".into()
        } else {
            "no complete line in sample".into()
        }));
    }
    match best {
        Some((votes, count, delim, lines, quoted)) => Ok(ProbeReport {
            delimiter: delim,
            n_fields: count + 1,
            lines_sampled: lines,
            consistency: votes as f64 / lines as f64,
            quoted,
        }),
        None => {
            // Every line had zero of every candidate: a one-column file.
            let (counts, quoted) = count_per_line(sample, b',', truncated);
            Ok(ProbeReport {
                delimiter: b',',
                n_fields: 1,
                lines_sampled: counts.len(),
                consistency: 1.0,
                quoted,
            })
        }
    }
}

/// Reads up to [`SAMPLE_BYTES`] from `reader` and returns the sample
/// buffer; pair with [`probe_bytes`] and `std::io::Read::chain` to probe a
/// stream and then ingest it without rewinding.
///
/// # Errors
/// I/O errors from the reader.
pub fn read_sample<R: std::io::Read>(reader: &mut R) -> Result<Vec<u8>> {
    let mut sample = vec![0u8; SAMPLE_BYTES];
    let mut filled = 0usize;
    while filled < sample.len() {
        match reader.read(&mut sample[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    sample.truncate(filled);
    Ok(sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comma_file() {
        let r = probe_bytes(b"a,b,c\n1,2,3\n4,5,6\n", false).unwrap();
        assert_eq!(r.delimiter, b',');
        assert_eq!(r.n_fields, 3);
        assert_eq!(r.lines_sampled, 3);
        assert!((r.consistency - 1.0).abs() < 1e-12);
        assert!(!r.quoted);
    }

    #[test]
    fn semicolon_beats_comma_inside_values() {
        // Commas appear, but inconsistently; semicolons are the structure.
        let r = probe_bytes(b"name;note\nstone;a,b\nreyser;c\nramos;d,e,f\n", false).unwrap();
        assert_eq!(r.delimiter, b';');
        assert_eq!(r.n_fields, 2);
    }

    #[test]
    fn tab_and_pipe() {
        assert_eq!(
            probe_bytes(b"a\tb\n1\t2\n", false).unwrap().delimiter,
            b'\t'
        );
        assert_eq!(probe_bytes(b"a|b\n1|2\n", false).unwrap().delimiter, b'|');
    }

    #[test]
    fn quoted_delimiters_do_not_count() {
        let r = probe_bytes(b"a,b\n\"x,y,z\",2\n\"p,q\",4\n", false).unwrap();
        assert_eq!(r.delimiter, b',');
        assert_eq!(r.n_fields, 2);
        assert!(r.quoted);
    }

    #[test]
    fn single_column_falls_back_to_comma() {
        let r = probe_bytes(b"id\n1\n2\n", false).unwrap();
        assert_eq!(r.delimiter, b',');
        assert_eq!(r.n_fields, 1);
        assert!((r.consistency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_sample_ignores_partial_tail() {
        // The tail `4,5` is a cut record; it must not dilute the vote.
        let full = probe_bytes(b"a;b\n1;2\n4,5", false).unwrap();
        let cut = probe_bytes(b"a;b\n1;2\n4,5", true).unwrap();
        assert_eq!(cut.delimiter, b';');
        assert_eq!(cut.lines_sampled, 2);
        // Untruncated, the trailing line still counts as a line.
        assert_eq!(full.lines_sampled, 3);
    }

    #[test]
    fn unprobeable_inputs() {
        assert!(matches!(
            probe_bytes(b"", false),
            Err(Error::Unprobeable(_))
        ));
        assert!(matches!(
            probe_bytes(b"no newline at all", true),
            Err(Error::Unprobeable(_))
        ));
        // A single complete line is enough.
        assert!(probe_bytes(b"a,b\n", true).is_ok());
    }

    #[test]
    fn consistency_reflects_ragged_lines() {
        let r = probe_bytes(b"a,b\n1,2\n3,4,5\n6,7\n", false).unwrap();
        assert_eq!(r.delimiter, b',');
        assert_eq!(r.n_fields, 2);
        assert!(r.consistency < 1.0);
    }

    #[test]
    fn delimiter_names() {
        for (d, name) in [(b',', ","), (b';', ";"), (b'\t', "\\t"), (b'|', "|")] {
            let r = ProbeReport {
                delimiter: d,
                n_fields: 2,
                lines_sampled: 1,
                consistency: 1.0,
                quoted: false,
            };
            assert_eq!(r.delimiter_name(), name);
        }
    }

    #[test]
    fn read_sample_caps_and_chains() {
        let data = vec![b'x'; SAMPLE_BYTES + 100];
        let mut cursor = std::io::Cursor::new(data.clone());
        let sample = read_sample(&mut cursor).unwrap();
        assert_eq!(sample.len(), SAMPLE_BYTES);
        // The remainder is still readable from the source.
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut cursor, &mut rest).unwrap();
        assert_eq!(rest.len(), 100);
    }
}
