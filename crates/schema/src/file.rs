//! The versioned `.schema` file: render, parse, snapshot hash, verify.
//!
//! A `.schema` file is the persisted contract between an `infer` run and
//! later `verify` runs. It is deliberately line-oriented plain text — diff
//! friendly, hand-inspectable — with an FNV-1a snapshot hash over the body
//! so both hand edits and upstream data drift are detectable:
//!
//! ```text
//! kanon-schema v2
//! hash 53a3c1f1e2b4d596
//! delimiter ;
//! rows-sampled 500
//! ragged-rows 2
//! column int null-rate=0.0200 distinct=63 uniqueness=0.1286 entropy=3.8812 max-len=3 range=18..97 name=age
//! column categorical null-rate=0.0000 distinct=3 uniqueness=0.0060 entropy=1.0571 max-len=6 name=race
//! ```
//!
//! The `name=` field is always last so column names may contain spaces,
//! `=`, or any other printable byte except a newline.

use std::fmt::Write as _;

use crate::error::{Error, Result};
use crate::infer::{ColumnProfile, ColumnType, InferredSchema};

/// Current file-format version; bump on any incompatible layout change.
/// v2 added the per-column `entropy=` stat (sensitive-column screening).
pub const FORMAT_VERSION: u32 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A parsed `.schema` file: the schema plus its stored snapshot hash.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemaFile {
    /// The schema the file describes.
    pub schema: InferredSchema,
    /// The body hash stored in (and verified against) the file.
    pub hash: u64,
}

/// The canonical body — everything except the `hash` line — that the
/// snapshot hash covers. Rates are rounded to four decimals here, so the
/// hash is stable across re-renders of the same data.
fn render_body(schema: &InferredSchema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kanon-schema v{FORMAT_VERSION}");
    let delim = match schema.delimiter {
        b'\t' => "\\t".to_string(),
        d => char::from(d).to_string(),
    };
    let _ = writeln!(out, "delimiter {delim}");
    let _ = writeln!(out, "rows-sampled {}", schema.rows_sampled);
    let _ = writeln!(out, "ragged-rows {}", schema.ragged_rows);
    for c in &schema.columns {
        let _ = write!(
            out,
            "column {} null-rate={:.4} distinct={} uniqueness={:.4} entropy={:.4} max-len={}",
            c.ctype.name(),
            c.null_rate,
            c.distinct,
            c.uniqueness,
            c.entropy,
            c.max_len
        );
        if let (Some(lo), Some(hi)) = (c.min_int, c.max_int) {
            let _ = write!(out, " range={lo}..{hi}");
        }
        let _ = writeln!(out, " name={}", c.name);
    }
    out
}

/// The snapshot hash of a schema (the hash its `.schema` file carries).
#[must_use]
pub fn snapshot_hash(schema: &InferredSchema) -> u64 {
    fnv1a(render_body(schema).as_bytes())
}

/// Renders the complete `.schema` file text, hash line included.
#[must_use]
pub fn render(schema: &InferredSchema) -> String {
    let body = render_body(schema);
    let hash = fnv1a(body.as_bytes());
    let mut lines = body.splitn(2, '\n');
    let version_line = lines.next().unwrap_or("");
    let rest = lines.next().unwrap_or("");
    format!("{version_line}\nhash {hash:016x}\n{rest}")
}

fn bad(line: usize, message: impl Into<String>) -> Error {
    Error::BadSchemaFile {
        line,
        message: message.into(),
    }
}

fn parse_stat<T: std::str::FromStr>(token: &str, key: &str, line: usize) -> Result<T> {
    let value = token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| bad(line, format!("expected `{key}=...`, found `{token}`")))?;
    value
        .parse()
        .map_err(|_| bad(line, format!("bad value for `{key}`: `{value}`")))
}

/// Parses `.schema` text, validating the version and the stored hash
/// against the recomputed body hash (a mismatch means the file was
/// hand-edited after `infer` wrote it).
///
/// # Errors
/// [`Error::BadSchemaFile`] naming the offending line.
pub fn parse(text: &str) -> Result<SchemaFile> {
    let mut lines = text.lines().enumerate();
    let (_, version_line) = lines.next().ok_or_else(|| bad(0, "empty file"))?;
    let version: u32 = version_line
        .strip_prefix("kanon-schema v")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(1, "first line must be `kanon-schema v<N>`"))?;
    if version != FORMAT_VERSION {
        return Err(bad(
            1,
            format!("unsupported version {version} (this build reads v{FORMAT_VERSION})"),
        ));
    }
    let (_, hash_line) = lines.next().ok_or_else(|| bad(0, "missing hash line"))?;
    let stored_hash = hash_line
        .strip_prefix("hash ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| bad(2, "second line must be `hash <16 hex digits>`"))?;

    let mut delimiter: Option<u8> = None;
    let mut rows_sampled: Option<usize> = None;
    let mut ragged_rows: Option<usize> = None;
    let mut columns: Vec<ColumnProfile> = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("delimiter ") {
            delimiter = Some(match rest {
                "\\t" => b'\t',
                s if s.len() == 1 && s.is_ascii() => s.as_bytes()[0],
                s => return Err(bad(lineno, format!("bad delimiter `{s}`"))),
            });
        } else if let Some(rest) = line.strip_prefix("rows-sampled ") {
            rows_sampled = Some(
                rest.parse()
                    .map_err(|_| bad(lineno, "bad rows-sampled count"))?,
            );
        } else if let Some(rest) = line.strip_prefix("ragged-rows ") {
            ragged_rows = Some(
                rest.parse()
                    .map_err(|_| bad(lineno, "bad ragged-rows count"))?,
            );
        } else if let Some(rest) = line.strip_prefix("column ") {
            // `name=` is last and may contain anything, so split it off
            // before tokenizing the stats.
            let (stats, name) = rest
                .split_once(" name=")
                .ok_or_else(|| bad(lineno, "column line missing `name=`"))?;
            let mut tokens = stats.split_whitespace();
            let ctype = tokens
                .next()
                .and_then(ColumnType::from_name)
                .ok_or_else(|| bad(lineno, "unknown column type"))?;
            let mut tok = |key: &str| -> Result<String> {
                tokens
                    .next()
                    .map(str::to_string)
                    .ok_or_else(|| bad(lineno, format!("missing `{key}=`")))
            };
            let null_rate: f64 = parse_stat(&tok("null-rate")?, "null-rate", lineno)?;
            let distinct: usize = parse_stat(&tok("distinct")?, "distinct", lineno)?;
            let uniqueness: f64 = parse_stat(&tok("uniqueness")?, "uniqueness", lineno)?;
            let entropy: f64 = parse_stat(&tok("entropy")?, "entropy", lineno)?;
            let max_len: usize = parse_stat(&tok("max-len")?, "max-len", lineno)?;
            let (min_int, max_int) = match tokens.next() {
                None => (None, None),
                Some(t) => {
                    let range: String = parse_stat(t, "range", lineno)?;
                    let (lo, hi) = range
                        .split_once("..")
                        .ok_or_else(|| bad(lineno, "bad range (want lo..hi)"))?;
                    (
                        Some(lo.parse().map_err(|_| bad(lineno, "bad range lo"))?),
                        Some(hi.parse().map_err(|_| bad(lineno, "bad range hi"))?),
                    )
                }
            };
            columns.push(ColumnProfile {
                name: name.to_string(),
                ctype,
                null_rate,
                distinct,
                uniqueness,
                entropy,
                max_len,
                min_int,
                max_int,
            });
        } else {
            return Err(bad(lineno, format!("unrecognized line `{line}`")));
        }
    }
    let schema = InferredSchema {
        delimiter: delimiter.ok_or_else(|| bad(0, "missing `delimiter` line"))?,
        rows_sampled: rows_sampled.ok_or_else(|| bad(0, "missing `rows-sampled` line"))?,
        ragged_rows: ragged_rows.ok_or_else(|| bad(0, "missing `ragged-rows` line"))?,
        columns,
    };
    if schema.columns.is_empty() {
        return Err(bad(0, "no `column` lines"));
    }
    let recomputed = snapshot_hash(&schema);
    if recomputed != stored_hash {
        return Err(bad(
            2,
            format!("snapshot hash mismatch: stored {stored_hash:016x}, body {recomputed:016x}"),
        ));
    }
    Ok(SchemaFile {
        schema,
        hash: stored_hash,
    })
}

/// What `verify` concluded when the structure still matches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyReport {
    /// Snapshot hashes are identical: the data is byte-for-byte the same
    /// shape the schema was inferred from.
    Exact,
    /// Same structure (columns, types, delimiter) but statistics moved;
    /// each entry describes one change. New data arriving is the benign
    /// cause; worth a look, not an error.
    StatsChanged(Vec<String>),
}

/// Tolerances under which a stat movement is not even worth reporting.
const NULL_RATE_TOLERANCE: f64 = 0.02;
const UNIQUENESS_TOLERANCE: f64 = 0.05;

/// Compares a stored schema against a freshly inferred one.
///
/// Structural mismatches — delimiter, column count, names, or voted types
/// — are *drift* and fail; statistical movement within the same structure
/// is reported but passes.
///
/// # Errors
/// [`Error::Drift`] listing every structural mismatch.
pub fn verify(stored: &InferredSchema, current: &InferredSchema) -> Result<VerifyReport> {
    let mut drift: Vec<String> = Vec::new();
    if stored.delimiter != current.delimiter {
        drift.push(format!(
            "delimiter was `{}`, now `{}`",
            char::from(stored.delimiter),
            char::from(current.delimiter)
        ));
    }
    if stored.columns.len() != current.columns.len() {
        drift.push(format!(
            "column count was {}, now {}",
            stored.columns.len(),
            current.columns.len()
        ));
    }
    for (s, c) in stored.columns.iter().zip(&current.columns) {
        if s.name != c.name {
            drift.push(format!("column `{}` is now named `{}`", s.name, c.name));
            continue;
        }
        if s.ctype != c.ctype {
            drift.push(format!(
                "column `{}` was {}, now {}",
                s.name,
                s.ctype.name(),
                c.ctype.name()
            ));
        }
    }
    if !drift.is_empty() {
        return Err(Error::Drift(drift));
    }
    if snapshot_hash(stored) == snapshot_hash(current) {
        return Ok(VerifyReport::Exact);
    }
    let mut changes: Vec<String> = Vec::new();
    if stored.rows_sampled != current.rows_sampled {
        changes.push(format!(
            "rows sampled: {} → {}",
            stored.rows_sampled, current.rows_sampled
        ));
    }
    for (s, c) in stored.columns.iter().zip(&current.columns) {
        if (s.null_rate - c.null_rate).abs() > NULL_RATE_TOLERANCE {
            changes.push(format!(
                "column `{}` null rate: {:.4} → {:.4}",
                s.name, s.null_rate, c.null_rate
            ));
        }
        if (s.uniqueness - c.uniqueness).abs() > UNIQUENESS_TOLERANCE {
            changes.push(format!(
                "column `{}` uniqueness: {:.4} → {:.4}",
                s.name, s.uniqueness, c.uniqueness
            ));
        }
        if s.distinct != c.distinct {
            changes.push(format!(
                "column `{}` distinct values: {} → {}",
                s.name, s.distinct, c.distinct
            ));
        }
    }
    Ok(VerifyReport::StatsChanged(changes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_bytes;

    const MESSY: &[u8] =
        b"age;race;note\n34;Cauc;alpha\n47;Hisp;beta\nN/A;Cauc;gamma\n22;Hisp;delta\n";

    fn sample() -> InferredSchema {
        infer_bytes(MESSY, false, usize::MAX).unwrap()
    }

    #[test]
    fn render_parse_round_trip() {
        let schema = sample();
        let text = render(&schema);
        assert!(text.starts_with("kanon-schema v2\nhash "));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.hash, snapshot_hash(&schema));
        assert_eq!(parsed.schema.delimiter, b';');
        assert_eq!(parsed.schema.columns.len(), 3);
        assert_eq!(parsed.schema.column("age").unwrap().ctype, ColumnType::Int);
        assert_eq!(parsed.schema.column("age").unwrap().min_int, Some(22));
        // Re-rendering the parsed schema reproduces the identical file.
        assert_eq!(render(&parsed.schema), text);
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let h1 = snapshot_hash(&sample());
        let h2 = snapshot_hash(&sample());
        assert_eq!(h1, h2);
        let mut other = sample();
        other.columns[0].distinct += 1;
        assert_ne!(h1, snapshot_hash(&other));
    }

    #[test]
    fn hand_edit_detected() {
        let text = render(&sample());
        let tampered = text.replace("rows-sampled 4", "rows-sampled 40");
        let err = parse(&tampered).unwrap_err();
        assert!(matches!(err, Error::BadSchemaFile { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("hash mismatch"));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(matches!(parse(""), Err(Error::BadSchemaFile { .. })));
        assert!(matches!(
            parse("kanon-schema v9\nhash 0000000000000000\n"),
            Err(Error::BadSchemaFile { line: 1, .. })
        ));
        assert!(matches!(
            parse("kanon-schema v2\nnot-a-hash\n"),
            Err(Error::BadSchemaFile { line: 2, .. })
        ));
        // Previous-version files are rejected with a version message, not a
        // confusing parse failure further down.
        let err = parse("kanon-schema v1\nhash 0000000000000000\n").unwrap_err();
        assert!(err.to_string().contains("unsupported version 1"), "{err}");
        let bad_col = "kanon-schema v2\nhash 0000000000000000\ndelimiter ,\nrows-sampled 1\nragged-rows 0\ncolumn wat name=x\n";
        assert!(matches!(
            parse(bad_col),
            Err(Error::BadSchemaFile { line: 6, .. })
        ));
    }

    #[test]
    fn names_with_spaces_and_equals_survive() {
        let mut schema = sample();
        schema.columns[2].name = "note = free text".to_string();
        let parsed = parse(&render(&schema)).unwrap();
        assert_eq!(parsed.schema.columns[2].name, "note = free text");
    }

    #[test]
    fn verify_exact_and_stats() {
        let schema = sample();
        assert_eq!(verify(&schema, &schema).unwrap(), VerifyReport::Exact);
        // New rows shift stats but not structure.
        let grown = infer_bytes(
            b"age;race;note\n34;Cauc;alpha\n47;Hisp;beta\nN/A;Cauc;gamma\n22;Hisp;delta\n51;Cauc;epsilon\n60;Hisp;zeta\n",
            false,
            usize::MAX,
        )
        .unwrap();
        match verify(&schema, &grown).unwrap() {
            VerifyReport::StatsChanged(changes) => assert!(!changes.is_empty()),
            VerifyReport::Exact => panic!("stats should have moved"),
        }
    }

    #[test]
    fn verify_drift_on_structure() {
        let schema = sample();
        // Type flip: age becomes text.
        let flipped = infer_bytes(
            b"age;race;note\nxx;Cauc;alpha\nyy;Hisp;beta\nzz;Cauc;gamma\nqq;Hisp;delta\n",
            false,
            usize::MAX,
        )
        .unwrap();
        let err = verify(&schema, &flipped).unwrap_err();
        match &err {
            Error::Drift(ms) => {
                assert!(ms.iter().any(|m| m.contains("`age`")), "{ms:?}");
            }
            other => panic!("want Drift, got {other:?}"),
        }
        // Renamed column.
        let renamed = infer_bytes(
            b"years;race;note\n34;Cauc;a\n47;Hisp;b\n22;Cauc;c\n",
            false,
            usize::MAX,
        )
        .unwrap();
        assert!(matches!(verify(&schema, &renamed), Err(Error::Drift(_))));
        // Different delimiter.
        let comma = infer_bytes(
            b"age,race,note\n34,Cauc,a\n47,Hisp,b\n22,Cauc,c\n",
            false,
            usize::MAX,
        )
        .unwrap();
        assert!(matches!(verify(&schema, &comma), Err(Error::Drift(_))));
    }
}
