//! Per-column type voting and statistics over a streaming sample.
//!
//! The `infer` third of the contract: given the probe's delimiter, read a
//! bounded sample of records and vote each column into one of five types
//! (int / float / date-like / categorical / free-text), tracking null
//! rate, cardinality, and uniqueness along the way. The vote tolerates
//! mess — a numeric column with a few `N/A` cells is still numeric — which
//! is exactly what makes the derived hierarchies (see [`crate::derive`])
//! usable on real files.

use std::collections::HashMap;

use kanon_relation::csv::Reader;

use crate::error::{Error, Result};
use crate::probe::{probe_bytes, read_sample, ProbeReport, SAMPLE_BYTES};

/// A value must win this fraction of non-null votes for a numeric/date
/// verdict; below it the column falls back to categorical or text.
const VOTE_THRESHOLD: f64 = 0.9;

/// Distinct-value tracking stops growing past this many entries; the
/// column is clearly not categorical by then and exact cardinality stops
/// mattering.
const DISTINCT_CAP: usize = 100_000;

/// Default number of data records the convenience entry points sample.
pub const DEFAULT_SAMPLE_ROWS: usize = 10_000;

/// Strings treated as null/missing markers (case-insensitive, trimmed).
pub const NULL_MARKERS: [&str; 7] = ["", "na", "n/a", "null", "none", "-", "?"];

/// Whether `raw` is a null/missing marker.
#[must_use]
pub fn is_null(raw: &str) -> bool {
    let t = raw.trim();
    t.is_empty() || NULL_MARKERS.iter().any(|m| t.eq_ignore_ascii_case(m))
}

/// The five-way type verdict for a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// ≥ 90% of non-null values parse as `i64`.
    Int,
    /// ≥ 90% parse as `f64` (with at least one non-integer).
    Float,
    /// ≥ 90% look like dates (three numeric groups split by `-` or `/`,
    /// one group of four digits).
    Date,
    /// Few distinct values relative to the sample (an enum-like column).
    Categorical,
    /// Everything else.
    Text,
}

impl ColumnType {
    /// The `.schema`-file keyword for this type.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Date => "date",
            ColumnType::Categorical => "categorical",
            ColumnType::Text => "text",
        }
    }

    /// Inverse of [`ColumnType::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "int" => ColumnType::Int,
            "float" => ColumnType::Float,
            "date" => ColumnType::Date,
            "categorical" => ColumnType::Categorical,
            "text" => ColumnType::Text,
            _ => return None,
        })
    }
}

/// Whether `t` (already trimmed) looks like a date: three numeric groups
/// separated by `-` or `/`, exactly one of four digits (the year).
fn is_date_like(t: &str) -> bool {
    let sep = if t.contains('-') {
        '-'
    } else if t.contains('/') {
        '/'
    } else {
        return false;
    };
    let parts: Vec<&str> = t.split(sep).collect();
    if parts.len() != 3 {
        return false;
    }
    if !parts
        .iter()
        .all(|p| !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()))
    {
        return false;
    }
    let four_digit = parts.iter().filter(|p| p.len() == 4).count();
    let short = parts.iter().filter(|p| (1..=2).contains(&p.len())).count();
    four_digit == 1 && short == 2
}

/// What inference concluded about one column.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnProfile {
    /// Header name.
    pub name: String,
    /// Voted type.
    pub ctype: ColumnType,
    /// Fraction of sampled cells that were null markers.
    pub null_rate: f64,
    /// Distinct non-null values seen (saturates at an internal cap).
    pub distinct: usize,
    /// `distinct / non-null cells` ∈ [0, 1]; 1.0 means every value unique.
    pub uniqueness: f64,
    /// Shannon entropy of the non-null value distribution, in nats
    /// (computed over the tracked values; saturates with the distinct
    /// cap). `exp(entropy)` is the column's *effective diversity* — the
    /// largest entropy-l-diversity target any release of it could meet.
    pub entropy: f64,
    /// Longest non-null value, in characters.
    pub max_len: usize,
    /// Minimum integer seen (Int columns; junk cells excluded).
    pub min_int: Option<i64>,
    /// Maximum integer seen (Int columns).
    pub max_int: Option<i64>,
}

impl ColumnProfile {
    /// Quasi-identifier score: high-uniqueness, low-null columns rank
    /// first, per the re-identification risk they carry.
    #[must_use]
    pub fn quasi_score(&self) -> f64 {
        self.uniqueness * (1.0 - self.null_rate)
    }

    /// Effective diversity `exp(entropy)`: the ceiling on any entropy-l
    /// target a release keyed elsewhere could hold this column to.
    #[must_use]
    pub fn effective_l(&self) -> f64 {
        self.entropy.exp()
    }
}

/// A column that could serve as the *sensitive* attribute of an
/// l-diverse / t-close release, with the stats that bound the achievable
/// constraint.
#[derive(Clone, Debug, PartialEq)]
pub struct SensitiveCandidate {
    /// Column name.
    pub name: String,
    /// Distinct values — the hard ceiling on distinct l-diversity.
    pub max_distinct_l: usize,
    /// Shannon entropy (nats) of the value distribution.
    pub entropy: f64,
    /// `exp(entropy)` — the ceiling on entropy l-diversity.
    pub effective_l: f64,
}

/// The full inference result: delimiter, per-column profiles, sample size.
#[derive(Clone, Debug, PartialEq)]
pub struct InferredSchema {
    /// Detected field delimiter.
    pub delimiter: u8,
    /// Data records examined.
    pub rows_sampled: usize,
    /// Records whose field count disagreed with the header (missing fields
    /// were treated as null, extras ignored).
    pub ragged_rows: usize,
    /// One profile per header column, in header order.
    pub columns: Vec<ColumnProfile>,
}

impl InferredSchema {
    /// Looks up a column profile by name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Column names ranked by [`ColumnProfile::quasi_score`], best first;
    /// zero-score columns (all-null) are omitted. This is the suggestion
    /// the pipeline uses when no `--quasi` list is given.
    #[must_use]
    pub fn quasi_suggestion(&self) -> Vec<String> {
        let mut ranked: Vec<&ColumnProfile> = self
            .columns
            .iter()
            .filter(|c| c.quasi_score() > 0.0)
            .collect();
        ranked.sort_by(|a, b| {
            b.quasi_score()
                .partial_cmp(&a.quasi_score())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        ranked.into_iter().map(|c| c.name.clone()).collect()
    }

    /// Screens columns for *sensitive-attribute* duty: low-uniqueness
    /// repeating columns (categorical or enum-like) whose value
    /// distribution could support an l-diversity constraint at all
    /// (≥ 2 distinct values). Ranked by effective diversity, best first —
    /// the complement of [`InferredSchema::quasi_suggestion`], which ranks
    /// columns by how strongly they *key* a release.
    #[must_use]
    pub fn sensitive_screening(&self) -> Vec<SensitiveCandidate> {
        let mut found: Vec<SensitiveCandidate> = self
            .columns
            .iter()
            .filter(|c| c.distinct >= 2 && c.uniqueness <= 0.5 && c.null_rate < 1.0)
            .map(|c| SensitiveCandidate {
                name: c.name.clone(),
                max_distinct_l: c.distinct,
                entropy: c.entropy,
                effective_l: c.effective_l(),
            })
            .collect();
        found.sort_by(|a, b| {
            b.effective_l
                .partial_cmp(&a.effective_l)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        found
    }
}

/// Per-column accumulator for one inference pass.
struct Accumulator {
    cells: usize,
    nulls: usize,
    ints: usize,
    floats: usize,
    dates: usize,
    /// Value → occurrence count; key growth stops at the distinct cap but
    /// already-tracked values keep counting so entropy stays meaningful.
    distinct: HashMap<String, usize>,
    max_len: usize,
    min_int: Option<i64>,
    max_int: Option<i64>,
}

impl Accumulator {
    fn new() -> Self {
        Accumulator {
            cells: 0,
            nulls: 0,
            ints: 0,
            floats: 0,
            dates: 0,
            distinct: HashMap::new(),
            max_len: 0,
            min_int: None,
            max_int: None,
        }
    }

    fn observe(&mut self, raw: &str) {
        self.cells += 1;
        if is_null(raw) {
            self.nulls += 1;
            return;
        }
        let t = raw.trim();
        self.max_len = self.max_len.max(t.chars().count());
        if self.distinct.len() < DISTINCT_CAP {
            *self.distinct.entry(t.to_string()).or_insert(0) += 1;
        } else if let Some(count) = self.distinct.get_mut(t) {
            *count += 1;
        }
        if let Ok(v) = t.parse::<i64>() {
            self.ints += 1;
            self.min_int = Some(self.min_int.map_or(v, |m| m.min(v)));
            self.max_int = Some(self.max_int.map_or(v, |m| m.max(v)));
        } else if t.parse::<f64>().is_ok() {
            self.floats += 1;
        } else if is_date_like(t) {
            self.dates += 1;
        }
    }

    fn finish(self, name: String) -> ColumnProfile {
        let non_null = self.cells - self.nulls;
        let frac = |c: usize| {
            if non_null == 0 {
                0.0
            } else {
                c as f64 / non_null as f64
            }
        };
        // Categorical threshold: an enum-like column repeats values many
        // times; scale with sample size so tiny samples don't call
        // everything categorical.
        let categorical_max = 12.max(non_null / 20);
        let ctype = if non_null == 0 {
            ColumnType::Text
        } else if frac(self.dates) >= VOTE_THRESHOLD {
            ColumnType::Date
        } else if frac(self.ints) >= VOTE_THRESHOLD {
            ColumnType::Int
        } else if frac(self.ints + self.floats) >= VOTE_THRESHOLD {
            ColumnType::Float
        } else if self.distinct.len() <= categorical_max && frac(self.distinct.len()) <= 0.5 {
            // Enum-like: few distinct values, each repeating — a column of
            // all-distinct strings is text no matter how small the sample.
            ColumnType::Categorical
        } else {
            ColumnType::Text
        };
        let keep_range = ctype == ColumnType::Int;
        let tracked: usize = self.distinct.values().sum();
        let entropy = if tracked == 0 {
            0.0
        } else {
            -self
                .distinct
                .values()
                .map(|&c| {
                    let p = c as f64 / tracked as f64;
                    p * p.ln()
                })
                .sum::<f64>()
        };
        ColumnProfile {
            name,
            ctype,
            null_rate: if self.cells == 0 {
                0.0
            } else {
                self.nulls as f64 / self.cells as f64
            },
            distinct: self.distinct.len(),
            uniqueness: frac(self.distinct.len()),
            entropy: entropy.max(0.0),
            max_len: self.max_len,
            min_int: if keep_range { self.min_int } else { None },
            max_int: if keep_range { self.max_int } else { None },
        }
    }
}

/// Infers a schema from a byte sample. `truncated` marks a sample cut from
/// a longer stream: the trailing partial record is then dropped rather
/// than counted, and a syntax error at the very end is forgiven.
///
/// # Errors
/// [`Error::Unprobeable`] when no delimiter can be established or the
/// header is missing; [`Error::Relation`] on CSV syntax errors in an
/// untruncated sample.
pub fn infer_bytes(sample: &[u8], truncated: bool, max_rows: usize) -> Result<InferredSchema> {
    let probe = probe_bytes(sample, truncated)?;
    infer_with_probe(sample, truncated, max_rows, &probe)
}

/// As [`infer_bytes`] with an already-computed probe (avoids re-probing
/// when the caller wants both reports).
///
/// # Errors
/// As [`infer_bytes`].
pub fn infer_with_probe(
    sample: &[u8],
    truncated: bool,
    max_rows: usize,
    probe: &ProbeReport,
) -> Result<InferredSchema> {
    let mut reader = Reader::with_delimiter(sample, probe.delimiter);
    let header = match reader.read_record() {
        Ok(Some(rec)) => rec.fields,
        Ok(None) => return Err(Error::Unprobeable("no header record".into())),
        Err(e) => return Err(e.into()),
    };
    if header.iter().all(|h| h.trim().is_empty()) {
        return Err(Error::Unprobeable("header record is all-blank".into()));
    }
    let mut accs: Vec<Accumulator> = header.iter().map(|_| Accumulator::new()).collect();
    let mut rows = 0usize;
    let mut ragged = 0usize;
    // Records buffered one step behind, so a truncated sample's final
    // (possibly cut) record can be discarded instead of skewing stats.
    let mut pending: Option<Vec<String>> = None;
    loop {
        if rows >= max_rows {
            pending = None;
            break;
        }
        let fields = match reader.read_record() {
            Ok(Some(rec)) => rec.fields,
            Ok(None) => break,
            Err(e) => {
                if truncated {
                    // A cut quoted field at the end of the sample; drop the
                    // pending record too — it may be the one that was cut.
                    pending = None;
                    break;
                }
                return Err(e.into());
            }
        };
        if let Some(prev) = pending.take() {
            rows += 1;
            if prev.len() != header.len() {
                ragged += 1;
            }
            for (j, acc) in accs.iter_mut().enumerate() {
                acc.observe(prev.get(j).map_or("", String::as_str));
            }
        }
        pending = Some(fields);
    }
    // An untruncated sample's last record is complete and counts.
    if let Some(prev) = pending {
        if !truncated && rows < max_rows {
            rows += 1;
            if prev.len() != header.len() {
                ragged += 1;
            }
            for (j, acc) in accs.iter_mut().enumerate() {
                acc.observe(prev.get(j).map_or("", String::as_str));
            }
        }
    }
    if rows == 0 {
        return Err(Error::Unprobeable("no data records in sample".into()));
    }
    let columns = accs
        .into_iter()
        .zip(header)
        .map(|(acc, name)| acc.finish(name.trim().to_string()))
        .collect();
    Ok(InferredSchema {
        delimiter: probe.delimiter,
        rows_sampled: rows,
        ragged_rows: ragged,
        columns,
    })
}

/// Probes and infers from any reader, sampling up to
/// [`crate::probe::SAMPLE_BYTES`] bytes and [`DEFAULT_SAMPLE_ROWS`] rows.
///
/// # Errors
/// As [`infer_bytes`], plus I/O errors from the reader.
pub fn infer_reader<R: std::io::Read>(reader: &mut R) -> Result<InferredSchema> {
    let sample = read_sample(reader)?;
    infer_bytes(&sample, sample.len() == SAMPLE_BYTES, DEFAULT_SAMPLE_ROWS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infer(text: &str) -> InferredSchema {
        infer_bytes(text.as_bytes(), false, usize::MAX).unwrap()
    }

    #[test]
    fn types_vote_cleanly() {
        let s = infer(
            "age,score,born,race,note\n\
             34,1.5,1990-02-03,Cauc,likes long walks\n\
             47,2.25,1985-11-30,Hisp,writes poetry\n\
             22,0.5,2001-01-01,Cauc,collects stamps\n",
        );
        assert_eq!(s.delimiter, b',');
        assert_eq!(s.rows_sampled, 3);
        assert_eq!(s.column("age").unwrap().ctype, ColumnType::Int);
        assert_eq!(s.column("score").unwrap().ctype, ColumnType::Float);
        assert_eq!(s.column("born").unwrap().ctype, ColumnType::Date);
        // Three rows, three distinct notes: unique → text, not categorical.
        assert_eq!(s.column("note").unwrap().ctype, ColumnType::Text);
        assert_eq!(s.column("age").unwrap().min_int, Some(22));
        assert_eq!(s.column("age").unwrap().max_int, Some(47));
    }

    #[test]
    fn nulls_do_not_flip_numeric_columns() {
        // One junk cell out of 12 values stays under the 10% tolerance.
        let mut text = String::from("age\n");
        for i in 0..11 {
            text.push_str(&format!("{}\n", 20 + i));
        }
        text.push_str("N/A\n");
        let s = infer(&text);
        let col = s.column("age").unwrap();
        assert_eq!(col.ctype, ColumnType::Int);
        assert!((col.null_rate - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn categorical_detection() {
        let mut text = String::from("race\n");
        for i in 0..100 {
            text.push_str(["Cauc", "Hisp", "Afr-Am"][i % 3]);
            text.push('\n');
        }
        let s = infer(&text);
        let col = s.column("race").unwrap();
        assert_eq!(col.ctype, ColumnType::Categorical);
        assert_eq!(col.distinct, 3);
        assert!(col.uniqueness < 0.05);
    }

    #[test]
    fn semicolon_and_ragged_rows() {
        let s = infer("a;b;c\n1;2;3\n4;5\n6;7;8;9\n");
        assert_eq!(s.delimiter, b';');
        assert_eq!(s.rows_sampled, 3);
        assert_eq!(s.ragged_rows, 2);
        // Short row's missing cell counts as null for column c.
        let c = s.column("c").unwrap();
        assert!(c.null_rate > 0.0);
    }

    #[test]
    fn quasi_ranking_prefers_unique_low_null() {
        let s = infer(
            "id,race,half\n\
             a1,Cauc,x\n\
             b2,Cauc,NA\n\
             c3,Cauc,y\n\
             d4,Cauc,NA\n",
        );
        let ranked = s.quasi_suggestion();
        assert_eq!(ranked[0], "id"); // uniqueness 1.0, no nulls
        assert_eq!(*ranked.last().unwrap(), "race"); // 1 distinct over 4
        assert!(ranked.contains(&"half".to_string()));
    }

    #[test]
    fn entropy_tracks_value_distribution() {
        // Uniform over 4 values → ln 4; constant column → 0.
        let mut text = String::from("race,flag\n");
        for i in 0..100 {
            text.push_str(["Cauc", "Hisp", "Afr-Am", "Asian"][i % 4]);
            text.push_str(",y\n");
        }
        let s = infer(&text);
        let race = s.column("race").unwrap();
        assert!((race.entropy - 4.0f64.ln()).abs() < 1e-9);
        assert!((race.effective_l() - 4.0).abs() < 1e-9);
        assert_eq!(s.column("flag").unwrap().entropy, 0.0);
    }

    #[test]
    fn skew_lowers_entropy_below_distinct_count() {
        // 97 of one value, 1 each of three others: 4 distinct but nowhere
        // near ln 4 of entropy — distinct-l would overstate the diversity.
        let mut text = String::from("diag\n");
        for _ in 0..97 {
            text.push_str("flu\n");
        }
        text.push_str("gout\nzika\nmmr\n");
        let s = infer(&text);
        let col = s.column("diag").unwrap();
        assert_eq!(col.distinct, 4);
        assert!(col.entropy > 0.0 && col.entropy < 4.0f64.ln() / 2.0);
        assert!(col.effective_l() < 2.0);
    }

    #[test]
    fn sensitive_screening_ranks_repeating_columns() {
        let mut text = String::from("id,race,diag\n");
        for i in 0..100 {
            text.push_str(&format!(
                "u{i},{},{}\n",
                ["Cauc", "Hisp"][i % 2],
                ["flu", "gout", "zika", "mmr"][i % 4]
            ));
        }
        let s = infer(&text);
        let found = s.sensitive_screening();
        let names: Vec<&str> = found.iter().map(|c| c.name.as_str()).collect();
        // id is all-unique — a key, never a sensitive candidate.
        assert!(!names.contains(&"id"));
        // diag (4 uniform values) outranks race (2).
        assert_eq!(names, vec!["diag", "race"]);
        assert_eq!(found[0].max_distinct_l, 4);
        assert!((found[0].effective_l - 4.0).abs() < 1e-9);
        assert!((found[1].effective_l - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_null_column_scores_zero() {
        let s = infer("x,y\n1,NA\n2,\n3,null\n");
        let y = s.column("y").unwrap();
        assert_eq!(y.ctype, ColumnType::Text);
        assert_eq!(y.quasi_score(), 0.0);
        assert!(!s.quasi_suggestion().contains(&"y".to_string()));
    }

    #[test]
    fn truncated_sample_drops_cut_tail() {
        // Sample cut mid-record: `47,Hi` must not contribute.
        let s = infer_bytes(b"age,race\n34,Cauc\n22,Hisp\n47,Hi", true, usize::MAX).unwrap();
        assert_eq!(s.rows_sampled, 2);
        assert_eq!(s.column("race").unwrap().distinct, 2);
        // Untruncated, the tail is a real record.
        let s = infer_bytes(b"age,race\n34,Cauc\n22,Hisp\n47,Hi", false, usize::MAX).unwrap();
        assert_eq!(s.rows_sampled, 3);
    }

    #[test]
    fn max_rows_caps_the_scan() {
        let s = infer_bytes(b"a\n1\n2\n3\n4\n5\n", false, 2).unwrap();
        assert_eq!(s.rows_sampled, 2);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(matches!(
            infer_bytes(b"", false, 10),
            Err(Error::Unprobeable(_))
        ));
        assert!(matches!(
            infer_bytes(b"a,b\n", false, 10),
            Err(Error::Unprobeable(_))
        ));
        assert!(matches!(
            infer_bytes(b",,\n1,2,3\n", false, 10),
            Err(Error::Unprobeable(_))
        ));
    }

    #[test]
    fn date_detection_shapes() {
        assert!(is_date_like("1990-02-03"));
        assert!(is_date_like("3/2/1990"));
        assert!(is_date_like("1990/2/3"));
        assert!(!is_date_like("1990-02"));
        assert!(!is_date_like("19-02-03")); // no 4-digit year
        assert!(!is_date_like("1990-022-03"));
        assert!(!is_date_like("a-b-c"));
        assert!(!is_date_like("1234"));
    }

    #[test]
    fn null_markers_recognized() {
        for m in ["", " ", "NA", "n/a", "NULL", "None", "-", "?", " na "] {
            assert!(is_null(m), "{m:?}");
        }
        assert!(!is_null("0"));
        assert!(!is_null("--"));
    }

    #[test]
    fn infer_reader_end_to_end() {
        let mut cursor = std::io::Cursor::new(b"a|b\n1|x\n2|y\n".to_vec());
        let s = infer_reader(&mut cursor).unwrap();
        assert_eq!(s.delimiter, b'|');
        assert_eq!(s.rows_sampled, 2);
    }
}
