//! Error type for the schema toolchain.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from probing, inference, `.schema` parsing, and verification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The input sample had no parseable records under any candidate
    /// delimiter.
    Unprobeable(String),
    /// A `.schema` file that does not parse, or parses to an unsupported
    /// version.
    BadSchemaFile {
        /// 1-based line the problem was detected on (0 = whole file).
        line: usize,
        /// Description.
        message: String,
    },
    /// `verify` found the data drifted from the stored schema. Each entry
    /// names one mismatch in human-readable form.
    Drift(Vec<String>),
    /// A user-supplied hierarchy override that does not parse or names an
    /// unknown column.
    Override(String),
    /// Wrapped relational error (CSV syntax, hierarchy validation).
    Relation(kanon_relation::Error),
    /// Wrapped core error (budget trips during sampling).
    Core(kanon_core::Error),
    /// An I/O failure, rendered so the enum stays `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unprobeable(msg) => write!(f, "cannot probe input: {msg}"),
            Error::BadSchemaFile { line, message } => {
                if *line == 0 {
                    write!(f, "bad .schema file: {message}")
                } else {
                    write!(f, "bad .schema file at line {line}: {message}")
                }
            }
            Error::Drift(mismatches) => {
                write!(f, "schema drift ({} mismatch(es)): ", mismatches.len())?;
                for (i, m) in mismatches.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{m}")?;
                }
                Ok(())
            }
            Error::Override(msg) => write!(f, "hierarchy override error: {msg}"),
            Error::Relation(e) => write!(f, "relation error: {e}"),
            Error::Core(e) => write!(f, "core error: {e}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Relation(e) => Some(e),
            Error::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kanon_relation::Error> for Error {
    fn from(e: kanon_relation::Error) -> Self {
        Error::Relation(e)
    }
}

impl From<kanon_core::Error> for Error {
    fn from(e: kanon_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::Unprobeable("binary junk".into()), "binary junk"),
            (
                Error::BadSchemaFile {
                    line: 3,
                    message: "bad type".into(),
                },
                "line 3",
            ),
            (
                Error::BadSchemaFile {
                    line: 0,
                    message: "empty".into(),
                },
                "bad .schema file: empty",
            ),
            (
                Error::Drift(vec!["column `age` was int, now text".into()]),
                "drift",
            ),
            (Error::Override("unknown column `x`".into()), "override"),
            (Error::Io("pipe closed".into()), "pipe closed"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn conversions() {
        let e: Error = kanon_relation::Error::EmptyTable.into();
        assert!(matches!(e, Error::Relation(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = kanon_core::Error::KZero.into();
        assert!(matches!(e, Error::Core(_)));
        let e: Error = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
    }
}
