//! Offline vendored shim for the subset of the `proptest` 1.x API used by
//! this workspace: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`]
//! macros, integer/float range strategies, [`collection::vec`] /
//! [`collection::btree_set`], [`bool::ANY`], [`string::string_regex`] (char
//! class + counted repetition only), and a minimal
//! [`test_runner::TestRunner`].
//!
//! The build environment cannot reach crates.io, so the real `proptest`
//! cannot be fetched. This shim keeps the same *testing semantics* —
//! deterministic seeded generation, a configurable case count, assumption
//! rejection — but does **not** shrink failing inputs; failures report the
//! generated inputs verbatim instead. Strategy value distributions differ
//! from upstream, which no test in this workspace pins.

#![forbid(unsafe_code)]

/// Core strategy abstraction: a recipe for generating values of a type.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }

    /// Strategy producing a fixed value (`Just` in the real crate).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size specification for collection strategies: an exact count or a
    /// half-open range of counts.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo + 1) as u64;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set(element, size)`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // The element domain may be smaller than `target`; cap the
            // attempts so a too-ambitious size cannot loop forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < 1000 + 100 * target {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            assert!(
                set.len() >= target.min(1) || target == 0,
                "btree_set strategy could not reach size {target}"
            );
            set
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// The uniform boolean strategy type.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY` — uniform over `{true, false}`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// String strategies.
pub mod string {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Error from an unsupported or malformed pattern.
    #[derive(Clone, Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    /// Strategy for strings matching a (restricted) regex.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Supports exactly the shape `[<class>]{min,max}` where `<class>` is a
    /// sequence of literal chars, `a-z` ranges, and `\n`/`\t`/`\\` escapes —
    /// the only regex shape this workspace generates strings from.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let unsupported = || Error(format!("unsupported pattern: {pattern:?}"));
        let rest = pattern.strip_prefix('[').ok_or_else(unsupported)?;
        let close = rest.find(']').ok_or_else(unsupported)?;
        let (class, tail) = rest.split_at(close);
        let tail = tail.strip_prefix(']').ok_or_else(unsupported)?;
        let counts = tail
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(unsupported)?;
        let (min_s, max_s) = counts.split_once(',').ok_or_else(unsupported)?;
        let min: usize = min_s.trim().parse().map_err(|_| unsupported())?;
        let max: usize = max_s.trim().parse().map_err(|_| unsupported())?;
        if min > max {
            return Err(unsupported());
        }

        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            let lo = if c == '\\' {
                match chars.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(esc) => esc,
                    None => return Err(unsupported()),
                }
            } else {
                c
            };
            if chars.peek() == Some(&'-') {
                chars.next();
                let hi = chars.next().ok_or_else(unsupported)?;
                for code in lo as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(code) {
                        alphabet.push(ch);
                    }
                }
            } else {
                alphabet.push(lo);
            }
        }
        if alphabet.is_empty() {
            return Err(unsupported());
        }
        Ok(RegexGeneratorStrategy { alphabet, min, max })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let span = (self.max - self.min + 1) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len)
                .map(|_| self.alphabet[(rng.next_u64() % self.alphabet.len() as u64) as usize])
                .collect()
        }
    }
}

/// Runner configuration, errors, and the explicit-runner entry point.
pub mod test_runner {
    use super::strategy::Strategy;

    /// How many cases to run, etc.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected (assumption-failed) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config with the given case count and defaults elsewhere.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is skipped, not failed.
        Reject(String),
        /// The property was violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Creates a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        #[must_use]
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Explicit property runner, for tests that want control over the loop.
    #[derive(Clone, Debug, Default)]
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Runner with a custom config.
        #[must_use]
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Runs `test` against `config.cases` generated values.
        ///
        /// # Errors
        /// The first [`TestCaseError::Fail`] encountered, annotated with the
        /// offending input's debug representation.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> TestCaseResult,
        ) -> Result<(), TestCaseError> {
            let mut rng = TestRng::seed_from_u64(0x7e57_0000);
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                let value = strategy.new_value(&mut rng);
                let rendered = format!("{value:?}");
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            return Err(TestCaseError::fail(
                                "too many rejected cases; weaken the assumptions",
                            ));
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(TestCaseError::Fail(format!("{msg}; input: {rendered}")));
                    }
                }
            }
            Ok(())
        }
    }
}

/// Everything the `use proptest::prelude::*` idiom expects.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }` item
/// becomes a `#[test]` running `body` against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        @config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                // Deterministic per-test seed: derived from the test path so
                // different tests explore different streams, identical runs
                // repeat exactly.
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)).as_bytes());
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
                $(let $arg = &$strategy;)+
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value($arg, &mut rng);)+
                    let rendered = format!(
                        concat!($(stringify!($arg), " = {:?} ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest {}: too many rejected cases", stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {} passing case(s): {}\n  inputs: {}",
                                stringify!($name), passed, msg, rendered
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    concat!("assertion failed: ", stringify!($a), " == ", stringify!($b),
                            " ({:?} vs {:?})"),
                    a, b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with an optional format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    concat!("assertion failed: ", stringify!($a), " != ", stringify!($b),
                            " (both {:?})"),
                    a
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assume!(cond)`: skip (don't fail) the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (0u32..4).new_value(&mut rng);
            assert!(v < 4);
            let w = (2usize..6).new_value(&mut rng);
            assert!((2..6).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::seed_from_u64(2);
        let exact = crate::collection::vec(0u32..4, 7);
        assert_eq!(exact.new_value(&mut rng).len(), 7);
        let ranged = crate::collection::vec(0u32..4, 1..6);
        for _ in 0..100 {
            let n = ranged.new_value(&mut rng).len();
            assert!((1..6).contains(&n));
        }
    }

    #[test]
    fn btree_set_reaches_exact_size() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = crate::collection::btree_set(0u32..8, 2usize);
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut rng).len(), 2);
        }
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = crate::string::string_regex("[ -~\n]{0,12}").unwrap();
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v.chars().count() <= 12);
            assert!(v.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        assert!(crate::string::string_regex("a+b").is_err());
    }

    #[test]
    fn runner_reports_failure_with_input() {
        let mut runner = crate::test_runner::TestRunner::default();
        let err = runner
            .run(&(0u32..10), |v| {
                prop_assert!(v < 5, "saw {v}");
                Ok(())
            })
            .unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("input:"), "{msg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_checks(
            v in crate::collection::vec(0u32..10, 3),
            k in 1usize..4,
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..4).contains(&k));
        }

        #[test]
        fn macro_assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
