//! Offline vendored shim for the subset of the `rand` 0.8 API used by this
//! workspace: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; this crate keeps the workspace self-contained. The
//! generator is xoshiro256++ seeded via SplitMix64 — statistically solid and
//! fully deterministic for a given `seed_from_u64` input, which is all the
//! seeded experiment/test workloads rely on. The exact value streams differ
//! from the real `StdRng` (ChaCha12), which no test in this workspace pins.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like in the real crate.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions and uniform range sampling.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values for
    /// integers and `bool`, uniform over `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Uniform range sampling (`Rng::gen_range` plumbing).
    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can be sampled uniformly, like the real crate's trait.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_sample_range_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (self.start as i128 + offset as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let offset = (rng.next_u64() as u128) % span;
                        (lo as i128 + offset as i128) as $t
                    }
                }
            )*};
        }
        impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (*rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (*rng).gen_range(0..self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(0.0f64..10.0);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "seeded shuffle of 50 elements should move something"
        );
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl_rng(rng: &mut impl Rng) -> u32 {
            rng.gen_range(0..10u32)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_impl_rng(&mut rng);
        assert!(v < 10);
    }
}
