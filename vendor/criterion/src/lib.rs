//! Offline vendored shim for the subset of the `criterion` 0.5 API used by
//! this workspace's benches: [`Criterion`], [`BenchmarkId`], benchmark
//! groups with `sample_size` / `bench_function` / `bench_with_input`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment cannot reach crates.io. This shim keeps every
//! bench compiling and runnable: it times each benchmark (warmup + fixed
//! sample count), prints `name ... median <time> (min <..> max <..>)` lines,
//! and honors `--bench`-style substring filters passed on the command line.
//! It produces no HTML reports and does no statistical regression analysis.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure given to `iter`; runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Median/min/max of the collected samples, filled by `iter`.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, collecting `samples` measurements after warmup.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..2 {
            black_box(routine());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        self.result = Some((median, times[0], times[times.len() - 1]));
    }
}

fn run_one(full_name: &str, filter: Option<&str>, samples: usize, f: impl FnOnce(&mut Bencher)) {
    if let Some(pat) = filter {
        if !full_name.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((median, min, max)) => println!(
            "{full_name:<60} median {median:>12.3?}  (min {min:.3?}, max {max:.3?}, n={samples})"
        ),
        None => println!("{full_name:<60} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into().id);
        let mut f = f;
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            |b| f(b),
        );
    }

    /// Benches `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.into().id);
        let mut f = f;
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            |b| f(b, input),
        );
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Harness args look like: `bench_binary --bench [filter]` or just
        // `[filter]`; treat the first non-flag argument as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut f = f;
        run_one(name, self.filter.as_deref(), 10, |b| f(b));
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        // 2 warmup + 3 samples.
        assert_eq!(ran, 5);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion {
            filter: Some("zzz".into()),
        };
        let mut ran = false;
        run_one("group/one", c.filter.as_deref(), 1, |_b| ran = true);
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
